//! Property-based soundness tests for every allocator.
//!
//! A reference model tracks live objects; random operation sequences are
//! replayed against each allocator and the invariants that make an
//! allocator an allocator are checked after every step:
//!
//! * returned objects are non-null and at least 8-byte aligned;
//! * live objects never overlap;
//! * object payloads survive unrelated operations (data integrity);
//! * `free_all` (where supported) empties the heap and allocation restarts
//!   from a clean state.

use proptest::prelude::*;
use webmm_alloc::AllocatorKind;
use webmm_sim::{Addr, MemoryPort, PlainPort};

/// One step of a random allocation script.
#[derive(Clone, Debug)]
enum Op {
    /// Allocate this many bytes.
    Malloc(u64),
    /// Free the live object at this (modular) index.
    Free(usize),
    /// Realloc the live object at this (modular) index to a new size.
    Realloc(usize, u64),
    /// Bulk-free everything (skipped for allocators without freeAll).
    FreeAll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (1u64..5000).prop_map(Op::Malloc),
        // Occasional big objects exercise the large paths.
        1 => (16_000u64..150_000).prop_map(Op::Malloc),
        4 => any::<usize>().prop_map(Op::Free),
        1 => (any::<usize>(), 1u64..10_000).prop_map(|(i, s)| Op::Realloc(i, s)),
        1 => Just(Op::FreeAll),
    ]
}

/// A live object in the reference model.
struct Live {
    addr: Addr,
    size: u64,
    /// The pattern written into the first 8 bytes.
    stamp: u64,
}

fn overlaps(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 < b.0 + b.1 && b.0 < a.0 + a.1
}

fn check_invariants(live: &[Live], port: &PlainPort) {
    for (i, x) in live.iter().enumerate() {
        assert!(!x.addr.is_null(), "null address returned");
        assert!(
            x.addr.is_aligned(8),
            "object at {:x} not 8-byte aligned",
            x.addr
        );
        assert_eq!(
            port.memory().read_u64(x.addr),
            x.stamp,
            "payload of object {i} at {} was clobbered",
            x.addr
        );
        for y in &live[i + 1..] {
            assert!(
                !overlaps((x.addr.raw(), x.size), (y.addr.raw(), y.size)),
                "live objects overlap: {}+{} vs {}+{}",
                x.addr,
                x.size,
                y.addr,
                y.size
            );
        }
    }
}

fn run_script(kind: AllocatorKind, ops: &[Op]) {
    let mut alloc = kind.build(1);
    let traits = alloc.alloc_traits();
    let mut port = PlainPort::new();
    let mut live: Vec<Live> = Vec::new();
    let mut stamp_counter = 0xfeed_0000u64;

    for op in ops {
        match op {
            Op::Malloc(size) => {
                let Ok(addr) = alloc.malloc(&mut port, *size) else {
                    continue;
                };
                stamp_counter += 1;
                // Stamp the payload (first 8 bytes always fit: size >= 1 is
                // rounded to >= 8 by every allocator).
                port.store_u64(addr, stamp_counter);
                live.push(Live {
                    addr,
                    size: *size,
                    stamp: stamp_counter,
                });
            }
            Op::Free(raw_idx) => {
                if live.is_empty() || !traits.per_object_free {
                    continue;
                }
                let idx = raw_idx % live.len();
                let obj = live.swap_remove(idx);
                alloc.free(&mut port, obj.addr);
            }
            Op::Realloc(raw_idx, new_size) => {
                if live.is_empty() {
                    continue;
                }
                let idx = raw_idx % live.len();
                let old = &live[idx];
                let Ok(new_addr) = alloc.realloc(&mut port, old.addr, old.size, *new_size) else {
                    continue;
                };
                // Data must survive the move. Headerless allocators only
                // guarantee min(old_size, new_size) bytes, so compare just
                // the prefix that every allocator must have copied.
                let guaranteed = live[idx].size.min(*new_size).min(8);
                let mask = if guaranteed >= 8 {
                    u64::MAX
                } else {
                    (1u64 << (8 * guaranteed)) - 1
                };
                live[idx].addr = new_addr;
                live[idx].size = *new_size;
                assert_eq!(
                    port.memory().read_u64(new_addr) & mask,
                    live[idx].stamp & mask,
                    "realloc lost payload"
                );
                live[idx].stamp = port.memory().read_u64(new_addr);
            }
            Op::FreeAll => {
                if !traits.bulk_free {
                    continue;
                }
                alloc.free_all(&mut port);
                live.clear();
            }
        }
        check_invariants(&live, &port);
    }
}

macro_rules! allocator_properties {
    ($name:ident, $kind:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
            #[test]
            fn $name(ops in proptest::collection::vec(op_strategy(), 1..120)) {
                run_script($kind, &ops);
            }
        }
    };
}

allocator_properties!(ddmalloc_soundness, AllocatorKind::DdMalloc);
allocator_properties!(region_soundness, AllocatorKind::Region);
allocator_properties!(obstack_soundness, AllocatorKind::Obstack);
allocator_properties!(php_default_soundness, AllocatorKind::PhpDefault);
allocator_properties!(dl_soundness, AllocatorKind::Dl);
allocator_properties!(hoard_soundness, AllocatorKind::Hoard);
allocator_properties!(tcmalloc_soundness, AllocatorKind::TcMalloc);
allocator_properties!(reaps_soundness, AllocatorKind::Reaps);

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// DDmalloc's free lists must conserve objects: free N, get the same N
    /// back (in LIFO order) with no fresh segment growth.
    #[test]
    fn ddmalloc_free_list_conservation(sizes in proptest::collection::vec(1u64..4000, 1..60)) {
        let mut alloc = AllocatorKind::DdMalloc.build(0);
        let mut port = PlainPort::new();
        let objs: Vec<(Addr, u64)> = sizes
            .iter()
            .map(|&s| (alloc.malloc(&mut port, s).unwrap(), s))
            .collect();
        let heap_before = alloc.footprint().heap_bytes;
        for (a, _) in &objs {
            alloc.free(&mut port, *a);
        }
        // Reallocate the same sizes: every object must come from the free
        // lists (LIFO per class), with zero heap growth.
        let mut expect: std::collections::HashMap<u64, Vec<Addr>> = std::collections::HashMap::new();
        for (a, s) in &objs {
            expect.entry(*s).or_default().push(*a);
        }
        for (_, stack) in expect.iter_mut() {
            stack.reverse(); // LIFO: last freed comes back first... per class
        }
        for (_, s) in &objs {
            let got = alloc.malloc(&mut port, *s).unwrap();
            prop_assert!(!got.is_null());
        }
        prop_assert_eq!(alloc.footprint().heap_bytes, heap_before, "no growth on pure reuse");
    }

    /// The region allocator's addresses are strictly increasing within a
    /// transaction — it never reuses anything.
    #[test]
    fn region_is_strictly_monotone(sizes in proptest::collection::vec(1u64..8000, 1..100)) {
        let mut alloc = AllocatorKind::Region.build(0);
        let mut port = PlainPort::new();
        let mut prev = Addr::new(0);
        for &s in &sizes {
            let a = alloc.malloc(&mut port, s).unwrap();
            prop_assert!(a > prev, "bump pointer went backwards");
            prev = a;
        }
    }

    /// freeAll is idempotent and always returns the heap to the same state.
    #[test]
    fn free_all_is_a_fixed_point(sizes in proptest::collection::vec(1u64..2000, 1..40)) {
        for kind in AllocatorKind::PHP_STUDY {
            let mut alloc = kind.build(0);
            let mut port = PlainPort::new();
            for &s in &sizes {
                alloc.malloc(&mut port, s).unwrap();
            }
            alloc.free_all(&mut port);
            let first = alloc.malloc(&mut port, 64).unwrap();
            alloc.free_all(&mut port);
            alloc.free_all(&mut port); // idempotent
            let second = alloc.malloc(&mut port, 64).unwrap();
            prop_assert_eq!(first, second, "{} freeAll not a fixed point", kind);
        }
    }

    /// Instruction cost ordering of Table 1 holds on arbitrary size mixes:
    /// region <= ddmalloc <= php-default.
    #[test]
    fn table1_cost_ordering(sizes in proptest::collection::vec(8u64..2000, 50..120)) {
        let cost = |kind: AllocatorKind| {
            let mut alloc = kind.build(0);
            let mut port = PlainPort::new();
            // Warm up one round so lazy init is excluded.
            let warm: Vec<Addr> = sizes.iter().map(|&s| alloc.malloc(&mut port, s).unwrap()).collect();
            if alloc.alloc_traits().per_object_free {
                for a in warm { alloc.free(&mut port, a); }
            }
            if alloc.alloc_traits().bulk_free { alloc.free_all(&mut port); }
            let start = port.instructions();
            let objs: Vec<Addr> = sizes.iter().map(|&s| alloc.malloc(&mut port, s).unwrap()).collect();
            if alloc.alloc_traits().per_object_free {
                for a in objs { alloc.free(&mut port, a); }
            }
            if alloc.alloc_traits().bulk_free { alloc.free_all(&mut port); }
            port.instructions() - start
        };
        let region = cost(AllocatorKind::Region);
        let dd = cost(AllocatorKind::DdMalloc);
        let php = cost(AllocatorKind::PhpDefault);
        prop_assert!(region <= dd, "region ({region}) must be cheapest (dd {dd})");
        prop_assert!(dd < php, "ddmalloc ({dd}) must beat the default allocator ({php})");
    }
}
