//! Equivalence tests for the size-class fast path.
//!
//! `SizeClasses::class_of` answers from a granule-8 lookup table plus a
//! closed-form tail; `SizeClasses::class_of_reference` is the original
//! binary search. They must agree for every size, every mapping, and
//! every segment geometry — exhaustively below the large threshold and
//! property-tested across the shift/step tail and the large region.

use proptest::prelude::*;
use webmm_alloc::{ClassMapping, SizeClasses};

const MAPPINGS: [ClassMapping; 3] = [
    ClassMapping::Paper,
    ClassMapping::PowersOfTwo,
    ClassMapping::Fine8,
];

/// Segment geometries worth covering: the minimum legal size, the
/// default-ish 32 KB, one where the LUT covers the whole table
/// (threshold <= 2 KB), and one with a long tail.
const SEGMENTS: [u64; 4] = [1024, 4 * 1024, 32 * 1024, 512 * 1024];

#[test]
fn fast_path_matches_reference_for_every_small_size() {
    for mapping in MAPPINGS {
        for segment in SEGMENTS {
            let sc = SizeClasses::new(segment, mapping);
            // Every size through the threshold, plus a margin into the
            // large region where both must answer None.
            for size in 1..=sc.large_threshold() + 64 {
                assert_eq!(
                    sc.class_of(size),
                    sc.class_of_reference(size),
                    "{mapping:?} segment={segment} size={size}"
                );
            }
        }
    }
}

#[test]
fn fast_path_class_still_fits_the_request() {
    for mapping in MAPPINGS {
        let sc = SizeClasses::new(32 * 1024, mapping);
        for size in 1..=sc.large_threshold() {
            let class = sc.class_of(size).expect("small size maps");
            assert!(sc.size_of(class) >= size, "{mapping:?} size={size}");
            if class > 0 {
                assert!(
                    sc.size_of(class - 1) < size,
                    "{mapping:?} size={size}: class not minimal"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// The tail region (sizes above the LUT) across large segments: the
    /// pow2-shift and ×64-step closed forms agree with the search.
    #[test]
    fn tail_region_matches_reference(
        segment_log2 in 12u32..=22,
        size in 2049u64..=4 * 1024 * 1024,
    ) {
        let segment = 1u64 << segment_log2;
        for mapping in MAPPINGS {
            let sc = SizeClasses::new(segment, mapping);
            prop_assert_eq!(
                sc.class_of(size),
                sc.class_of_reference(size),
                "{:?} segment={} size={}", mapping, segment, size
            );
        }
    }

    /// Large requests (above half a segment) always map to None.
    #[test]
    fn large_requests_are_never_classed(
        segment_log2 in 10u32..=22,
        excess in 1u64..=1 << 20,
    ) {
        let segment = 1u64 << segment_log2;
        for mapping in MAPPINGS {
            let sc = SizeClasses::new(segment, mapping);
            let size = sc.large_threshold() + excess;
            prop_assert_eq!(sc.class_of(size), None);
            prop_assert_eq!(sc.class_of_reference(size), None);
        }
    }
}
