//! Pins the auto-trait surface that native multi-worker serving relies on.
//!
//! The serving harness (`webmm-server`) moves one freshly built heap into
//! each OS worker thread — the paper's process-per-worker model. That
//! handoff is only sound if every concrete allocator (and the functional
//! memory port it drives) is `Send`. These tests turn that assumption into
//! a compile-time contract: if an allocator ever grows `Rc`, `RefCell` or
//! raw-pointer state, this file stops compiling rather than the server
//! becoming subtly unsound.
//!
//! Deliberately absent: no allocator is asserted `Sync`. Heaps are
//! single-threaded by design ("one heap, one thread" on
//! [`AllocatorKind`]); only ownership transfer is supported, not sharing.

use webmm_alloc::{
    AllocatorKind, DdMalloc, DlAlloc, HoardAlloc, ObstackAlloc, PhpDefaultAlloc, ReapAlloc,
    RegionAlloc, TcAlloc,
};
use webmm_sim::PlainPort;

fn assert_send<T: Send>() {}

#[test]
fn every_concrete_allocator_is_send() {
    assert_send::<DdMalloc>();
    assert_send::<PhpDefaultAlloc>();
    assert_send::<RegionAlloc>();
    assert_send::<ObstackAlloc>();
    assert_send::<DlAlloc>();
    assert_send::<HoardAlloc>();
    assert_send::<TcAlloc>();
    assert_send::<ReapAlloc>();
}

#[test]
fn worker_side_state_is_send() {
    // The full per-worker bundle the server moves across a spawn: the
    // functional port, the boxed heap, and the kind tag itself.
    assert_send::<PlainPort>();
    assert_send::<Box<dyn webmm_alloc::Allocator + Send>>();
    assert_send::<AllocatorKind>();
}

#[test]
fn built_heaps_cross_a_real_spawn_boundary() {
    // Not just the trait bound: actually move every kind of heap into a
    // thread, serve a transaction's worth of work there, and hand the
    // stats back.
    let handles: Vec<_> = AllocatorKind::ALL
        .into_iter()
        .map(|kind| {
            let mut heap = kind.build_send(7);
            std::thread::spawn(move || {
                let mut port = PlainPort::new();
                let a = heap
                    .malloc(&mut port, 64)
                    .expect("fresh heap serves 64 bytes");
                let b = heap
                    .malloc(&mut port, 1024)
                    .expect("fresh heap serves 1 KiB");
                assert_ne!(a, b);
                if heap.alloc_traits().per_object_free {
                    heap.free(&mut port, a);
                    heap.free(&mut port, b);
                } else if heap.alloc_traits().bulk_free {
                    heap.free_all(&mut port);
                }
                (kind, heap.stats().mallocs)
            })
        })
        .collect();
    for h in handles {
        let (kind, mallocs) = h.join().expect("worker thread panicked");
        assert_eq!(mallocs, 2, "{kind}");
    }
}
