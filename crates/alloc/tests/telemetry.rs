//! Cross-family `HeapTelemetry` sanity checks.
//!
//! Every [`Allocator`] carries the [`webmm_obs::HeapTelemetry`] supertrait,
//! so a `Box<dyn Allocator>` answers `heap_snapshot()` without knowing the
//! family. These tests drive each of the eight families through the same
//! malloc/free/freeAll script and assert the snapshot invariants the
//! sampler relies on: mirrors answer from Rust-side state only (no port
//! access, hence zero simulated instructions), live/free occupancy moves
//! with the workload, and freeAll cost accumulates for bulk-free families.

use webmm_alloc::AllocatorKind;
use webmm_sim::PlainPort;

/// A lazily-created allocator has an all-zero heap snapshot.
#[test]
fn fresh_snapshot_is_empty() {
    for kind in AllocatorKind::ALL {
        let a = kind.build(0);
        let s = a.heap_snapshot();
        assert!(!s.allocator.is_empty(), "{kind:?} must name itself");
        assert_eq!(s.heap_bytes, 0, "{kind:?} heap before first malloc");
        assert_eq!(s.live_objects(), 0, "{kind:?} live before first malloc");
        assert_eq!(s.free_all_count, 0, "{kind:?} freeAll count");
    }
}

/// After a burst of allocations every family reports a non-empty heap,
/// live occupancy, and a snapshot that serializes to JSON.
#[test]
fn snapshot_tracks_allocation_burst() {
    for kind in AllocatorKind::ALL {
        let mut port = PlainPort::new();
        let mut a = kind.build(0);
        let objs: Vec<_> = (0..64)
            .map(|i| a.malloc(&mut port, 24 + (i % 5) * 40).unwrap())
            .collect();
        let s = a.heap_snapshot();
        assert!(s.heap_bytes > 0, "{kind:?} heap after mallocs");
        assert!(s.touched_bytes > 0, "{kind:?} touched after mallocs");
        assert!(s.tx_live_bytes > 0, "{kind:?} tx-live after mallocs");
        assert!(s.peak_tx_bytes >= s.tx_live_bytes, "{kind:?} peak >= live");
        assert!(s.segments > 0, "{kind:?} segments after mallocs");
        assert_eq!(s.live_objects(), 64, "{kind:?} live object count");
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"heap_bytes\""), "{kind:?} serializes");

        // Per-object free moves objects from live to free lists (region
        // and obstack free by rewinding only, so their mirrors hold).
        // Check free-list occupancy mid-drain — alternating frees keep
        // blocks from coalescing back into the wilderness — then confirm
        // the live count reaches zero after the full drain.
        if a.alloc_traits().per_object_free {
            for o in objs.iter().step_by(2) {
                a.free(&mut port, *o);
            }
            let s = a.heap_snapshot();
            assert!(s.free_list_len > 0, "{kind:?} free lists mid-drain");
            assert_eq!(s.live_objects(), 32, "{kind:?} live mid-drain");
            for o in objs.iter().skip(1).step_by(2) {
                a.free(&mut port, *o);
            }
            assert_eq!(a.heap_snapshot().live_objects(), 0, "{kind:?} drained");
        }
    }
}

/// Snapshots never touch simulated memory: the instruction counter is
/// byte-for-byte identical with and without telemetry reads. This is the
/// observability analogue of DDmalloc's no-per-object-header rule.
#[test]
fn snapshot_does_not_perturb_simulated_cost() {
    for kind in AllocatorKind::ALL {
        let run = |observe: bool| {
            let mut port = PlainPort::new();
            let mut a = kind.build(0);
            for i in 0..128 {
                let o = a.malloc(&mut port, 16 + (i % 9) * 24).unwrap();
                if observe {
                    let _ = a.heap_snapshot();
                }
                if a.alloc_traits().per_object_free && i % 3 == 0 {
                    a.free(&mut port, o);
                }
            }
            port.instructions()
        };
        assert_eq!(run(false), run(true), "{kind:?} snapshot must be free");
    }
}

/// Bulk-free families count freeAll calls and accumulate wall cost; the
/// reset also clears transaction-scoped occupancy.
#[test]
fn free_all_resets_occupancy_and_accumulates_cost() {
    for kind in AllocatorKind::ALL {
        let mut port = PlainPort::new();
        let mut a = kind.build(0);
        if !a.alloc_traits().bulk_free {
            continue; // glibc/Hoard/TCmalloc panic on freeAll by design
        }
        for _ in 0..32 {
            a.malloc(&mut port, 128).unwrap();
        }
        a.free_all(&mut port);
        let s = a.heap_snapshot();
        assert_eq!(s.free_all_count, 1, "{kind:?} freeAll counted");
        assert_eq!(s.tx_live_bytes, 0, "{kind:?} tx-live after freeAll");
        assert_eq!(
            s.classes.iter().map(|c| c.live).sum::<u64>(),
            0,
            "{kind:?} live occupancy after freeAll"
        );
        // Wall-clock timing may round to 0 ns on a coarse clock, but the
        // counter must be monotone across calls.
        let before = s.free_all_ns;
        a.malloc(&mut port, 128).unwrap();
        a.free_all(&mut port);
        assert!(a.heap_snapshot().free_all_ns >= before, "{kind:?} cost");
        assert_eq!(a.heap_snapshot().free_all_count, 2, "{kind:?} count");
    }
}
