//! GNU-obstack-style region allocator.
//!
//! The paper: "We also evaluated the GNU obstack as another region-based
//! allocator. However our own region-based allocator outperformed the
//! obstack for the PHP applications." We implement it anyway so that claim
//! can be checked: obstacks grow in much smaller chunks (default 4 KB in
//! glibc; we use 64 KB), keep a per-chunk header, and therefore hit the
//! chunk-refill path orders of magnitude more often than a 256 MB region.

use crate::api::{
    enter_mm, exit_mm, round_up, AllocError, AllocTraits, Allocator, BandwidthClass, CostClass,
    Footprint, OpStats,
};
use webmm_sim::{Addr, CodeRegionId, CodeSpec, MemoryPort, PageSize};

/// Per-chunk header: `prev` chunk pointer + chunk limit (2 × u64).
const CHUNK_HEADER: u64 = 16;

/// Configuration of an [`ObstackAlloc`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct ObstackConfig {
    /// Chunk size in bytes.
    pub chunk_bytes: u64,
    /// Maximum number of chunks.
    pub max_chunks: u32,
}

impl Default for ObstackConfig {
    fn default() -> Self {
        ObstackConfig {
            chunk_bytes: 64 * 1024,
            max_chunks: 16 * 1024,
        }
    }
}

/// Chunked bump allocator in the style of GNU obstacks.
///
/// Like [`RegionAlloc`](crate::RegionAlloc) it has no per-object free;
/// `free_all` rewinds to the first chunk (glibc's `obstack_free(h, NULL)`
/// frees every chunk; keeping the first matches our region allocator and
/// avoids re-reserving).
#[derive(Debug)]
pub struct ObstackAlloc {
    config: ObstackConfig,
    chunks: Vec<Addr>,
    current_chunk: usize,
    /// Bump cursor cell in simulated memory.
    cursor_addr: Option<Addr>,
    code_id: Option<CodeRegionId>,
    stats: OpStats,
    tx_alloc_bytes: u64,
    peak_tx_alloc: u64,
    /// Telemetry mirrors: objects bumped since the last rewind, and
    /// cumulative `freeAll` wall cost.
    tx_objs: u64,
    free_all_ns: u64,
}

impl ObstackAlloc {
    /// Creates an obstack; the first chunk is obtained lazily.
    pub fn new(config: ObstackConfig) -> Self {
        ObstackAlloc {
            config,
            chunks: Vec::new(),
            current_chunk: 0,
            cursor_addr: None,
            code_id: None,
            stats: OpStats::default(),
            tx_alloc_bytes: 0,
            peak_tx_alloc: 0,
            tx_objs: 0,
            free_all_ns: 0,
        }
    }

    fn init(&mut self, port: &mut dyn MemoryPort) -> Addr {
        if let Some(c) = self.cursor_addr {
            return c;
        }
        let cursor_addr = port.os_alloc(64, 64, PageSize::Base);
        let chunk = self.new_chunk(port, Addr::new(0));
        port.store_u64(cursor_addr, (chunk + CHUNK_HEADER).raw());
        self.chunks.push(chunk);
        self.cursor_addr = Some(cursor_addr);
        cursor_addr
    }

    fn new_chunk(&mut self, port: &mut dyn MemoryPort, prev: Addr) -> Addr {
        let chunk = port.os_alloc(self.config.chunk_bytes, 4096, PageSize::Base);
        // Chunk header: previous-chunk link and limit, as glibc obstacks do.
        port.store_u64(chunk, prev.raw());
        port.store_u64(chunk + 8, (chunk + self.config.chunk_bytes).raw());
        port.exec(8);
        chunk
    }
}

impl webmm_obs::HeapTelemetry for ObstackAlloc {
    fn heap_snapshot(&self) -> webmm_obs::HeapSnapshot {
        webmm_obs::HeapSnapshot {
            allocator: "GNU obstack".into(),
            heap_bytes: self.chunks.len() as u64 * self.config.chunk_bytes,
            touched_bytes: self.peak_tx_alloc,
            metadata_bytes: 64 + self.chunks.len() as u64 * CHUNK_HEADER,
            tx_live_bytes: self.tx_alloc_bytes,
            peak_tx_bytes: self.peak_tx_alloc,
            segments: self.chunks.len() as u64,
            free_all_count: self.stats.free_alls,
            free_all_ns: self.free_all_ns,
            classes: vec![webmm_obs::ClassOccupancy {
                class: 0,
                object_size: 0,
                live: self.tx_objs,
                free: 0,
            }],
            ..webmm_obs::HeapSnapshot::default()
        }
    }
}

impl Allocator for ObstackAlloc {
    fn name(&self) -> &'static str {
        "GNU obstack"
    }

    fn alloc_traits(&self) -> AllocTraits {
        AllocTraits {
            bulk_free: true,
            per_object_free: false,
            defragmentation: false,
            cost: CostClass::Lowest,
            bandwidth: BandwidthClass::High,
        }
    }

    fn code_spec(&self) -> CodeSpec {
        CodeSpec::new(3 * 1024, 1536)
    }

    fn malloc(&mut self, port: &mut dyn MemoryPort, size: u64) -> Result<Addr, AllocError> {
        if size == 0 {
            return Err(AllocError::InvalidRequest { requested: 0 });
        }
        let rounded = round_up(size, 8);
        if rounded > self.config.chunk_bytes - CHUNK_HEADER {
            return Err(AllocError::InvalidRequest { requested: size });
        }
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let cursor_addr = self.init(port);
        let cursor = Addr::new(port.load_u64(cursor_addr));
        // Bounds check against the chunk limit stored in the chunk header.
        let chunk = self.chunks[self.current_chunk];
        let limit = Addr::new(port.load_u64(chunk + 8));
        port.exec(7);

        let obj = if cursor + rounded <= limit {
            port.store_u64(cursor_addr, (cursor + rounded).raw());
            cursor
        } else {
            if self.chunks.len() >= self.config.max_chunks as usize
                && self.current_chunk + 1 >= self.chunks.len()
            {
                exit_mm(port);
                return Err(AllocError::OutOfMemory { requested: size });
            }
            self.current_chunk += 1;
            let next = if self.current_chunk < self.chunks.len() {
                self.chunks[self.current_chunk]
            } else {
                let c = self.new_chunk(port, chunk);
                self.chunks.push(c);
                c
            };
            port.store_u64(cursor_addr, (next + CHUNK_HEADER + rounded).raw());
            port.exec(6);
            next + CHUNK_HEADER
        };

        self.stats.mallocs += 1;
        self.stats.bytes_requested += size;
        self.tx_alloc_bytes += rounded;
        self.peak_tx_alloc = self.peak_tx_alloc.max(self.tx_alloc_bytes);
        self.tx_objs += 1;
        exit_mm(port);
        Ok(obj)
    }

    fn free(&mut self, _port: &mut dyn MemoryPort, _addr: Addr) {
        self.stats.frees += 1; // no-op: obstacks free by rewinding only
    }

    fn realloc(
        &mut self,
        port: &mut dyn MemoryPort,
        addr: Addr,
        old_size: u64,
        new_size: u64,
    ) -> Result<Addr, AllocError> {
        if new_size == 0 {
            return Err(AllocError::InvalidRequest { requested: 0 });
        }
        if new_size <= round_up(old_size, 8) {
            self.stats.reallocs += 1;
            return Ok(addr);
        }
        let new = self.malloc(port, new_size)?;
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        port.memcpy(new, addr, old_size.min(new_size));
        exit_mm(port);
        self.stats.reallocs += 1;
        self.stats.mallocs -= 1; // internal plumbing
        self.stats.bytes_requested -= new_size;
        Ok(new)
    }

    fn free_all(&mut self, port: &mut dyn MemoryPort) {
        let t0 = std::time::Instant::now();
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let cursor_addr = self.init(port);
        port.store_u64(cursor_addr, (self.chunks[0] + CHUNK_HEADER).raw());
        self.current_chunk = 0;
        port.exec(4);
        self.stats.free_alls += 1;
        self.tx_alloc_bytes = 0;
        self.tx_objs = 0;
        self.free_all_ns += t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        exit_mm(port);
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            heap_bytes: self.chunks.len() as u64 * self.config.chunk_bytes,
            metadata_bytes: 64 + self.chunks.len() as u64 * CHUNK_HEADER,
            peak_tx_alloc_bytes: self.peak_tx_alloc,
        }
    }

    fn stats(&self) -> OpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webmm_sim::PlainPort;

    fn ob() -> ObstackAlloc {
        ObstackAlloc::new(ObstackConfig {
            chunk_bytes: 4096,
            max_chunks: 4,
        })
    }

    #[test]
    fn bump_with_chunk_headers() {
        let mut port = PlainPort::new();
        let mut o = ob();
        let a = o.malloc(&mut port, 8).unwrap();
        let b = o.malloc(&mut port, 8).unwrap();
        assert_eq!(b - a, 8);
        // First object sits after the 16-byte chunk header.
        assert_eq!(a.offset_in(4096), CHUNK_HEADER);
    }

    #[test]
    fn chunk_spill_links_chunks() {
        let mut port = PlainPort::new();
        let mut o = ob();
        let a = o.malloc(&mut port, 4000).unwrap();
        let b = o.malloc(&mut port, 4000).unwrap();
        assert!(b.raw() > a.raw() + 4000);
        // The second chunk's header links back to the first.
        let chunk1 = b.align_down(4096);
        assert_eq!(port.memory().read_u64(chunk1), a.align_down(4096).raw());
    }

    #[test]
    fn free_all_rewinds() {
        let mut port = PlainPort::new();
        let mut o = ob();
        let a = o.malloc(&mut port, 100).unwrap();
        o.malloc(&mut port, 4000).unwrap();
        o.free_all(&mut port);
        assert_eq!(o.malloc(&mut port, 100).unwrap(), a);
    }

    #[test]
    fn oom_and_invalid() {
        let mut port = PlainPort::new();
        let mut o = ob();
        assert!(o.malloc(&mut port, 0).is_err());
        assert!(o.malloc(&mut port, 5000).is_err()); // exceeds chunk payload
        for _ in 0..4 {
            o.malloc(&mut port, 4000).unwrap();
        }
        assert!(matches!(
            o.malloc(&mut port, 4000),
            Err(AllocError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn refills_more_often_than_big_regions() {
        // The paper's reason obstack lost to their 256 MB region allocator.
        let mut port = PlainPort::new();
        let mut o = ObstackAlloc::new(ObstackConfig {
            chunk_bytes: 4096,
            max_chunks: 256,
        });
        for _ in 0..1000 {
            o.malloc(&mut port, 512).unwrap();
        }
        // 7 objects per 4 KB chunk → ~143 chunk refills for 1000 objects.
        assert!(o.footprint().heap_bytes >= 125 * 4096);
    }
}
