//! The paper's region-based allocator (§4.1).
//!
//! "Our region-based allocator obtains a 256 MB chunk of memory from the
//! operating system at startup time and allocates memory objects from the
//! top of the chunk by simply incrementing a pointer showing the next
//! position to allocate. It rounds up the requested size to a multiple of
//! 8 bytes ... When the pointer reaches the end of the chunk, the allocator
//! obtains the next 256 MB chunk."
//!
//! There is **no per-object free**: dead objects keep their memory until
//! `freeAll` resets the bump pointer. This is the allocator whose
//! cache-polluting, bandwidth-hungry behaviour the paper dissects — within
//! a transaction it streams through fresh cache lines forever.

use crate::api::{
    enter_mm, exit_mm, round_up, AllocError, AllocTraits, Allocator, BandwidthClass, CostClass,
    Footprint, OpStats,
};
use webmm_sim::{Addr, CodeRegionId, CodeSpec, MemoryPort, PageSize};

/// Configuration of a [`RegionAlloc`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct RegionConfig {
    /// Chunk size obtained from the OS (the paper uses 256 MB; "one 256 MB
    /// chunk was large enough for most of the PHP transactions").
    pub chunk_bytes: u64,
    /// Maximum number of chunks before reporting out-of-memory.
    pub max_chunks: u32,
    /// Map chunks with large pages.
    pub large_pages: bool,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            chunk_bytes: 256 * 1024 * 1024,
            max_chunks: 8,
            large_pages: false,
        }
    }
}

/// Bump-pointer region allocator without per-object free.
///
/// # Examples
///
/// ```
/// use webmm_alloc::{Allocator, RegionAlloc, RegionConfig};
/// use webmm_sim::PlainPort;
///
/// let mut port = PlainPort::new();
/// let mut r = RegionAlloc::new(RegionConfig::default());
/// let a = r.malloc(&mut port, 10)?;
/// let b = r.malloc(&mut port, 10)?;
/// assert_eq!(b - a, 16, "10 bytes round up to 16; objects are adjacent");
/// r.free_all(&mut port);
/// assert_eq!(r.malloc(&mut port, 10)?, a, "freeAll resets the bump pointer");
/// # Ok::<(), webmm_alloc::AllocError>(())
/// ```
#[derive(Debug)]
pub struct RegionAlloc {
    config: RegionConfig,
    /// Chunk base addresses, in allocation order.
    chunks: Vec<Addr>,
    /// Address of the bump cursor cell (kept in simulated memory so the
    /// cursor update traffic is modeled — it is the allocator's only hot
    /// metadata line).
    cursor_addr: Option<Addr>,
    /// Index of the chunk the cursor currently points into.
    current_chunk: usize,
    code_id: Option<CodeRegionId>,
    stats: OpStats,
    tx_alloc_bytes: u64,
    peak_tx_alloc: u64,
    /// Telemetry mirrors: objects bumped since the last `freeAll` (nothing
    /// is ever individually freed, so this only grows within a
    /// transaction) and cumulative `freeAll` wall cost.
    tx_objs: u64,
    free_all_ns: u64,
}

impl RegionAlloc {
    /// Creates a region allocator; the first chunk is obtained lazily.
    pub fn new(config: RegionConfig) -> Self {
        RegionAlloc {
            config,
            chunks: Vec::new(),
            cursor_addr: None,
            current_chunk: 0,
            code_id: None,
            stats: OpStats::default(),
            tx_alloc_bytes: 0,
            peak_tx_alloc: 0,
            tx_objs: 0,
            free_all_ns: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RegionConfig {
        &self.config
    }

    fn pages(&self) -> PageSize {
        if self.config.large_pages {
            PageSize::Large
        } else {
            PageSize::Base
        }
    }

    fn init(&mut self, port: &mut dyn MemoryPort) -> Addr {
        if let Some(c) = self.cursor_addr {
            return c;
        }
        let cursor_addr = port.os_alloc(64, 64, PageSize::Base);
        let chunk = port.os_alloc(self.config.chunk_bytes, 4096, self.pages());
        port.store_u64(cursor_addr, chunk.raw());
        self.chunks.push(chunk);
        self.cursor_addr = Some(cursor_addr);
        self.current_chunk = 0;
        cursor_addr
    }
}

impl webmm_obs::HeapTelemetry for RegionAlloc {
    fn heap_snapshot(&self) -> webmm_obs::HeapSnapshot {
        webmm_obs::HeapSnapshot {
            allocator: "region-based allocator".into(),
            heap_bytes: self.chunks.len() as u64 * self.config.chunk_bytes,
            // The region streams through fresh lines and never reuses
            // within a transaction, so the paper's Fig. 9 measure — bytes
            // allocated during a transaction — is its touched footprint.
            touched_bytes: self.peak_tx_alloc,
            metadata_bytes: 64,
            tx_live_bytes: self.tx_alloc_bytes,
            peak_tx_bytes: self.peak_tx_alloc,
            segments: self.chunks.len() as u64,
            free_all_count: self.stats.free_alls,
            free_all_ns: self.free_all_ns,
            classes: vec![webmm_obs::ClassOccupancy {
                class: 0,
                object_size: 0, // bump allocation: no size classes
                live: self.tx_objs,
                free: 0, // no free lists, ever
            }],
            ..webmm_obs::HeapSnapshot::default()
        }
    }
}

impl Allocator for RegionAlloc {
    fn name(&self) -> &'static str {
        "region-based allocator"
    }

    fn alloc_traits(&self) -> AllocTraits {
        AllocTraits {
            bulk_free: true,
            per_object_free: false,
            defragmentation: false,
            cost: CostClass::Lowest,
            bandwidth: BandwidthClass::High,
        }
    }

    fn code_spec(&self) -> CodeSpec {
        // A pointer increment and a bounds check: tiny, always L1I-resident.
        CodeSpec::new(2 * 1024, 1024)
    }

    fn malloc(&mut self, port: &mut dyn MemoryPort, size: u64) -> Result<Addr, AllocError> {
        if size == 0 {
            return Err(AllocError::InvalidRequest { requested: 0 });
        }
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let cursor_addr = self.init(port);
        let rounded = round_up(size, 8);

        let cursor = Addr::new(port.load_u64(cursor_addr));
        let chunk_base = self.chunks[self.current_chunk];
        let chunk_end = chunk_base + self.config.chunk_bytes;
        port.exec(5);

        let obj = if cursor + rounded <= chunk_end {
            port.store_u64(cursor_addr, (cursor + rounded).raw());
            cursor
        } else {
            // "When the pointer reaches the end of the chunk, the allocator
            // obtains the next 256 MB chunk."
            if rounded > self.config.chunk_bytes {
                exit_mm(port);
                return Err(AllocError::InvalidRequest { requested: size });
            }
            if self.current_chunk + 1 >= self.config.max_chunks as usize
                && self.chunks.len() >= self.config.max_chunks as usize
            {
                exit_mm(port);
                return Err(AllocError::OutOfMemory { requested: size });
            }
            self.current_chunk += 1;
            let next = if self.current_chunk < self.chunks.len() {
                self.chunks[self.current_chunk]
            } else {
                let c = port.os_alloc(self.config.chunk_bytes, 4096, self.pages());
                self.chunks.push(c);
                c
            };
            port.store_u64(cursor_addr, (next + rounded).raw());
            port.exec(10);
            next
        };

        self.stats.mallocs += 1;
        self.stats.bytes_requested += size;
        self.tx_alloc_bytes += rounded;
        self.peak_tx_alloc = self.peak_tx_alloc.max(self.tx_alloc_bytes);
        self.tx_objs += 1;
        exit_mm(port);
        Ok(obj)
    }

    fn free(&mut self, _port: &mut dyn MemoryPort, _addr: Addr) {
        // No per-object free. The porting recipe removes the calls; if one
        // arrives anyway it is a semantic no-op, like apr_pool free.
        self.stats.frees += 1;
    }

    fn realloc(
        &mut self,
        port: &mut dyn MemoryPort,
        addr: Addr,
        old_size: u64,
        new_size: u64,
    ) -> Result<Addr, AllocError> {
        if new_size == 0 {
            return Err(AllocError::InvalidRequest { requested: 0 });
        }
        // Headerless: the old object's size is only known to the caller.
        if new_size <= round_up(old_size, 8) {
            self.stats.reallocs += 1;
            return Ok(addr);
        }
        let new = self.malloc(port, new_size)?;
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        port.memcpy(new, addr, old_size.min(new_size));
        exit_mm(port);
        self.stats.reallocs += 1;
        self.stats.mallocs -= 1; // internal plumbing
        self.stats.bytes_requested -= new_size;
        Ok(new)
    }

    fn free_all(&mut self, port: &mut dyn MemoryPort) {
        let t0 = std::time::Instant::now();
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let cursor_addr = self.init(port);
        port.store_u64(cursor_addr, self.chunks[0].raw());
        self.current_chunk = 0;
        port.exec(4);
        self.stats.free_alls += 1;
        self.tx_alloc_bytes = 0;
        self.tx_objs = 0;
        self.free_all_ns += t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        exit_mm(port);
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            heap_bytes: self.chunks.len() as u64 * self.config.chunk_bytes,
            metadata_bytes: 64,
            // Figure 9 counts "the total amount of memory allocated during
            // a transaction" for the region allocator.
            peak_tx_alloc_bytes: self.peak_tx_alloc,
        }
    }

    fn stats(&self) -> OpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webmm_sim::PlainPort;

    fn small() -> RegionAlloc {
        RegionAlloc::new(RegionConfig {
            chunk_bytes: 4096,
            max_chunks: 3,
            large_pages: false,
        })
    }

    #[test]
    fn bump_allocation_is_contiguous() {
        let mut port = PlainPort::new();
        let mut r = small();
        let a = r.malloc(&mut port, 1).unwrap();
        let b = r.malloc(&mut port, 9).unwrap();
        let c = r.malloc(&mut port, 8).unwrap();
        assert_eq!(b - a, 8);
        assert_eq!(c - b, 16);
    }

    #[test]
    fn never_reuses_within_a_transaction() {
        let mut port = PlainPort::new();
        let mut r = small();
        let a = r.malloc(&mut port, 64).unwrap();
        r.free(&mut port, a); // no-op
        let b = r.malloc(&mut port, 64).unwrap();
        assert_ne!(a, b, "per-object free must not recycle memory");
        assert_eq!(b - a, 64);
    }

    #[test]
    fn chunk_overflow_obtains_next_chunk() {
        let mut port = PlainPort::new();
        let mut r = small();
        let a = r.malloc(&mut port, 4000).unwrap();
        let b = r.malloc(&mut port, 200).unwrap(); // doesn't fit chunk 0
        assert!(b.raw() >= a.raw() + 4096 || b.raw() >= a.raw() + 4000);
        assert_eq!(r.footprint().heap_bytes, 2 * 4096);
    }

    #[test]
    fn free_all_rewinds_to_first_chunk() {
        let mut port = PlainPort::new();
        let mut r = small();
        let first = r.malloc(&mut port, 100).unwrap();
        r.malloc(&mut port, 4000).unwrap(); // spills into chunk 1
        r.free_all(&mut port);
        assert_eq!(r.malloc(&mut port, 100).unwrap(), first);
        // Existing chunks are kept and reused, not re-reserved.
        r.malloc(&mut port, 4000).unwrap();
        assert_eq!(r.footprint().heap_bytes, 2 * 4096);
    }

    #[test]
    fn oom_after_max_chunks() {
        let mut port = PlainPort::new();
        let mut r = small();
        for _ in 0..3 {
            r.malloc(&mut port, 4096).unwrap();
        }
        assert!(matches!(
            r.malloc(&mut port, 8),
            Err(AllocError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn oversized_request_rejected() {
        let mut port = PlainPort::new();
        let mut r = small();
        assert!(matches!(
            r.malloc(&mut port, 1 << 20),
            Err(AllocError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn realloc_copies_with_caller_size() {
        let mut port = PlainPort::new();
        let mut r = small();
        let a = r.malloc(&mut port, 16).unwrap();
        port.store_u64(a, 7);
        let b = r.realloc(&mut port, a, 16, 64).unwrap();
        assert_ne!(a, b);
        assert_eq!(port.memory().read_u64(b), 7);
        // Shrinking stays in place.
        assert_eq!(r.realloc(&mut port, b, 64, 32).unwrap(), b);
    }

    #[test]
    fn traits_match_table_1() {
        let r = small();
        let t = r.alloc_traits();
        assert!(t.bulk_free);
        assert!(!t.per_object_free);
        assert!(!t.defragmentation);
        assert_eq!(t.cost, CostClass::Lowest);
        assert_eq!(t.bandwidth, BandwidthClass::High);
    }

    #[test]
    fn peak_tx_alloc_tracks_per_transaction_footprint() {
        let mut port = PlainPort::new();
        let mut r = small();
        r.malloc(&mut port, 1000).unwrap();
        r.free_all(&mut port);
        r.malloc(&mut port, 2000).unwrap();
        r.malloc(&mut port, 1000).unwrap();
        assert_eq!(r.footprint().peak_tx_alloc_bytes, 3000);
        r.free_all(&mut port);
        assert_eq!(
            r.footprint().peak_tx_alloc_bytes,
            3000,
            "peak survives freeAll"
        );
    }
}
