//! Allocator registry: build any of the paper's allocators by name.

use crate::api::Allocator;
use crate::ddmalloc::{ClassMapping, DdConfig, DdMalloc};
use crate::dl::{DlAlloc, DlConfig};
use crate::hoard::{HoardAlloc, HoardConfig};
use crate::obstack::{ObstackAlloc, ObstackConfig};
use crate::php_default::{PhpConfig, PhpDefaultAlloc};
use crate::reaps::{ReapAlloc, ReapConfig};
use crate::region::{RegionAlloc, RegionConfig};
use crate::tcmalloc::{TcAlloc, TcConfig};

/// Every allocator studied in the paper, as a buildable enum.
///
/// # One heap, one thread
///
/// The paper's serving model is *process-per-worker*: each PHP/Ruby worker
/// owns a private heap and never shares allocator state (§2.1). The
/// allocators here mirror that — none of them is internally synchronized,
/// so a built allocator must only ever be driven from one thread at a
/// time. Handing a whole heap *to* a thread is fine and is the intended
/// pattern for native execution: `AllocatorKind` is `Copy + Send`, and
/// [`AllocatorKind::build_send`] certifies at compile time that every
/// concrete allocator can move across the spawn boundary. What is *not*
/// supported is two threads calling into the same allocator concurrently;
/// nothing hands out `Sync` access, so the compiler rejects that too.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, serde::Serialize)]
pub enum AllocatorKind {
    /// The paper's contribution: the defrag-dodging DDmalloc (§3).
    DdMalloc,
    /// 256 MB-chunk bump allocator without per-object free (§4.1).
    Region,
    /// GNU-obstack-style chunked region allocator (§4.1).
    Obstack,
    /// The default (Zend-style) allocator of the PHP runtime (§2.2).
    PhpDefault,
    /// Doug-Lea-style glibc malloc (§4.4).
    Dl,
    /// Hoard 3.7-style superblock allocator (§4.4).
    Hoard,
    /// TCmalloc-style thread-caching allocator (§4.4).
    TcMalloc,
    /// Reaps-style region-with-malloc/free allocator (§6 related work).
    Reaps,
}

impl AllocatorKind {
    /// The three allocators of the main PHP study (Figures 1 and 5-9,
    /// Tables 3-4), in the paper's presentation order.
    pub const PHP_STUDY: [AllocatorKind; 3] = [
        AllocatorKind::PhpDefault,
        AllocatorKind::Region,
        AllocatorKind::DdMalloc,
    ];

    /// The four allocators of the Ruby on Rails study (Figures 10-12).
    pub const RUBY_STUDY: [AllocatorKind; 4] = [
        AllocatorKind::Dl,
        AllocatorKind::Hoard,
        AllocatorKind::TcMalloc,
        AllocatorKind::DdMalloc,
    ];

    /// All allocators in this crate.
    pub const ALL: [AllocatorKind; 8] = [
        AllocatorKind::PhpDefault,
        AllocatorKind::Region,
        AllocatorKind::Obstack,
        AllocatorKind::DdMalloc,
        AllocatorKind::Dl,
        AllocatorKind::Hoard,
        AllocatorKind::TcMalloc,
        AllocatorKind::Reaps,
    ];

    /// Builds the allocator with default configuration, tagged with the
    /// simulated process id `pid` (used by DDmalloc's metadata-placement
    /// optimization; ignored by the others).
    pub fn build(self, pid: u32) -> Box<dyn Allocator> {
        self.build_send(pid)
    }

    /// Like [`AllocatorKind::build`], but certifies the heap can be handed
    /// to an OS thread: the returned box is `Send`, which holds because no
    /// allocator in this crate keeps `Rc`/`RefCell`/raw-pointer state.
    ///
    /// This is the constructor the native serving harness
    /// (`webmm-server`) uses — one worker thread, one heap, per the
    /// invariant documented on [`AllocatorKind`].
    pub fn build_send(self, pid: u32) -> Box<dyn Allocator + Send> {
        match self {
            AllocatorKind::DdMalloc => Box::new(DdMalloc::new(DdConfig {
                pid,
                ..DdConfig::default()
            })),
            AllocatorKind::Region => Box::new(RegionAlloc::new(RegionConfig::default())),
            AllocatorKind::Obstack => Box::new(ObstackAlloc::new(ObstackConfig::default())),
            AllocatorKind::PhpDefault => Box::new(PhpDefaultAlloc::new(PhpConfig::default())),
            AllocatorKind::Dl => Box::new(DlAlloc::new(DlConfig::default())),
            AllocatorKind::Hoard => Box::new(HoardAlloc::new(HoardConfig::default())),
            AllocatorKind::TcMalloc => Box::new(TcAlloc::new(TcConfig::default())),
            AllocatorKind::Reaps => Box::new(ReapAlloc::new(ReapConfig::default())),
        }
    }

    /// Builds a DDmalloc with an explicit configuration (ablation studies).
    pub fn build_dd(config: DdConfig) -> Box<dyn Allocator> {
        Box::new(DdMalloc::new(config))
    }

    /// Builds a DDmalloc variant for a given segment size / mapping /
    /// large-page setting, for the ablation benches.
    pub fn build_dd_with(
        segment_bytes: u64,
        mapping: ClassMapping,
        large_pages: bool,
        metadata_offset: bool,
        pid: u32,
    ) -> Box<dyn Allocator> {
        Box::new(DdMalloc::new(DdConfig {
            segment_bytes,
            // Keep the heap capacity constant at 512 MB across segment sizes.
            max_segments: ((512u64 << 20) / segment_bytes) as u32,
            large_pages,
            metadata_offset,
            pid,
            mapping,
        }))
    }

    /// Short stable identifier (for CLI arguments and JSON output).
    pub fn id(self) -> &'static str {
        match self {
            AllocatorKind::DdMalloc => "ddmalloc",
            AllocatorKind::Region => "region",
            AllocatorKind::Obstack => "obstack",
            AllocatorKind::PhpDefault => "php-default",
            AllocatorKind::Dl => "glibc",
            AllocatorKind::Hoard => "hoard",
            AllocatorKind::TcMalloc => "tcmalloc",
            AllocatorKind::Reaps => "reaps",
        }
    }

    /// Parses an id produced by [`AllocatorKind::id`].
    pub fn from_id(id: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.id() == id)
    }
}

impl std::fmt::Display for AllocatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webmm_sim::PlainPort;

    #[test]
    fn every_kind_builds_and_allocates() {
        for kind in AllocatorKind::ALL {
            let mut a = kind.build(3);
            let mut port = PlainPort::new();
            let x = a
                .malloc(&mut port, 100)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(!x.is_null());
            if a.alloc_traits().per_object_free {
                a.free(&mut port, x);
            }
            if a.alloc_traits().bulk_free {
                a.free_all(&mut port);
            }
            assert_eq!(a.stats().mallocs, 1);
        }
    }

    #[test]
    fn id_roundtrip() {
        for kind in AllocatorKind::ALL {
            assert_eq!(AllocatorKind::from_id(kind.id()), Some(kind));
        }
        assert_eq!(AllocatorKind::from_id("nonsense"), None);
    }

    #[test]
    fn study_sets_match_paper() {
        assert_eq!(AllocatorKind::PHP_STUDY.len(), 3);
        assert_eq!(AllocatorKind::RUBY_STUDY.len(), 4);
        // Every PHP-study allocator supports bulk free; the Ruby-study
        // baselines (all but DDmalloc) do not.
        for k in AllocatorKind::PHP_STUDY {
            assert!(k.build(0).alloc_traits().bulk_free, "{k}");
        }
        for k in AllocatorKind::RUBY_STUDY {
            if k != AllocatorKind::DdMalloc {
                assert!(!k.build(0).alloc_traits().bulk_free, "{k}");
            }
        }
    }

    #[test]
    fn names_match_paper_figures() {
        assert_eq!(AllocatorKind::DdMalloc.build(0).name(), "our DDmalloc");
        assert_eq!(
            AllocatorKind::Region.build(0).name(),
            "region-based allocator"
        );
        assert_eq!(
            AllocatorKind::PhpDefault.build(0).name(),
            "default allocator of the PHP runtime"
        );
        assert_eq!(AllocatorKind::Dl.build(0).name(), "glibc");
    }
}
