//! The PHP runtime's default allocator (Zend-MM-style baseline).
//!
//! The paper's baseline "supports both per-object and bulk freeing and it
//! cleans up the heap at the end of each transaction by bulk freeing. In
//! spite of cleaning up the heap every transaction, the default allocator
//! pays a cost for defragmentation activities in malloc and per-object free
//! functions" — specifically, "coalescing and splitting of objects" like
//! Doug Lea's allocator.
//!
//! Built on the shared [`BoundaryHeap`](crate::boundary::BoundaryHeap)
//! engine with unsorted (capped first-fit) large bins and Zend's 256 KB
//! heap segments; per-object boundary headers, split and coalesce included.

use crate::api::{
    enter_mm, exit_mm, round_up, AllocError, AllocTraits, Allocator, BandwidthClass, CostClass,
    Footprint, OpStats,
};
use crate::boundary::{BoundaryHeap, HEADER, MIN_BLOCK};
use webmm_sim::{Addr, CodeRegionId, CodeSpec, MemoryPort};

/// Configuration of a [`PhpDefaultAlloc`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct PhpConfig {
    /// Arena ("segment" in Zend terms) size obtained from the OS.
    pub arena_bytes: u64,
    /// Maximum number of arenas.
    pub max_arenas: u32,
}

impl Default for PhpConfig {
    fn default() -> Self {
        // Zend MM grows its heap in 256 KB segments.
        PhpConfig {
            arena_bytes: 256 * 1024,
            max_arenas: 4096,
        }
    }
}

/// Zend-MM-style allocator: boundary tags, bins, split and coalesce, plus
/// the per-transaction bulk free the PHP runtime relies on.
///
/// # Examples
///
/// ```
/// use webmm_alloc::{Allocator, PhpConfig, PhpDefaultAlloc};
/// use webmm_sim::PlainPort;
///
/// let mut port = PlainPort::new();
/// let mut z = PhpDefaultAlloc::new(PhpConfig::default());
/// let a = z.malloc(&mut port, 100)?;
/// z.free(&mut port, a);
/// let b = z.malloc(&mut port, 100)?;
/// assert_eq!(a, b, "freed block is recycled");
/// z.free_all(&mut port);
/// # Ok::<(), webmm_alloc::AllocError>(())
/// ```
#[derive(Debug)]
pub struct PhpDefaultAlloc {
    heap: BoundaryHeap,
    code_id: Option<CodeRegionId>,
    stats: OpStats,
    /// Cumulative `freeAll` wall cost (telemetry mirror).
    free_all_ns: u64,
}

impl PhpDefaultAlloc {
    /// Creates the allocator; the first arena is obtained lazily.
    pub fn new(config: PhpConfig) -> Self {
        PhpDefaultAlloc {
            heap: BoundaryHeap::with_exec_scale(config.arena_bytes, config.max_arenas, false, 0.7),
            code_id: None,
            stats: OpStats::default(),
            free_all_ns: 0,
        }
    }
}

impl webmm_obs::HeapTelemetry for PhpDefaultAlloc {
    fn heap_snapshot(&self) -> webmm_obs::HeapSnapshot {
        webmm_obs::HeapSnapshot {
            allocator: "default allocator of the PHP runtime".into(),
            free_all_count: self.stats.free_alls,
            free_all_ns: self.free_all_ns,
            ..self.heap.snapshot()
        }
    }
}

impl Allocator for PhpDefaultAlloc {
    fn name(&self) -> &'static str {
        "default allocator of the PHP runtime"
    }

    fn alloc_traits(&self) -> AllocTraits {
        AllocTraits {
            bulk_free: true,
            per_object_free: true,
            defragmentation: true,
            cost: CostClass::High,
            bandwidth: BandwidthClass::Low,
        }
    }

    fn code_spec(&self) -> CodeSpec {
        // A full general-purpose allocator: bins, bitmap, split, coalesce.
        CodeSpec::new(28 * 1024, 5 * 1024)
    }

    fn malloc(&mut self, port: &mut dyn MemoryPort, size: u64) -> Result<Addr, AllocError> {
        if size == 0 {
            return Err(AllocError::InvalidRequest { requested: 0 });
        }
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let r = self.heap.malloc(port, size);
        if r.is_ok() {
            self.stats.mallocs += 1;
            self.stats.bytes_requested += size;
        }
        exit_mm(port);
        r
    }

    fn free(&mut self, port: &mut dyn MemoryPort, addr: Addr) {
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        self.heap.free(port, addr);
        self.stats.frees += 1;
        exit_mm(port);
    }

    fn realloc(
        &mut self,
        port: &mut dyn MemoryPort,
        addr: Addr,
        _old_size: u64,
        new_size: u64,
    ) -> Result<Addr, AllocError> {
        if new_size == 0 {
            return Err(AllocError::InvalidRequest { requested: 0 });
        }
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let usable = self.heap.usable(port, addr);
        exit_mm(port);
        if round_up(new_size, 8).max(MIN_BLOCK - HEADER) <= usable {
            self.stats.reallocs += 1;
            return Ok(addr);
        }
        let new = self.malloc(port, new_size)?;
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        port.memcpy(new, addr, usable.min(new_size));
        exit_mm(port);
        self.free(port, addr);
        self.stats.reallocs += 1;
        self.stats.mallocs -= 1; // internal plumbing, not API calls
        self.stats.frees -= 1;
        self.stats.bytes_requested -= new_size;
        Ok(new)
    }

    fn free_all(&mut self, port: &mut dyn MemoryPort) {
        let t0 = std::time::Instant::now();
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        self.heap.reset(port);
        self.stats.free_alls += 1;
        self.free_all_ns += t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        exit_mm(port);
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            heap_bytes: self.heap.heap_bytes(),
            metadata_bytes: self.heap.metadata_bytes(),
            peak_tx_alloc_bytes: self.heap.peak_tx_alloc(),
        }
    }

    fn stats(&self) -> OpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webmm_sim::PlainPort;

    fn php() -> PhpDefaultAlloc {
        PhpDefaultAlloc::new(PhpConfig {
            arena_bytes: 64 * 1024,
            max_arenas: 64,
        })
    }

    #[test]
    fn blocks_have_boundary_headers() {
        let mut port = PlainPort::new();
        let mut z = php();
        let a = z.malloc(&mut port, 24).unwrap();
        let b = z.malloc(&mut port, 24).unwrap();
        // 24 + 16 header → 40 bytes apart.
        assert_eq!(b - a, 40);
    }

    #[test]
    fn free_then_malloc_recycles_exact_fit() {
        let mut port = PlainPort::new();
        let mut z = php();
        let a = z.malloc(&mut port, 100).unwrap();
        let _guard = z.malloc(&mut port, 100).unwrap(); // prevent wilderness absorb
        z.free(&mut port, a);
        let b = z.malloc(&mut port, 100).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn split_returns_remainder_to_bins() {
        let mut port = PlainPort::new();
        let mut z = php();
        let a = z.malloc(&mut port, 1000).unwrap();
        let _guard = z.malloc(&mut port, 8).unwrap();
        z.free(&mut port, a);
        // A small request splits the 1016-byte free block.
        let b = z.malloc(&mut port, 100).unwrap();
        assert_eq!(b, a, "reuses the front of the split block");
        // The remainder serves the next request without growing the heap.
        let c = z.malloc(&mut port, 100).unwrap();
        assert!(c > b && c < a + 1016);
    }

    #[test]
    fn coalesce_with_next_and_prev() {
        let mut port = PlainPort::new();
        let mut z = php();
        let a = z.malloc(&mut port, 100).unwrap(); // 120-byte blocks
        let b = z.malloc(&mut port, 100).unwrap();
        let c = z.malloc(&mut port, 100).unwrap();
        let _guard = z.malloc(&mut port, 8).unwrap();
        // Free a and c, then b: b must merge with both neighbours.
        z.free(&mut port, a);
        z.free(&mut port, c);
        z.free(&mut port, b);
        // A 340-byte request fits only in the coalesced 360-byte block.
        let big = z.malloc(&mut port, 340).unwrap();
        assert_eq!(
            big, a,
            "coalesced block serves a request none of the parts could"
        );
    }

    #[test]
    fn wilderness_absorbs_trailing_free() {
        let mut port = PlainPort::new();
        let mut z = php();
        let a = z.malloc(&mut port, 100).unwrap();
        z.free(&mut port, a); // last block: absorbed into wilderness
        let b = z.malloc(&mut port, 200).unwrap();
        assert_eq!(b, a, "wilderness rewound over the freed block");
    }

    #[test]
    fn free_all_resets_heap() {
        let mut port = PlainPort::new();
        let mut z = php();
        let first = z.malloc(&mut port, 64).unwrap();
        for _ in 0..200 {
            z.malloc(&mut port, 128).unwrap();
        }
        z.free_all(&mut port);
        assert_eq!(z.malloc(&mut port, 64).unwrap(), first);
        assert_eq!(z.stats().free_alls, 1);
    }

    #[test]
    fn arena_growth_and_oom() {
        let mut port = PlainPort::new();
        let mut z = PhpDefaultAlloc::new(PhpConfig {
            arena_bytes: 4096,
            max_arenas: 2,
        });
        let mut n = 0;
        loop {
            match z.malloc(&mut port, 1000) {
                Ok(_) => n += 1,
                Err(AllocError::OutOfMemory { .. }) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(n < 100, "OOM never hit");
        }
        assert!(n >= 6, "two 4 KB arenas hold at least 6 × 1016-byte blocks");
        assert_eq!(z.footprint().heap_bytes, 2 * 4096);
    }

    #[test]
    fn realloc_in_place_and_moving() {
        let mut port = PlainPort::new();
        let mut z = php();
        let a = z.malloc(&mut port, 64).unwrap();
        port.store_u64(a, 0xdada);
        assert_eq!(
            z.realloc(&mut port, a, 64, 60).unwrap(),
            a,
            "shrink in place"
        );
        let b = z.realloc(&mut port, a, 60, 4000).unwrap();
        assert_ne!(a, b);
        assert_eq!(port.memory().read_u64(b), 0xdada);
    }

    #[test]
    fn traits_match_table_1() {
        let z = php();
        let t = z.alloc_traits();
        assert!(t.bulk_free);
        assert!(t.per_object_free);
        assert!(t.defragmentation);
        assert_eq!(t.cost, CostClass::High);
        assert_eq!(t.bandwidth, BandwidthClass::Low);
    }

    #[test]
    fn defrag_makes_ops_costlier_than_ddmalloc() {
        // The paper's core cost claim, checked at the instruction level.
        use crate::ddmalloc::{DdConfig, DdMalloc};
        let measure = |alloc: &mut dyn Allocator| {
            let mut port = PlainPort::new();
            // Warm up, then measure a steady-state malloc/free churn.
            let mut objs: Vec<_> = (0..64)
                .map(|_| alloc.malloc(&mut port, 64).unwrap())
                .collect();
            let start = port.instructions();
            for _ in 0..1000 {
                let o = objs.pop().unwrap();
                alloc.free(&mut port, o);
                objs.push(alloc.malloc(&mut port, 64).unwrap());
            }
            port.instructions() - start
        };
        let php_cost = measure(&mut php());
        let dd_cost = measure(&mut DdMalloc::new(DdConfig::default()));
        assert!(
            php_cost as f64 > 1.4 * dd_cost as f64,
            "defragmentation must dominate: php={php_cost}, dd={dd_cost}"
        );
    }

    #[test]
    fn header_overhead_vs_ddmalloc() {
        // 16 bytes per object vs DDmalloc's zero: the space story of Fig 9.
        use crate::ddmalloc::{DdConfig, DdMalloc};
        let mut port = PlainPort::new();
        let mut z = php();
        let mut dd = DdMalloc::new(DdConfig::default());
        let za = z.malloc(&mut port, 64).unwrap();
        let zb = z.malloc(&mut port, 64).unwrap();
        let da = dd.malloc(&mut port, 64).unwrap();
        let db = dd.malloc(&mut port, 64).unwrap();
        assert_eq!(zb - za, 80);
        assert_eq!(db - da, 64);
    }
}
