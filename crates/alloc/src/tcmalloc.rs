//! TCmalloc-style allocator (§4.4 baseline).
//!
//! Ghemawat & Menage's TCmalloc [12] serves small objects from per-thread
//! cache free lists backed by central lists of span-carved objects. The
//! paper's point about it: "TCmalloc ... reduces the overhead by *delaying*
//! the defragmentation activities until the total size of the memory
//! objects in the free lists exceeds a threshold. However TCmalloc still
//! has costs for the delayed defragmentation activities and the costs
//! matter for the overall performance." We model exactly that: a fast
//! LIFO thread-cache path, batched refills from central lists, and a
//! threshold-triggered *release* that migrates half the thread-cache list
//! back to the central list — the delayed defragmentation burst.
//!
//! Objects above the span payload limit go to a boundary-tag page heap.

use crate::api::{
    enter_mm, exit_mm, AllocError, AllocTraits, Allocator, BandwidthClass, CostClass, Footprint,
    OpStats,
};
use crate::boundary::BoundaryHeap;
use webmm_sim::{Addr, CodeRegionId, CodeSpec, MemoryPort, PageSize};

/// Span size: the granularity central lists carve objects from.
const SPAN_BYTES: u64 = 32 * 1024;
/// Requests above this go to the page heap.
const LARGE_THRESHOLD: u64 = 16 * 1024;
/// Objects moved per thread-cache refill.
const BATCH: u64 = 16;
/// Thread-cache list length that triggers a release to the central list.
const RELEASE_AT: u64 = 4 * BATCH;

/// The size classes: 8-byte steps to 128, 32-byte steps to 512, then
/// half-power-of-two steps to 16 KB (close to real TCmalloc's table).
const CLASS_SIZES: [u64; 36] = [
    8, 16, 24, 32, 40, 48, 56, 64, 72, 80, 96, 112, 128, 160, 192, 224, 256, 288, 320, 384, 448,
    512, 640, 768, 1024, 1536, 2048, 3072, 4096, 6144, 8192, 10240, 12288, 14336, 15360, 16384,
];
const N_CLASSES: usize = CLASS_SIZES.len();

/// Configuration of a [`TcAlloc`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct TcConfig {
    /// Maximum number of spans in the small-object area.
    pub max_spans: u32,
}

impl Default for TcConfig {
    fn default() -> Self {
        TcConfig {
            max_spans: 16 * 1024,
        } // 512 MB of span address space
    }
}

/// Simulated-memory metadata layout.
#[derive(Copy, Clone, Debug)]
struct Layout {
    /// tc_head[class]: thread-cache free-list head.
    tc_head: Addr,
    /// tc_len[class]: thread-cache list length.
    tc_len: Addr,
    /// central_head[class]: central free-list head.
    central: Addr,
    /// bump[class]: carve cursor within the class's open span (0 = none).
    bump: Addr,
    /// bump_left[class]: bytes left in the open span.
    bump_left: Addr,
    /// Next fresh span index.
    next_span: Addr,
    /// span_class[span]: class + 1, one byte per span (the "pagemap").
    span_map: Addr,
    /// First span.
    span_base: Addr,
}

/// Thread-caching allocator in the style of TCmalloc.
///
/// # Examples
///
/// ```
/// use webmm_alloc::{Allocator, TcAlloc, TcConfig};
/// use webmm_sim::PlainPort;
///
/// let mut port = PlainPort::new();
/// let mut tc = TcAlloc::new(TcConfig::default());
/// let a = tc.malloc(&mut port, 100)?;
/// tc.free(&mut port, a);
/// let b = tc.malloc(&mut port, 100)?;
/// assert_eq!(a, b, "thread cache is LIFO");
/// # Ok::<(), webmm_alloc::AllocError>(())
/// ```
#[derive(Debug)]
pub struct TcAlloc {
    config: TcConfig,
    layout: Option<Layout>,
    page_heap: BoundaryHeap,
    code_id: Option<CodeRegionId>,
    stats: OpStats,
    spans_mirror: u64,
    tx_alloc_bytes: u64,
    peak_tx_alloc: u64,
    /// Telemetry mirrors: live small objects, thread-cache free-list
    /// lengths, and central free-list lengths, all per class. They shadow
    /// the `tc_len`/list state kept in simulated memory so snapshots never
    /// touch the port.
    class_live: [u64; N_CLASSES],
    tc_free: [u64; N_CLASSES],
    central_free: [u64; N_CLASSES],
}

impl TcAlloc {
    /// Creates the allocator; memory is obtained lazily.
    pub fn new(config: TcConfig) -> Self {
        TcAlloc {
            config,
            layout: None,
            page_heap: BoundaryHeap::new(1024 * 1024, 1024, false),
            code_id: None,
            stats: OpStats::default(),
            spans_mirror: 0,
            tx_alloc_bytes: 0,
            peak_tx_alloc: 0,
            class_live: [0; N_CLASSES],
            tc_free: [0; N_CLASSES],
            central_free: [0; N_CLASSES],
        }
    }

    fn class_of(size: u64) -> Option<usize> {
        if size > LARGE_THRESHOLD {
            return None;
        }
        match CLASS_SIZES.binary_search(&size) {
            Ok(i) => Some(i),
            Err(i) => Some(i),
        }
    }

    fn layout(&mut self, port: &mut dyn MemoryPort) -> Layout {
        if let Some(l) = self.layout {
            return l;
        }
        let n = N_CLASSES as u64;
        let spans = u64::from(self.config.max_spans);
        let meta = port.os_alloc(n * 8 * 5 + 8 + spans, 4096, PageSize::Base);
        let span_base = port.os_alloc(spans * SPAN_BYTES, SPAN_BYTES, PageSize::Base);
        let l = Layout {
            tc_head: meta,
            tc_len: meta + n * 8,
            central: meta + n * 16,
            bump: meta + n * 24,
            bump_left: meta + n * 32,
            next_span: meta + n * 40,
            span_map: meta + n * 40 + 8,
            span_base,
        };
        self.layout = Some(l);
        l
    }

    /// Refills the thread cache with up to `BATCH` objects from the central
    /// list / span carver, returning one object for immediate use.
    fn refill(
        &mut self,
        port: &mut dyn MemoryPort,
        l: &Layout,
        class: usize,
    ) -> Result<Addr, AllocError> {
        let size = CLASS_SIZES[class];
        let central_addr = l.central + class as u64 * 8;
        let tc_head_addr = l.tc_head + class as u64 * 8;
        let tc_len_addr = l.tc_len + class as u64 * 8;

        let mut got: Option<Addr> = None;
        let mut moved = 0u64;
        let mut from_central = 0u64;
        // 1. Drain the central list first.
        let mut central = Addr::new(port.load_u64(central_addr));
        port.exec(6);
        while !central.is_null() && moved < BATCH {
            let next = Addr::new(port.load_u64(central));
            if got.is_none() {
                got = Some(central);
            } else {
                let head = port.load_u64(tc_head_addr);
                port.store_u64(central, head);
                port.store_u64(tc_head_addr, central.raw());
            }
            central = next;
            moved += 1;
            from_central += 1;
            port.exec(4);
        }
        port.store_u64(central_addr, central.raw());
        self.central_free[class] = self.central_free[class].saturating_sub(from_central);

        // 2. Carve the rest from the open span.
        while moved < BATCH {
            let bump_addr = l.bump + class as u64 * 8;
            let left_addr = l.bump_left + class as u64 * 8;
            let mut bump = port.load_u64(bump_addr);
            let mut left = port.load_u64(left_addr);
            port.exec(4);
            if left < size {
                // Open a fresh span.
                let idx = port.load_u64(l.next_span);
                if idx >= u64::from(self.config.max_spans) {
                    if got.is_some() || moved > 0 {
                        break; // hand out what we have
                    }
                    return Err(AllocError::OutOfMemory { requested: size });
                }
                port.store_u64(l.next_span, idx + 1);
                port.store_u8(l.span_map + idx, class as u8 + 1);
                self.spans_mirror = self.spans_mirror.max(idx + 1);
                bump = (l.span_base + idx * SPAN_BYTES).raw();
                left = SPAN_BYTES;
                port.exec(10);
            }
            let obj = Addr::new(bump);
            bump += size;
            left -= size;
            port.store_u64(bump_addr, bump);
            port.store_u64(left_addr, left);
            if got.is_none() {
                got = Some(obj);
            } else {
                let head = port.load_u64(tc_head_addr);
                port.store_u64(obj, head);
                port.store_u64(tc_head_addr, obj.raw());
            }
            moved += 1;
            port.exec(4);
        }

        let len = port.load_u64(tc_len_addr);
        port.store_u64(tc_len_addr, len + moved.saturating_sub(1));
        port.exec(4);
        self.tc_free[class] += moved.saturating_sub(1);
        got.ok_or(AllocError::OutOfMemory { requested: size })
    }

    /// The delayed defragmentation: migrate half the thread-cache list back
    /// to the central list once it exceeds the release threshold.
    fn release_to_central(&mut self, port: &mut dyn MemoryPort, l: &Layout, class: usize) {
        let tc_head_addr = l.tc_head + class as u64 * 8;
        let tc_len_addr = l.tc_len + class as u64 * 8;
        let central_addr = l.central + class as u64 * 8;
        let mut head = Addr::new(port.load_u64(tc_head_addr));
        let mut central = port.load_u64(central_addr);
        let mut moved = 0;
        while !head.is_null() && moved < RELEASE_AT / 2 {
            let next = Addr::new(port.load_u64(head));
            port.store_u64(head, central);
            central = head.raw();
            head = next;
            moved += 1;
            port.exec(4);
        }
        port.store_u64(tc_head_addr, head.raw());
        port.store_u64(central_addr, central);
        let len = port.load_u64(tc_len_addr);
        port.store_u64(tc_len_addr, len - moved);
        port.exec(8);
        self.tc_free[class] = self.tc_free[class].saturating_sub(moved);
        self.central_free[class] += moved;
    }

    /// Span index and class for a small-object address.
    fn span_class(&self, port: &mut dyn MemoryPort, l: &Layout, addr: Addr) -> usize {
        let idx = (addr - l.span_base) / SPAN_BYTES;
        let tag = port.load_u8(l.span_map + idx);
        debug_assert!(tag > 0, "free of address in an unused span");
        port.exec(3);
        usize::from(tag - 1)
    }
}

impl webmm_obs::HeapTelemetry for TcAlloc {
    fn heap_snapshot(&self) -> webmm_obs::HeapSnapshot {
        let ph = self.page_heap.snapshot();
        webmm_obs::HeapSnapshot {
            allocator: "TCmalloc".into(),
            heap_bytes: self.spans_mirror * SPAN_BYTES + ph.heap_bytes,
            // Spans are carved sequentially from the reserved area, so the
            // span high-water mark is the touched extent.
            touched_bytes: self.spans_mirror * SPAN_BYTES + ph.touched_bytes,
            metadata_bytes: (N_CLASSES as u64) * 40
                + 8
                + u64::from(self.config.max_spans)
                + ph.metadata_bytes,
            tx_live_bytes: self.tx_alloc_bytes,
            peak_tx_bytes: self.peak_tx_alloc,
            segments: self.spans_mirror + ph.segments,
            free_list_len: self.tc_free.iter().sum::<u64>()
                + self.central_free.iter().sum::<u64>()
                + ph.free_list_len,
            free_bytes: (0..N_CLASSES)
                .map(|c| (self.tc_free[c] + self.central_free[c]) * CLASS_SIZES[c])
                .sum::<u64>()
                + ph.free_bytes,
            // No freeAll here, ever: free_all_count/free_all_ns stay 0.
            free_all_count: 0,
            free_all_ns: 0,
            classes: (0..N_CLASSES)
                .map(|c| webmm_obs::ClassOccupancy {
                    class: c as u32,
                    object_size: CLASS_SIZES[c],
                    live: self.class_live[c],
                    free: self.tc_free[c] + self.central_free[c],
                })
                .collect(),
        }
    }
}

impl Allocator for TcAlloc {
    fn name(&self) -> &'static str {
        "TCmalloc"
    }

    fn alloc_traits(&self) -> AllocTraits {
        AllocTraits {
            bulk_free: false,
            per_object_free: true,
            defragmentation: true, // delayed, not eliminated
            cost: CostClass::High,
            bandwidth: BandwidthClass::Low,
        }
    }

    fn code_spec(&self) -> CodeSpec {
        CodeSpec::new(30 * 1024, 4 * 1024)
    }

    fn malloc(&mut self, port: &mut dyn MemoryPort, size: u64) -> Result<Addr, AllocError> {
        if size == 0 {
            return Err(AllocError::InvalidRequest { requested: 0 });
        }
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let result = match Self::class_of(size) {
            None => {
                let r = self.page_heap.malloc(port, size);
                if r.is_ok() {
                    self.tx_alloc_bytes += size;
                }
                r
            }
            Some(class) => {
                let l = self.layout(port);
                let tc_head_addr = l.tc_head + class as u64 * 8;
                let head = Addr::new(port.load_u64(tc_head_addr));
                port.exec(10);
                let r = if !head.is_null() {
                    // Fast path: pop the thread cache (class-mapping math
                    // plus the sampling/threshold checks of the real thing).
                    let next = port.load_u64(head);
                    port.store_u64(tc_head_addr, next);
                    let len_addr = l.tc_len + class as u64 * 8;
                    let len = port.load_u64(len_addr);
                    port.store_u64(len_addr, len.saturating_sub(1));
                    port.exec(8);
                    self.tc_free[class] = self.tc_free[class].saturating_sub(1);
                    Ok(head)
                } else {
                    self.refill(port, &l, class)
                };
                if r.is_ok() {
                    self.tx_alloc_bytes += CLASS_SIZES[class];
                    self.class_live[class] += 1;
                }
                r
            }
        };
        if result.is_ok() {
            self.stats.mallocs += 1;
            self.stats.bytes_requested += size;
            self.peak_tx_alloc = self.peak_tx_alloc.max(self.tx_alloc_bytes);
        }
        exit_mm(port);
        result
    }

    fn free(&mut self, port: &mut dyn MemoryPort, addr: Addr) {
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        if self.page_heap.contains(addr) {
            self.page_heap.free(port, addr);
            port.exec(4);
            self.stats.frees += 1;
            exit_mm(port);
            return;
        }
        let l = self.layout(port);
        let class = self.span_class(port, &l, addr);
        let tc_head_addr = l.tc_head + class as u64 * 8;
        let head = port.load_u64(tc_head_addr);
        port.store_u64(addr, head);
        port.store_u64(tc_head_addr, addr.raw());
        let len_addr = l.tc_len + class as u64 * 8;
        let len = port.load_u64(len_addr) + 1;
        port.store_u64(len_addr, len);
        port.exec(12);
        self.tx_alloc_bytes = self.tx_alloc_bytes.saturating_sub(CLASS_SIZES[class]);
        self.class_live[class] = self.class_live[class].saturating_sub(1);
        self.tc_free[class] += 1;
        if len >= RELEASE_AT {
            self.release_to_central(port, &l, class);
        }
        self.stats.frees += 1;
        exit_mm(port);
    }

    fn realloc(
        &mut self,
        port: &mut dyn MemoryPort,
        addr: Addr,
        old_size: u64,
        new_size: u64,
    ) -> Result<Addr, AllocError> {
        if new_size == 0 {
            return Err(AllocError::InvalidRequest { requested: 0 });
        }
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let usable = if self.page_heap.contains(addr) {
            self.page_heap.usable(port, addr)
        } else {
            let l = self.layout(port);
            CLASS_SIZES[self.span_class(port, &l, addr)]
        };
        exit_mm(port);
        if new_size <= usable && new_size * 2 >= usable {
            self.stats.reallocs += 1;
            return Ok(addr);
        }
        let new = self.malloc(port, new_size)?;
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        port.memcpy(new, addr, usable.min(new_size).min(old_size.max(1)));
        exit_mm(port);
        self.free(port, addr);
        self.stats.reallocs += 1;
        self.stats.mallocs -= 1;
        self.stats.frees -= 1;
        self.stats.bytes_requested -= new_size;
        Ok(new)
    }

    /// # Panics
    ///
    /// Always panics: TCmalloc has no bulk-free interface (§4.4 — the Ruby
    /// runtime restarts processes instead).
    fn free_all(&mut self, _port: &mut dyn MemoryPort) {
        panic!("TCmalloc does not support freeAll; restart the process instead");
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            heap_bytes: self.spans_mirror * SPAN_BYTES + self.page_heap.heap_bytes(),
            metadata_bytes: (N_CLASSES as u64) * 40 + 8 + u64::from(self.config.max_spans),
            peak_tx_alloc_bytes: self.peak_tx_alloc,
        }
    }

    fn stats(&self) -> OpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webmm_sim::PlainPort;

    fn tc() -> TcAlloc {
        TcAlloc::new(TcConfig { max_spans: 64 })
    }

    #[test]
    fn class_table_is_sorted_and_minimal() {
        for w in CLASS_SIZES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for size in 1..=LARGE_THRESHOLD {
            let c = TcAlloc::class_of(size).unwrap();
            assert!(CLASS_SIZES[c] >= size);
            if c > 0 {
                assert!(CLASS_SIZES[c - 1] < size);
            }
        }
        assert_eq!(TcAlloc::class_of(LARGE_THRESHOLD + 1), None);
    }

    #[test]
    fn thread_cache_fast_path_is_lifo() {
        let mut port = PlainPort::new();
        let mut t = tc();
        let a = t.malloc(&mut port, 64).unwrap();
        let b = t.malloc(&mut port, 64).unwrap();
        t.free(&mut port, a);
        t.free(&mut port, b);
        assert_eq!(t.malloc(&mut port, 64).unwrap(), b);
        assert_eq!(t.malloc(&mut port, 64).unwrap(), a);
    }

    #[test]
    fn refill_hands_out_sequential_objects() {
        let mut port = PlainPort::new();
        let mut t = tc();
        // First malloc refills from a fresh span; spans carve sequentially.
        let a = t.malloc(&mut port, 64).unwrap();
        let b = t.malloc(&mut port, 64).unwrap();
        // The refill pushed BATCH-1 objects to the cache in reverse carve
        // order, so consecutive mallocs walk back toward the span start...
        // after the cache drains, carving resumes upward.
        assert_ne!(a, b);
        assert_eq!(a.align_down(SPAN_BYTES), b.align_down(SPAN_BYTES));
    }

    #[test]
    fn release_threshold_triggers_central_migration() {
        let mut port = PlainPort::new();
        let mut t = tc();
        // Exactly RELEASE_AT objects: a multiple of BATCH, so the refills
        // carve precisely this many and the conservation check is exact.
        let objs: Vec<_> = (0..RELEASE_AT)
            .map(|_| t.malloc(&mut port, 32).unwrap())
            .collect();
        // Free everything: crossing RELEASE_AT must migrate objects without
        // losing any (conservation check: we can get them all back).
        for o in &objs {
            t.free(&mut port, *o);
        }
        let mut back = std::collections::HashSet::new();
        for _ in 0..objs.len() {
            back.insert(t.malloc(&mut port, 32).unwrap());
        }
        assert_eq!(back.len(), objs.len(), "no object lost or duplicated");
        for o in &objs {
            assert!(back.contains(o), "all original objects recycled");
        }
    }

    #[test]
    fn large_objects_route_to_page_heap() {
        let mut port = PlainPort::new();
        let mut t = tc();
        let a = t.malloc(&mut port, 64 * 1024).unwrap();
        t.free(&mut port, a);
        assert_eq!(t.malloc(&mut port, 64 * 1024).unwrap(), a);
    }

    #[test]
    fn spans_are_per_class() {
        let mut port = PlainPort::new();
        let mut t = tc();
        let a = t.malloc(&mut port, 8).unwrap();
        let b = t.malloc(&mut port, 1024).unwrap();
        assert_ne!(a.align_down(SPAN_BYTES), b.align_down(SPAN_BYTES));
    }

    #[test]
    fn oom_on_span_exhaustion() {
        let mut port = PlainPort::new();
        let mut t = TcAlloc::new(TcConfig { max_spans: 1 });
        // One span of 16 KB objects: 2 objects.
        t.malloc(&mut port, 16 * 1024).unwrap();
        t.malloc(&mut port, 16 * 1024).unwrap();
        assert!(t.malloc(&mut port, 16 * 1024).is_err());
    }

    #[test]
    #[should_panic(expected = "does not support freeAll")]
    fn free_all_panics() {
        let mut port = PlainPort::new();
        let mut t = tc();
        t.malloc(&mut port, 8).unwrap();
        t.free_all(&mut port);
    }

    #[test]
    fn realloc_roundtrip() {
        let mut port = PlainPort::new();
        let mut t = tc();
        let a = t.malloc(&mut port, 64).unwrap();
        port.store_u64(a, 11);
        let b = t.realloc(&mut port, a, 64, 20_000).unwrap();
        assert_eq!(port.memory().read_u64(b), 11);
    }
}
