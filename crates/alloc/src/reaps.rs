//! Reaps-style allocator (related work, §6).
//!
//! Berger, Zorn & McKinley's *Reaps* [9] "combines the conventional
//! malloc/free and the region-based memory management ... it supports both
//! per-object free and bulk free for all of the objects in a region. In
//! contrast to ours, their allocator acts in almost the same way as Doug
//! Lea's allocator for per-object free ... Thus the Reaps also pays cost
//! of the defragmentation activities, which is excessive for short-lived
//! transactions in Web-based applications, like the default allocator of
//! the PHP runtime."
//!
//! Implemented as the shared boundary-tag engine (Lea-style sorted bins,
//! split, coalesce) *plus* the bulk `free_all` reset — exactly the
//! combination the paper describes. Comparing it against DDmalloc isolates
//! the paper's thesis: bulk free alone is not the win; *dodging
//! defragmentation* is (see the `reaps_vs_ddmalloc` ablation).

use crate::api::{
    enter_mm, exit_mm, round_up, AllocError, AllocTraits, Allocator, BandwidthClass, CostClass,
    Footprint, OpStats,
};
use crate::boundary::{BoundaryHeap, HEADER, MIN_BLOCK};
use webmm_sim::{Addr, CodeRegionId, CodeSpec, MemoryPort};

/// Configuration of a [`ReapAlloc`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct ReapConfig {
    /// Region growth granularity.
    pub arena_bytes: u64,
    /// Maximum number of arenas.
    pub max_arenas: u32,
}

impl Default for ReapConfig {
    fn default() -> Self {
        ReapConfig {
            arena_bytes: 256 * 1024,
            max_arenas: 4096,
        }
    }
}

/// Reap: a region with full Lea-style malloc/free inside it.
///
/// # Examples
///
/// ```
/// use webmm_alloc::{Allocator, ReapAlloc, ReapConfig};
/// use webmm_sim::PlainPort;
///
/// let mut port = PlainPort::new();
/// let mut reap = ReapAlloc::new(ReapConfig::default());
/// let a = reap.malloc(&mut port, 100)?;
/// reap.free(&mut port, a);      // per-object free: Lea-style
/// reap.free_all(&mut port);     // bulk free: region-style
/// # Ok::<(), webmm_alloc::AllocError>(())
/// ```
#[derive(Debug)]
pub struct ReapAlloc {
    heap: BoundaryHeap,
    code_id: Option<CodeRegionId>,
    stats: OpStats,
    /// Cumulative `freeAll` wall cost (telemetry mirror).
    free_all_ns: u64,
}

impl ReapAlloc {
    /// Creates the allocator; memory is obtained lazily.
    pub fn new(config: ReapConfig) -> Self {
        ReapAlloc {
            heap: BoundaryHeap::new(config.arena_bytes, config.max_arenas, true),
            code_id: None,
            stats: OpStats::default(),
            free_all_ns: 0,
        }
    }
}

impl webmm_obs::HeapTelemetry for ReapAlloc {
    fn heap_snapshot(&self) -> webmm_obs::HeapSnapshot {
        webmm_obs::HeapSnapshot {
            allocator: "Reaps".into(),
            free_all_count: self.stats.free_alls,
            free_all_ns: self.free_all_ns,
            ..self.heap.snapshot()
        }
    }
}

impl Allocator for ReapAlloc {
    fn name(&self) -> &'static str {
        "Reaps"
    }

    fn alloc_traits(&self) -> AllocTraits {
        AllocTraits {
            bulk_free: true,
            per_object_free: true,
            defragmentation: true, // the point of the comparison
            cost: CostClass::High,
            bandwidth: BandwidthClass::Low,
        }
    }

    fn code_spec(&self) -> CodeSpec {
        CodeSpec::new(26 * 1024, 5 * 1024)
    }

    fn malloc(&mut self, port: &mut dyn MemoryPort, size: u64) -> Result<Addr, AllocError> {
        if size == 0 {
            return Err(AllocError::InvalidRequest { requested: 0 });
        }
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let r = self.heap.malloc(port, size);
        if r.is_ok() {
            self.stats.mallocs += 1;
            self.stats.bytes_requested += size;
        }
        exit_mm(port);
        r
    }

    fn free(&mut self, port: &mut dyn MemoryPort, addr: Addr) {
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        self.heap.free(port, addr);
        self.stats.frees += 1;
        exit_mm(port);
    }

    fn realloc(
        &mut self,
        port: &mut dyn MemoryPort,
        addr: Addr,
        _old_size: u64,
        new_size: u64,
    ) -> Result<Addr, AllocError> {
        if new_size == 0 {
            return Err(AllocError::InvalidRequest { requested: 0 });
        }
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let usable = self.heap.usable(port, addr);
        exit_mm(port);
        if round_up(new_size, 8).max(MIN_BLOCK - HEADER) <= usable {
            self.stats.reallocs += 1;
            return Ok(addr);
        }
        let new = self.malloc(port, new_size)?;
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        port.memcpy(new, addr, usable.min(new_size));
        exit_mm(port);
        self.free(port, addr);
        self.stats.reallocs += 1;
        self.stats.mallocs -= 1;
        self.stats.frees -= 1;
        self.stats.bytes_requested -= new_size;
        Ok(new)
    }

    fn free_all(&mut self, port: &mut dyn MemoryPort) {
        let t0 = std::time::Instant::now();
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        self.heap.reset(port);
        self.stats.free_alls += 1;
        self.free_all_ns += t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        exit_mm(port);
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            heap_bytes: self.heap.heap_bytes(),
            metadata_bytes: self.heap.metadata_bytes(),
            peak_tx_alloc_bytes: self.heap.peak_tx_alloc(),
        }
    }

    fn stats(&self) -> OpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddmalloc::{DdConfig, DdMalloc};
    use webmm_sim::PlainPort;

    fn reap() -> ReapAlloc {
        ReapAlloc::new(ReapConfig {
            arena_bytes: 64 * 1024,
            max_arenas: 64,
        })
    }

    #[test]
    fn both_free_modes_work() {
        let mut port = PlainPort::new();
        let mut r = reap();
        let a = r.malloc(&mut port, 100).unwrap();
        let guard = r.malloc(&mut port, 100).unwrap();
        r.free(&mut port, a);
        assert_eq!(r.malloc(&mut port, 100).unwrap(), a, "Lea-style recycling");
        r.free_all(&mut port);
        let fresh = r.malloc(&mut port, 100).unwrap();
        assert!(fresh == a || fresh < guard, "bulk free rewound the region");
        assert_eq!(r.stats().free_alls, 1);
    }

    #[test]
    fn pays_defrag_cost_unlike_ddmalloc() {
        // The paper's §6 point, measured: Reaps' per-object free costs
        // Lea-allocator instructions even though it also has freeAll.
        let measure = |alloc: &mut dyn Allocator| {
            let mut port = PlainPort::new();
            let mut objs: Vec<_> = (0..64)
                .map(|_| alloc.malloc(&mut port, 64).unwrap())
                .collect();
            let start = port.instructions();
            for _ in 0..500 {
                let o = objs.pop().unwrap();
                alloc.free(&mut port, o);
                objs.push(alloc.malloc(&mut port, 64).unwrap());
            }
            port.instructions() - start
        };
        let reap_cost = measure(&mut reap());
        let dd_cost = measure(&mut DdMalloc::new(DdConfig::default()));
        assert!(
            reap_cost as f64 > 1.8 * dd_cost as f64,
            "Reaps must pay defragmentation costs: {reap_cost} vs dd {dd_cost}"
        );
    }

    #[test]
    fn traits_combine_region_and_gp() {
        let t = reap().alloc_traits();
        assert!(t.bulk_free && t.per_object_free && t.defragmentation);
    }
}
