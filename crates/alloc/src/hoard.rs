//! Hoard-style allocator (§4.4 baseline).
//!
//! Berger et al.'s Hoard [11] organizes memory into per-size-class
//! *superblocks* with emptiness-class bookkeeping, moving superblocks
//! between fullness groups on every allocate/free and recycling empty
//! superblocks through a global heap. Hoard's claim to fame is
//! multithreaded scalability (lock and false-sharing avoidance); its
//! per-operation bookkeeping is exactly the kind of work the paper's
//! defrag-dodging argument targets. Our runtimes are single-threaded
//! processes (as in the paper's Ruby setup), so the global heap degenerates
//! to a free-superblock pool — the per-op cost structure is preserved.
//!
//! Objects larger than half a superblock go to a boundary-tag heap, like
//! Hoard's mmap fallback.

use crate::api::{
    enter_mm, exit_mm, AllocError, AllocTraits, Allocator, BandwidthClass, CostClass, Footprint,
    OpStats,
};
use crate::boundary::BoundaryHeap;
use std::collections::HashMap;
use webmm_sim::{Addr, CodeRegionId, CodeSpec, MemoryPort, PageSize};

/// Superblock size.
const SB_BYTES: u64 = 8 * 1024;
/// Superblock header: class, free head, used count, bump offset,
/// next/prev links, fullness flag (8 × u64 for alignment).
const SB_HEADER: u64 = 64;
/// Requests above this go to the large-object heap.
const LARGE_THRESHOLD: u64 = SB_BYTES / 2;
/// Number of power-of-two size classes: 8, 16, ..., 4096.
const N_CLASSES: usize = 10;

/// Superblock-header field offsets.
const H_CLASS: u64 = 0;
const H_FREE: u64 = 8;
const H_USED: u64 = 16;
const H_BUMP: u64 = 24;
const H_NEXT: u64 = 32;
const H_PREV: u64 = 40;

/// Configuration of a [`HoardAlloc`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct HoardConfig {
    /// Maximum number of superblocks.
    pub max_superblocks: u32,
}

impl Default for HoardConfig {
    fn default() -> Self {
        HoardConfig {
            max_superblocks: 64 * 1024,
        }
    }
}

/// Simulated-memory metadata layout.
#[derive(Copy, Clone, Debug)]
struct Layout {
    /// avail_head[class]: superblocks of the class with free slots.
    avail: Addr,
    /// Head of the empty-superblock pool (the "global heap").
    pool: Addr,
}

/// Superblock allocator in the style of Hoard.
///
/// # Examples
///
/// ```
/// use webmm_alloc::{Allocator, HoardAlloc, HoardConfig};
/// use webmm_sim::PlainPort;
///
/// let mut port = PlainPort::new();
/// let mut h = HoardAlloc::new(HoardConfig::default());
/// let a = h.malloc(&mut port, 100)?;
/// h.free(&mut port, a);
/// let b = h.malloc(&mut port, 100)?;
/// assert_eq!(a, b, "LIFO reuse within the superblock");
/// # Ok::<(), webmm_alloc::AllocError>(())
/// ```
#[derive(Debug)]
pub struct HoardAlloc {
    config: HoardConfig,
    layout: Option<Layout>,
    large: BoundaryHeap,
    code_id: Option<CodeRegionId>,
    stats: OpStats,
    superblocks: u64,
    tx_alloc_bytes: u64,
    peak_tx_alloc: u64,
    /// Telemetry mirrors: live/free small objects per class, per-superblock
    /// free-list counts (`addr → (class, free objects)`; needed because a
    /// superblock returning to the global pool retires its whole free list
    /// at once), and the pooled-superblock count.
    class_live: [u64; N_CLASSES],
    class_free: [u64; N_CLASSES],
    sb_free: HashMap<u64, (usize, u64)>,
    pooled: u64,
}

impl HoardAlloc {
    /// Creates the allocator; memory is obtained lazily.
    pub fn new(config: HoardConfig) -> Self {
        HoardAlloc {
            config,
            layout: None,
            large: BoundaryHeap::new(1024 * 1024, 1024, false),
            code_id: None,
            stats: OpStats::default(),
            superblocks: 0,
            tx_alloc_bytes: 0,
            peak_tx_alloc: 0,
            class_live: [0; N_CLASSES],
            class_free: [0; N_CLASSES],
            sb_free: HashMap::new(),
            pooled: 0,
        }
    }

    fn class_of(size: u64) -> usize {
        let s = size.max(8).next_power_of_two();
        (s.trailing_zeros() - 3) as usize
    }

    fn class_size(class: usize) -> u64 {
        8 << class
    }

    fn layout(&mut self, port: &mut dyn MemoryPort) -> Layout {
        if let Some(l) = self.layout {
            return l;
        }
        let meta = port.os_alloc((N_CLASSES as u64) * 8 + 8, 4096, PageSize::Base);
        let l = Layout {
            avail: meta,
            pool: meta + (N_CLASSES as u64) * 8,
        };
        self.layout = Some(l);
        l
    }

    /// Unlinks superblock `sb` from the doubly-linked list whose head cell
    /// is at `head_addr`.
    fn sb_unlink(&self, port: &mut dyn MemoryPort, head_addr: Addr, sb: Addr) {
        let next = port.load_u64(sb + H_NEXT);
        let prev = port.load_u64(sb + H_PREV);
        if prev != 0 {
            port.store_u64(Addr::new(prev) + H_NEXT, next);
        } else {
            port.store_u64(head_addr, next);
        }
        if next != 0 {
            port.store_u64(Addr::new(next) + H_PREV, prev);
        }
        port.exec(8);
    }

    /// Pushes superblock `sb` at the head of the list at `head_addr`.
    fn sb_push(&self, port: &mut dyn MemoryPort, head_addr: Addr, sb: Addr) {
        let head = port.load_u64(head_addr);
        port.store_u64(sb + H_NEXT, head);
        port.store_u64(sb + H_PREV, 0);
        if head != 0 {
            port.store_u64(Addr::new(head) + H_PREV, sb.raw());
        }
        port.store_u64(head_addr, sb.raw());
        port.exec(8);
    }

    fn acquire_superblock(
        &mut self,
        port: &mut dyn MemoryPort,
        l: &Layout,
        class: usize,
    ) -> Result<Addr, AllocError> {
        // Recycle from the global pool first (Hoard's global heap).
        let pooled = Addr::new(port.load_u64(l.pool));
        port.exec(4);
        let sb = if !pooled.is_null() {
            self.sb_unlink(port, l.pool, pooled);
            self.pooled = self.pooled.saturating_sub(1);
            pooled
        } else {
            if self.superblocks >= u64::from(self.config.max_superblocks) {
                return Err(AllocError::OutOfMemory {
                    requested: SB_BYTES,
                });
            }
            self.superblocks += 1;
            port.os_alloc(SB_BYTES, SB_BYTES, PageSize::Base)
        };
        port.store_u64(sb + H_CLASS, class as u64);
        port.store_u64(sb + H_FREE, 0);
        port.store_u64(sb + H_USED, 0);
        port.store_u64(sb + H_BUMP, SB_HEADER);
        port.exec(8);
        self.sb_free.insert(sb.raw(), (class, 0));
        self.sb_push(port, l.avail + class as u64 * 8, sb);
        Ok(sb)
    }
}

impl webmm_obs::HeapTelemetry for HoardAlloc {
    fn heap_snapshot(&self) -> webmm_obs::HeapSnapshot {
        let large = self.large.snapshot();
        webmm_obs::HeapSnapshot {
            allocator: "Hoard".into(),
            heap_bytes: self.superblocks * SB_BYTES + large.heap_bytes,
            // Superblocks are header-initialized on acquisition and carved
            // densely, so every mmap'd superblock counts as touched.
            touched_bytes: self.superblocks * SB_BYTES + large.touched_bytes,
            metadata_bytes: (N_CLASSES as u64) * 8
                + 8
                + self.superblocks * SB_HEADER
                + large.metadata_bytes,
            tx_live_bytes: self.tx_alloc_bytes,
            peak_tx_bytes: self.peak_tx_alloc,
            // In-use superblocks only; pooled ones sit in the global heap.
            segments: self.superblocks.saturating_sub(self.pooled) + large.segments,
            free_list_len: self.class_free.iter().sum::<u64>() + large.free_list_len,
            free_bytes: (0..N_CLASSES)
                .map(|c| self.class_free[c] * Self::class_size(c))
                .sum::<u64>()
                + large.free_bytes,
            // No freeAll here, ever: free_all_count/free_all_ns stay 0.
            free_all_count: 0,
            free_all_ns: 0,
            classes: (0..N_CLASSES)
                .map(|c| webmm_obs::ClassOccupancy {
                    class: c as u32,
                    object_size: Self::class_size(c),
                    live: self.class_live[c],
                    free: self.class_free[c],
                })
                .collect(),
        }
    }
}

impl Allocator for HoardAlloc {
    fn name(&self) -> &'static str {
        "Hoard"
    }

    fn alloc_traits(&self) -> AllocTraits {
        AllocTraits {
            bulk_free: false,
            per_object_free: true,
            defragmentation: true,
            cost: CostClass::High,
            bandwidth: BandwidthClass::Low,
        }
    }

    fn code_spec(&self) -> CodeSpec {
        CodeSpec::new(26 * 1024, 5 * 1024)
    }

    fn malloc(&mut self, port: &mut dyn MemoryPort, size: u64) -> Result<Addr, AllocError> {
        if size == 0 {
            return Err(AllocError::InvalidRequest { requested: 0 });
        }
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let result = if size > LARGE_THRESHOLD {
            let r = self.large.malloc(port, size);
            if r.is_ok() {
                self.tx_alloc_bytes += size;
            }
            r
        } else {
            let l = self.layout(port);
            let class = Self::class_of(size);
            let head_addr = l.avail + class as u64 * 8;
            let mut sb = Addr::new(port.load_u64(head_addr));
            port.exec(8);
            if sb.is_null() {
                sb = self.acquire_superblock(port, &l, class)?;
            }
            // Take from the superblock free list, else bump-carve.
            let free = Addr::new(port.load_u64(sb + H_FREE));
            let obj = if !free.is_null() {
                let next = port.load_u64(free);
                port.store_u64(sb + H_FREE, next);
                port.exec(4);
                self.class_free[class] = self.class_free[class].saturating_sub(1);
                if let Some(e) = self.sb_free.get_mut(&sb.raw()) {
                    e.1 = e.1.saturating_sub(1);
                }
                free
            } else {
                let bump = port.load_u64(sb + H_BUMP);
                port.store_u64(sb + H_BUMP, bump + Self::class_size(class));
                port.exec(4);
                sb + bump
            };
            let used = port.load_u64(sb + H_USED) + 1;
            port.store_u64(sb + H_USED, used);
            port.exec(8);
            // Emptiness bookkeeping: a superblock with nothing left moves
            // out of the available list.
            let bump = port.load_u64(sb + H_BUMP);
            let free = port.load_u64(sb + H_FREE);
            if free == 0 && bump + Self::class_size(class) > SB_BYTES {
                self.sb_unlink(port, head_addr, sb);
                port.exec(4);
            }
            self.tx_alloc_bytes += Self::class_size(class);
            self.class_live[class] += 1;
            Ok(obj)
        };
        if result.is_ok() {
            self.stats.mallocs += 1;
            self.stats.bytes_requested += size;
            self.peak_tx_alloc = self.peak_tx_alloc.max(self.tx_alloc_bytes);
        }
        exit_mm(port);
        result
    }

    fn free(&mut self, port: &mut dyn MemoryPort, addr: Addr) {
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        if self.large.contains(addr) {
            self.large.free(port, addr);
            port.exec(4);
            self.stats.frees += 1;
            exit_mm(port);
            return;
        }
        let l = self.layout(port);
        let sb = addr.align_down(SB_BYTES);
        let class = port.load_u64(sb + H_CLASS) as usize;
        let head = port.load_u64(sb + H_FREE);
        port.store_u64(addr, head);
        port.store_u64(sb + H_FREE, addr.raw());
        let used = port.load_u64(sb + H_USED) - 1;
        port.store_u64(sb + H_USED, used);
        // Emptiness-class computation on every free (Hoard's invariant
        // maintenance) costs more than a plain list push.
        port.exec(18);
        self.tx_alloc_bytes = self.tx_alloc_bytes.saturating_sub(Self::class_size(class));
        self.class_live[class] = self.class_live[class].saturating_sub(1);
        self.class_free[class] += 1;
        self.sb_free.entry(sb.raw()).or_insert((class, 0)).1 += 1;

        // Emptiness-class transitions.
        let bump = port.load_u64(sb + H_BUMP);
        let was_full = head == 0 && bump + Self::class_size(class) > SB_BYTES;
        let head_addr = l.avail + class as u64 * 8;
        if was_full {
            // Full → available.
            self.sb_push(port, head_addr, sb);
        } else if used == 0 {
            // Available → empty: return to the global pool for any class.
            self.sb_unlink(port, head_addr, sb);
            self.sb_push(port, l.pool, sb);
            port.exec(4);
            // The pooled superblock's free list dies with it (it is rebuilt
            // from scratch on reacquisition), so retire its free objects
            // from the class mirror in one step.
            if let Some((cls, cnt)) = self.sb_free.remove(&sb.raw()) {
                self.class_free[cls] = self.class_free[cls].saturating_sub(cnt);
            }
            self.pooled += 1;
        }
        self.stats.frees += 1;
        exit_mm(port);
    }

    fn realloc(
        &mut self,
        port: &mut dyn MemoryPort,
        addr: Addr,
        old_size: u64,
        new_size: u64,
    ) -> Result<Addr, AllocError> {
        if new_size == 0 {
            return Err(AllocError::InvalidRequest { requested: 0 });
        }
        let usable = if self.large.contains(addr) {
            let spec = self.code_spec();
            enter_mm(port, &mut self.code_id, spec);
            let u = self.large.usable(port, addr);
            exit_mm(port);
            u
        } else {
            let spec = self.code_spec();
            enter_mm(port, &mut self.code_id, spec);
            let sb = addr.align_down(SB_BYTES);
            let class = port.load_u64(sb + H_CLASS) as usize;
            port.exec(4);
            exit_mm(port);
            Self::class_size(class)
        };
        if new_size <= usable && new_size * 2 >= usable {
            self.stats.reallocs += 1;
            return Ok(addr);
        }
        let new = self.malloc(port, new_size)?;
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        port.memcpy(new, addr, usable.min(new_size).min(old_size.max(1)));
        exit_mm(port);
        self.free(port, addr);
        self.stats.reallocs += 1;
        self.stats.mallocs -= 1;
        self.stats.frees -= 1;
        self.stats.bytes_requested -= new_size;
        Ok(new)
    }

    /// # Panics
    ///
    /// Always panics: Hoard has no bulk-free interface (§4.4 — the Ruby
    /// runtime restarts processes instead).
    fn free_all(&mut self, _port: &mut dyn MemoryPort) {
        panic!("Hoard does not support freeAll; restart the process instead");
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            heap_bytes: self.superblocks * SB_BYTES + self.large.heap_bytes(),
            metadata_bytes: (N_CLASSES as u64) * 8 + 8 + self.superblocks * SB_HEADER,
            peak_tx_alloc_bytes: self.peak_tx_alloc,
        }
    }

    fn stats(&self) -> OpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webmm_sim::PlainPort;

    fn hoard() -> HoardAlloc {
        HoardAlloc::new(HoardConfig {
            max_superblocks: 64,
        })
    }

    #[test]
    fn class_mapping() {
        assert_eq!(HoardAlloc::class_of(1), 0); // 8
        assert_eq!(HoardAlloc::class_of(8), 0);
        assert_eq!(HoardAlloc::class_of(9), 1); // 16
        assert_eq!(HoardAlloc::class_of(4096), 9);
        assert_eq!(HoardAlloc::class_size(9), 4096);
    }

    #[test]
    fn objects_carved_from_superblock() {
        let mut port = PlainPort::new();
        let mut h = hoard();
        let a = h.malloc(&mut port, 64).unwrap();
        let b = h.malloc(&mut port, 64).unwrap();
        assert_eq!(b - a, 64);
        assert_eq!(a.offset_in(SB_BYTES), SB_HEADER);
    }

    #[test]
    fn free_list_reuse_is_lifo() {
        let mut port = PlainPort::new();
        let mut h = hoard();
        // Keep one object live so the superblock never empties into the
        // global pool (which would reset its free list).
        let _anchor = h.malloc(&mut port, 64).unwrap();
        let a = h.malloc(&mut port, 64).unwrap();
        let b = h.malloc(&mut port, 64).unwrap();
        h.free(&mut port, a);
        h.free(&mut port, b);
        assert_eq!(h.malloc(&mut port, 64).unwrap(), b);
        assert_eq!(h.malloc(&mut port, 64).unwrap(), a);
    }

    #[test]
    fn full_superblock_opens_a_new_one() {
        let mut port = PlainPort::new();
        let mut h = hoard();
        // 4096-byte class: (8192-64)/4096 = 1 object per superblock.
        let a = h.malloc(&mut port, 4000).unwrap();
        let b = h.malloc(&mut port, 4000).unwrap();
        assert_ne!(a.align_down(SB_BYTES), b.align_down(SB_BYTES));
        assert_eq!(h.footprint().heap_bytes, 2 * SB_BYTES);
    }

    #[test]
    fn empty_superblock_recycles_across_classes() {
        let mut port = PlainPort::new();
        let mut h = hoard();
        let a = h.malloc(&mut port, 64).unwrap();
        let sb_a = a.align_down(SB_BYTES);
        h.free(&mut port, a); // superblock empty → global pool
                              // A different class must reuse the pooled superblock, not mmap.
        let b = h.malloc(&mut port, 128).unwrap();
        assert_eq!(b.align_down(SB_BYTES), sb_a);
        assert_eq!(h.footprint().heap_bytes, SB_BYTES);
    }

    #[test]
    fn large_objects_route_to_boundary_heap() {
        let mut port = PlainPort::new();
        let mut h = hoard();
        let a = h.malloc(&mut port, 100_000).unwrap();
        port.store_u64(a, 7);
        h.free(&mut port, a);
        let b = h.malloc(&mut port, 100_000).unwrap();
        assert_eq!(a, b, "large heap recycles");
    }

    #[test]
    #[should_panic(expected = "does not support freeAll")]
    fn free_all_panics() {
        let mut port = PlainPort::new();
        let mut h = hoard();
        h.malloc(&mut port, 8).unwrap();
        h.free_all(&mut port);
    }

    #[test]
    fn realloc_moves_between_small_and_large() {
        let mut port = PlainPort::new();
        let mut h = hoard();
        let a = h.malloc(&mut port, 64).unwrap();
        port.store_u64(a, 0xbeef);
        let b = h.realloc(&mut port, a, 64, 50_000).unwrap();
        assert_eq!(port.memory().read_u64(b), 0xbeef);
        let c = h.realloc(&mut port, b, 50_000, 32).unwrap();
        assert_eq!(port.memory().read_u64(c), 0xbeef);
    }
}
