//! Shared boundary-tag heap engine.
//!
//! Both general-purpose baselines of the paper — the Zend-style default
//! allocator of the PHP runtime and the Doug-Lea-style glibc malloc used in
//! the Ruby study — are built on the same classical machinery: boundary
//! headers on every block, segregated free-list bins with a bitmap,
//! **splitting** on allocation and **coalescing** with both physical
//! neighbours on free. These are exactly the "defragmentation activities"
//! whose cost the paper's DDmalloc dodges.
//!
//! [`BoundaryHeap`] implements that machinery once, parameterized by the
//! one structural difference the paper calls out for Lea's allocator: it
//! "sorts all of the objects in the free lists in order of their size to
//! easily find the best object to allocate" (`sorted_large_bins`).

use crate::api::{round_up, AllocError};
use webmm_sim::{Addr, MemoryPort, PageSize};

/// Boundary header size preceding every payload.
pub(crate) const HEADER: u64 = 16;
/// Minimum block size (header + the two free-list links).
pub(crate) const MIN_BLOCK: u64 = 32;
/// Exact-fit bins cover block sizes below this.
const SMALL_LIMIT: u64 = 2048;
/// Number of exact-fit bins (block size / 8).
const N_SMALL_BINS: usize = (SMALL_LIMIT / 8) as usize;
/// Log-spaced large bins above `SMALL_LIMIT`.
const N_LARGE_BINS: usize = 16;
/// Total bins.
const N_BINS: usize = N_SMALL_BINS + N_LARGE_BINS;
/// First-fit probe cap per large bin (unsorted mode).
const PROBE_CAP: u32 = 8;
/// Insertion-walk cap (sorted mode).
const SORT_CAP: u32 = 16;

/// `size_flags` bit: block is allocated.
const F_USED: u64 = 1;
/// `size_flags` bit: the physically previous block is allocated.
const F_PREV_USED: u64 = 2;

/// Simulated-memory layout of the heap metadata.
#[derive(Copy, Clone, Debug)]
struct Layout {
    /// bin_head[bin]: u64 per bin.
    bins: Addr,
    /// binmap: one bit per bin, u64 words.
    binmap: Addr,
    /// Wilderness bump cursor within the current arena.
    cursor: Addr,
    /// End of the current arena.
    limit: Addr,
}

/// A boundary-tag heap with bins, split, and coalesce.
#[derive(Debug)]
pub(crate) struct BoundaryHeap {
    arena_bytes: u64,
    max_arenas: u32,
    /// Keep large bins sorted by size (Lea-style best fit) instead of
    /// capped first-fit.
    sorted_large_bins: bool,
    /// Multiplier on the engine's bookkeeping instruction counts. The Zend
    /// allocator's paths are leaner than glibc's (fewer consistency checks,
    /// no arena locking protocol), which this calibrates.
    exec_scale: f64,
    layout: Option<Layout>,
    arenas: Vec<Addr>,
    /// Bytes carved in each arena since the last reset — the exclusive
    /// bound of valid block headers. Coalescing never reads beyond it, so
    /// stale headers from previous transactions and inter-arena gaps are
    /// never misinterpreted.
    carved: Vec<u64>,
    current_arena: usize,
    tx_alloc_bytes: u64,
    peak_tx_alloc: u64,
    /// Telemetry mirrors (Rust-side, never read by the simulation): live
    /// block count, free-list population, and the touched high-water mark.
    /// Mirrors exist so `HeapTelemetry` snapshots need no port access.
    live_blocks: u64,
    free_blocks: u64,
    free_bytes: u64,
    touched_hw: u64,
}

impl BoundaryHeap {
    /// Creates a heap; the first arena is obtained lazily.
    pub fn new(arena_bytes: u64, max_arenas: u32, sorted_large_bins: bool) -> Self {
        Self::with_exec_scale(arena_bytes, max_arenas, sorted_large_bins, 1.0)
    }

    /// Like [`BoundaryHeap::new`] with a scale on bookkeeping instruction
    /// counts (see `exec_scale`).
    pub fn with_exec_scale(
        arena_bytes: u64,
        max_arenas: u32,
        sorted_large_bins: bool,
        exec_scale: f64,
    ) -> Self {
        assert!(arena_bytes >= 4096, "arena too small to be useful");
        BoundaryHeap {
            arena_bytes,
            max_arenas,
            sorted_large_bins,
            exec_scale,
            layout: None,
            arenas: Vec::new(),
            carved: Vec::new(),
            current_arena: 0,
            tx_alloc_bytes: 0,
            peak_tx_alloc: 0,
            live_blocks: 0,
            free_blocks: 0,
            free_bytes: 0,
            touched_hw: 0,
        }
    }

    /// Charges scaled bookkeeping instructions.
    fn exec(&self, port: &mut dyn MemoryPort, n: u64) {
        port.exec((n as f64 * self.exec_scale).round() as u64);
    }

    /// Total bytes obtained from the OS for arenas.
    pub fn heap_bytes(&self) -> u64 {
        self.arenas.len() as u64 * self.arena_bytes
    }

    /// Metadata bytes (bins + bitmap + cursor cells).
    pub fn metadata_bytes(&self) -> u64 {
        (N_BINS as u64) * 8 + 64 + 16
    }

    /// Peak bytes allocated within one transaction (reset-to-reset).
    pub fn peak_tx_alloc(&self) -> u64 {
        self.peak_tx_alloc
    }

    /// Telemetry snapshot of this engine's internals, answered entirely
    /// from the Rust-side mirrors. Wrappers fill in `allocator` and any
    /// family-specific fields (classes, freeAll cost) on top.
    pub fn snapshot(&self) -> webmm_obs::HeapSnapshot {
        webmm_obs::HeapSnapshot {
            heap_bytes: self.heap_bytes(),
            touched_bytes: self.touched_hw,
            metadata_bytes: self.metadata_bytes(),
            tx_live_bytes: self.tx_alloc_bytes,
            peak_tx_bytes: self.peak_tx_alloc,
            segments: self.arenas.len() as u64,
            free_list_len: self.free_blocks,
            free_bytes: self.free_bytes(),
            classes: vec![webmm_obs::ClassOccupancy {
                class: 0,
                object_size: 0, // boundary tags have no size classes
                live: self.live_blocks,
                free: self.free_blocks,
            }],
            ..webmm_obs::HeapSnapshot::default()
        }
    }

    /// Free-list bytes currently binned (telemetry mirror).
    pub fn free_bytes(&self) -> u64 {
        self.free_bytes
    }

    /// Whether `addr` falls inside one of this heap's arenas. Used by
    /// composite allocators (Hoard-, TCmalloc-style) that route large
    /// objects to a boundary-tag heap and must classify pointers on free.
    pub fn contains(&self, addr: Addr) -> bool {
        self.arenas
            .iter()
            .any(|&a| addr >= a && addr < a + self.arena_bytes)
    }

    fn layout(&mut self, port: &mut dyn MemoryPort) -> Layout {
        if let Some(l) = self.layout {
            return l;
        }
        let bins = port.os_alloc((N_BINS as u64) * 8 + 64 + 16, 4096, PageSize::Base);
        let binmap = bins + (N_BINS as u64) * 8;
        let cursor = binmap + 64;
        let limit = cursor + 8;
        let l = Layout {
            bins,
            binmap,
            cursor,
            limit,
        };
        self.layout = Some(l);
        let arena = port.os_alloc(self.arena_bytes, 4096, PageSize::Base);
        self.arenas.push(arena);
        self.carved.push(0);
        port.store_u64(l.cursor, arena.raw());
        port.store_u64(l.limit, (arena + self.arena_bytes).raw());
        l
    }

    /// Index of the arena containing `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` lies outside every arena (a wild pointer).
    fn arena_of(&self, b: Addr) -> usize {
        self.arenas
            .iter()
            .position(|&a| b >= a && b < a + self.arena_bytes)
            .expect("address outside every arena")
    }

    /// Exclusive upper bound of valid block headers in `b`'s arena.
    fn block_bound(&self, port: &mut dyn MemoryPort, l: &Layout, b: Addr) -> Addr {
        let idx = self.arena_of(b);
        if idx == self.current_arena {
            Addr::new(port.load_u64(l.cursor))
        } else {
            self.arenas[idx] + self.carved[idx]
        }
    }

    fn bin_of(size: u64) -> usize {
        if size < SMALL_LIMIT {
            (size / 8) as usize
        } else {
            let log = 63 - size.leading_zeros() as usize; // floor(log2), >= 11
            N_SMALL_BINS + (log - 11).min(N_LARGE_BINS - 1)
        }
    }

    fn binmap_set(&self, port: &mut dyn MemoryPort, l: &Layout, bin: usize, set: bool) {
        let word_addr = l.binmap + (bin / 64) as u64 * 8;
        let mut w = port.load_u64(word_addr);
        if set {
            w |= 1 << (bin % 64);
        } else {
            w &= !(1 << (bin % 64));
        }
        port.store_u64(word_addr, w);
        self.exec(port, 4);
    }

    /// Inserts free block `b` (header already written) into its bin. In
    /// sorted mode, large bins are kept in ascending size order (Lea-style),
    /// which costs an insertion walk.
    fn bin_insert(&mut self, port: &mut dyn MemoryPort, l: &Layout, b: Addr, size: u64) {
        self.free_blocks += 1;
        self.free_bytes += size;
        let bin = Self::bin_of(size);
        let head_addr = l.bins + bin as u64 * 8;
        let head = port.load_u64(head_addr);
        self.exec(port, 4);

        if self.sorted_large_bins && bin >= N_SMALL_BINS && head != 0 {
            // Walk to the insertion point (ascending size).
            let mut prev = Addr::new(0);
            let mut node = Addr::new(head);
            let mut walked = 0;
            while !node.is_null() && walked < SORT_CAP {
                let nsize = port.load_u64(node) & !7;
                self.exec(port, 4);
                if nsize >= size {
                    break;
                }
                prev = node;
                node = Addr::new(port.load_u64(node + HEADER));
                walked += 1;
            }
            // Insert between prev and node.
            port.store_u64(b + HEADER, node.raw());
            port.store_u64(b + HEADER + 8, prev.raw());
            if !node.is_null() {
                port.store_u64(node + HEADER + 8, b.raw());
            }
            if prev.is_null() {
                port.store_u64(head_addr, b.raw());
            } else {
                port.store_u64(prev + HEADER, b.raw());
            }
            self.exec(port, 6);
            return;
        }

        // LIFO push (small bins, or unsorted mode).
        port.store_u64(b + HEADER, head);
        port.store_u64(b + HEADER + 8, 0);
        if head != 0 {
            port.store_u64(Addr::new(head) + HEADER + 8, b.raw());
        }
        port.store_u64(head_addr, b.raw());
        if head == 0 {
            self.binmap_set(port, l, bin, true);
        }
        self.exec(port, 4);
    }

    /// Unlinks free block `b` of size `size` from its bin.
    fn bin_unlink(&mut self, port: &mut dyn MemoryPort, l: &Layout, b: Addr, size: u64) {
        self.free_blocks = self.free_blocks.saturating_sub(1);
        self.free_bytes = self.free_bytes.saturating_sub(size);
        let bin = Self::bin_of(size);
        let next = port.load_u64(b + HEADER);
        let prev = port.load_u64(b + HEADER + 8);
        if prev != 0 {
            port.store_u64(Addr::new(prev) + HEADER, next);
        } else {
            let head_addr = l.bins + bin as u64 * 8;
            port.store_u64(head_addr, next);
            if next == 0 {
                self.binmap_set(port, l, bin, false);
            }
        }
        if next != 0 {
            port.store_u64(Addr::new(next) + HEADER + 8, prev);
        }
        self.exec(port, 8);
    }

    fn read_header(&self, port: &mut dyn MemoryPort, b: Addr) -> (u64, u64) {
        let size_flags = port.load_u64(b);
        (size_flags & !7, size_flags & 7)
    }

    fn write_header(
        &self,
        port: &mut dyn MemoryPort,
        b: Addr,
        size: u64,
        used: bool,
        prev_used: bool,
    ) {
        let mut flags = 0;
        if used {
            flags |= F_USED;
        }
        if prev_used {
            flags |= F_PREV_USED;
        }
        port.store_u64(b, size | flags);
        self.exec(port, 2);
    }

    /// Updates the next physical block's prev_size and prev-used flag.
    /// `end` is the first address past the block; `bound` is the exclusive
    /// limit of valid headers in its arena.
    fn sync_next(
        &self,
        port: &mut dyn MemoryPort,
        end: Addr,
        bound: Addr,
        prev_size: u64,
        prev_used: bool,
    ) {
        if end >= bound {
            return; // last valid block of its arena
        }
        port.store_u64(end + 8, prev_size);
        let sf = port.load_u64(end);
        let sf = if prev_used {
            sf | F_PREV_USED
        } else {
            sf & !F_PREV_USED
        };
        port.store_u64(end, sf);
        self.exec(port, 5);
    }

    /// Finds the first non-empty bin index >= `from` via the bitmap.
    fn find_bin(&self, port: &mut dyn MemoryPort, l: &Layout, from: usize) -> Option<usize> {
        let mut word_idx = from / 64;
        let mut mask = !0u64 << (from % 64);
        while word_idx * 64 < N_BINS {
            let w = port.load_u64(l.binmap + word_idx as u64 * 8) & mask;
            self.exec(port, 3);
            if w != 0 {
                return Some(word_idx * 64 + w.trailing_zeros() as usize);
            }
            word_idx += 1;
            mask = !0;
        }
        None
    }

    /// Carves `need` bytes from the wilderness, growing into new arenas.
    fn carve(
        &mut self,
        port: &mut dyn MemoryPort,
        l: &Layout,
        need: u64,
    ) -> Result<Addr, AllocError> {
        loop {
            let cursor = Addr::new(port.load_u64(l.cursor));
            let limit = Addr::new(port.load_u64(l.limit));
            self.exec(port, 4);
            if cursor + need <= limit {
                port.store_u64(l.cursor, (cursor + need).raw());
                let base = self.arenas[self.current_arena];
                let hw = &mut self.carved[self.current_arena];
                *hw = (*hw).max((cursor + need) - base);
                let total: u64 = self.carved.iter().sum();
                self.touched_hw = self.touched_hw.max(total);
                return Ok(cursor);
            }
            // Turn the arena remainder into a free block, then open the
            // next arena.
            let rem = limit.checked_sub(cursor).unwrap_or(0);
            if rem >= MIN_BLOCK {
                // prev_used is conservatively true: the wilderness boundary
                // always follows an allocated or fresh region.
                self.write_header(port, cursor, rem, false, true);
                port.store_u64(l.cursor, limit.raw()); // seal before insert
                self.carved[self.current_arena] = self.arena_bytes;
                self.bin_insert(port, l, cursor, rem);
            }
            if self.current_arena + 1 < self.arenas.len() {
                self.current_arena += 1;
            } else {
                if self.arenas.len() >= self.max_arenas as usize {
                    return Err(AllocError::OutOfMemory { requested: need });
                }
                let arena = port.os_alloc(self.arena_bytes, 4096, PageSize::Base);
                self.arenas.push(arena);
                self.carved.push(0);
                self.current_arena = self.arenas.len() - 1;
            }
            let arena = self.arenas[self.current_arena];
            port.store_u64(l.cursor, arena.raw());
            port.store_u64(l.limit, (arena + self.arena_bytes).raw());
            self.exec(port, 10);
        }
    }

    /// Allocates `size` payload bytes.
    pub fn malloc(&mut self, port: &mut dyn MemoryPort, size: u64) -> Result<Addr, AllocError> {
        debug_assert!(
            size > 0,
            "zero-size request must be filtered by the wrapper"
        );
        let l = self.layout(port);
        let need = round_up(size + HEADER, 8).max(MIN_BLOCK);
        if need > self.arena_bytes {
            return Err(AllocError::InvalidRequest { requested: size });
        }
        self.exec(port, 8);

        // 1. Search the bins from the ideal one upward.
        let mut found: Option<(Addr, u64)> = None;
        let mut bin = Self::bin_of(need);
        while let Some(b) = self.find_bin(port, &l, bin) {
            if b < N_SMALL_BINS {
                // Exact-fit bin: every block in it has size b*8 >= need.
                let head = Addr::new(port.load_u64(l.bins + b as u64 * 8));
                self.exec(port, 2);
                found = Some((head, (b as u64) * 8));
                break;
            }
            // Large bin: bounded walk. In sorted mode the list ascends, so
            // the first fitting block is the best fit.
            let head_addr = l.bins + b as u64 * 8;
            let mut node = Addr::new(port.load_u64(head_addr));
            let mut probes = 0;
            let cap = if self.sorted_large_bins {
                SORT_CAP
            } else {
                PROBE_CAP
            };
            while !node.is_null() && probes < cap {
                let (bs, _) = self.read_header(port, node);
                self.exec(port, 4);
                if bs >= need {
                    found = Some((node, bs));
                    break;
                }
                node = Addr::new(port.load_u64(node + HEADER));
                probes += 1;
            }
            if found.is_some() {
                break;
            }
            bin = b + 1;
            if bin >= N_BINS {
                break;
            }
        }

        let payload = if let Some((b, bs)) = found {
            self.bin_unlink(port, &l, b, bs);
            let (_, flags) = self.read_header(port, b);
            let prev_used = flags & F_PREV_USED != 0;
            let bound = self.block_bound(port, &l, b);
            if bs - need >= MIN_BLOCK {
                // SPLIT: the defragmentation activity on the malloc side.
                let rem = b + need;
                let rem_size = bs - need;
                self.write_header(port, b, need, true, prev_used);
                self.write_header(port, rem, rem_size, false, true);
                port.store_u64(rem + 8, need); // remainder's prev_size
                self.sync_next(port, rem + rem_size, bound, rem_size, false);
                self.bin_insert(port, &l, rem, rem_size);
                self.exec(port, 12);
            } else {
                self.write_header(port, b, bs, true, prev_used);
                self.sync_next(port, b + bs, bound, bs, true);
            }
            b + HEADER
        } else {
            // 2. Wilderness carve.
            let b = self.carve(port, &l, need)?;
            self.write_header(port, b, need, true, true);
            port.store_u64(b + 8, 0);
            b + HEADER
        };

        self.tx_alloc_bytes += need;
        self.peak_tx_alloc = self.peak_tx_alloc.max(self.tx_alloc_bytes);
        self.live_blocks += 1;
        Ok(payload)
    }

    /// Frees the block whose payload starts at `addr`, coalescing with free
    /// physical neighbours.
    pub fn free(&mut self, port: &mut dyn MemoryPort, addr: Addr) {
        let l = self.layout(port);
        let mut b = addr - HEADER;
        let (mut size, flags) = self.read_header(port, b);
        debug_assert!(flags & F_USED != 0, "double free");
        let mut prev_used = flags & F_PREV_USED != 0;
        self.exec(port, 8);
        self.tx_alloc_bytes = self.tx_alloc_bytes.saturating_sub(size);
        // Mirror decrement here, before the early returns below (wilderness
        // absorption frees a block without ever binning it).
        self.live_blocks = self.live_blocks.saturating_sub(1);

        // COALESCE with the physical successor if it is free.
        let in_current_arena = self.arena_of(b) == self.current_arena;
        let bound = self.block_bound(port, &l, b);
        let cursor = Addr::new(port.load_u64(l.cursor));
        let next = b + size;
        if next < bound {
            let (nsize, nflags) = self.read_header(port, next);
            self.exec(port, 4);
            if nflags & F_USED == 0 && nsize > 0 {
                self.bin_unlink(port, &l, next, nsize);
                size += nsize;
                self.exec(port, 4);
            }
        } else if in_current_arena && next == cursor && prev_used {
            // Last block before the wilderness: absorb it back.
            port.store_u64(l.cursor, b.raw());
            self.exec(port, 4);
            return;
        }

        // COALESCE with the physical predecessor if it is free.
        if !prev_used {
            let prev_size = port.load_u64(b + 8);
            self.exec(port, 3);
            if prev_size > 0 {
                let prev = b - prev_size;
                let (psize, pflags) = self.read_header(port, prev);
                debug_assert_eq!(pflags & F_USED, 0, "prev_used flag out of sync");
                debug_assert_eq!(psize, prev_size, "boundary tags out of sync");
                self.bin_unlink(port, &l, prev, psize);
                b = prev;
                size += psize;
                prev_used = pflags & F_PREV_USED != 0;
                self.exec(port, 4);
            }
        }

        // Absorb into the wilderness if we now touch it.
        if in_current_arena && b + size == Addr::new(port.load_u64(l.cursor)) {
            port.store_u64(l.cursor, b.raw());
            self.exec(port, 3);
            return;
        }

        self.write_header(port, b, size, false, prev_used);
        self.sync_next(port, b + size, bound, size, false);
        self.bin_insert(port, &l, b, size);
    }

    /// Usable payload size of the live block at `addr`.
    pub fn usable(&mut self, port: &mut dyn MemoryPort, addr: Addr) -> u64 {
        let b = addr - HEADER;
        let (size, _) = self.read_header(port, b);
        self.exec(port, 4);
        size - HEADER
    }

    /// Bulk reset: clears every bin and rewinds the wilderness to the first
    /// arena (Zend's per-request heap teardown).
    pub fn reset(&mut self, port: &mut dyn MemoryPort) {
        let l = self.layout(port);
        for bin in 0..N_BINS as u64 {
            port.store_u64(l.bins + bin * 8, 0);
        }
        for w in 0..8u64 {
            port.store_u64(l.binmap + w * 8, 0);
        }
        self.current_arena = 0;
        for c in &mut self.carved {
            *c = 0;
        }
        let arena = self.arenas[0];
        port.store_u64(l.cursor, arena.raw());
        port.store_u64(l.limit, (arena + self.arena_bytes).raw());
        port.exec(30 + 2 * N_BINS as u64);
        self.tx_alloc_bytes = 0;
        self.live_blocks = 0;
        self.free_blocks = 0;
        self.free_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webmm_sim::PlainPort;

    #[test]
    fn bin_of_is_monotone_and_bounded() {
        let mut prev = 0;
        for size in (32..1 << 22).step_by(8) {
            let b = BoundaryHeap::bin_of(size);
            assert!(b >= prev);
            assert!(b < N_BINS);
            prev = b;
        }
    }

    #[test]
    fn sorted_bins_keep_ascending_order() {
        let mut port = PlainPort::new();
        let mut h = BoundaryHeap::new(1 << 20, 4, true);
        // Allocate three large blocks with guards, free them out of order.
        let sizes = [3000u64, 8000, 5000];
        let mut blocks = Vec::new();
        for &s in &sizes {
            blocks.push(h.malloc(&mut port, s).unwrap());
            h.malloc(&mut port, 64).unwrap(); // guard against coalescing
        }
        for &b in &blocks {
            h.free(&mut port, b);
        }
        // Best fit: a 4500-byte request must pick the 5000-byte block,
        // not the 8000-byte one that sits in the same log bin.
        let got = h.malloc(&mut port, 4500).unwrap();
        assert_eq!(got, blocks[2]);
    }

    #[test]
    fn unsorted_bins_are_first_fit() {
        let mut port = PlainPort::new();
        let mut h = BoundaryHeap::new(1 << 20, 4, false);
        let big = h.malloc(&mut port, 8000).unwrap();
        h.malloc(&mut port, 64).unwrap();
        let small = h.malloc(&mut port, 5000).unwrap();
        h.malloc(&mut port, 64).unwrap();
        h.free(&mut port, big);
        h.free(&mut port, small);
        // LIFO first fit: the most recently freed fitting block wins.
        let got = h.malloc(&mut port, 4500).unwrap();
        assert_eq!(got, small);
    }

    #[test]
    fn usable_reports_block_payload() {
        let mut port = PlainPort::new();
        let mut h = BoundaryHeap::new(1 << 20, 4, false);
        let a = h.malloc(&mut port, 100).unwrap();
        assert_eq!(h.usable(&mut port, a), 104); // 100+16 → 120 block − 16
    }

    #[test]
    fn telemetry_mirrors_track_binned_blocks() {
        let mut port = PlainPort::new();
        let mut h = BoundaryHeap::new(1 << 20, 4, false);
        let a = h.malloc(&mut port, 100).unwrap();
        h.malloc(&mut port, 64).unwrap(); // guard against wilderness absorb
        assert_eq!(h.free_bytes(), 0);
        let s = h.snapshot();
        assert_eq!((s.free_list_len, s.classes[0].live), (0, 2));
        h.free(&mut port, a);
        assert_eq!(h.free_bytes(), 120); // whole block, header included
        let s = h.snapshot();
        assert_eq!((s.free_list_len, s.classes[0].live), (1, 1));
        assert!(s.touched_bytes >= 120 + 80);
        h.reset(&mut port);
        assert_eq!(h.free_bytes(), 0);
        assert_eq!(h.snapshot().live_objects(), 0);
    }
}
