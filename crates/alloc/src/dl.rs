//! Doug-Lea-style allocator (the glibc malloc stand-in of §4.4).
//!
//! The paper describes Lea's allocator as one "which sorts all of the
//! objects in the free lists in order of their size to easily find the best
//! object to allocate for a request, coalesces multiple small objects into
//! large objects, and splits large objects into small objects in response
//! to requests" — the canonical defragmenting general-purpose design, and
//! the `glibc-2.5` baseline of the Ruby on Rails comparison (Figures
//! 10-12).
//!
//! Built on the shared [`BoundaryHeap`](crate::boundary::BoundaryHeap)
//! engine with **sorted** large bins (best fit) and brk-style 1 MB arenas.
//! Unlike the PHP default allocator it has **no bulk free**: the only way
//! the Ruby runtime cleans this heap is by restarting the process.

use crate::api::{
    enter_mm, exit_mm, round_up, AllocError, AllocTraits, Allocator, BandwidthClass, CostClass,
    Footprint, OpStats,
};
use crate::boundary::{BoundaryHeap, HEADER, MIN_BLOCK};
use webmm_sim::{Addr, CodeRegionId, CodeSpec, MemoryPort};

/// Configuration of a [`DlAlloc`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct DlConfig {
    /// Heap growth granularity (brk-style extension).
    pub arena_bytes: u64,
    /// Maximum number of arenas.
    pub max_arenas: u32,
}

impl Default for DlConfig {
    fn default() -> Self {
        DlConfig {
            arena_bytes: 1024 * 1024,
            max_arenas: 1024,
        }
    }
}

/// Best-fit boundary-tag allocator in the style of Doug Lea's malloc.
///
/// # Examples
///
/// ```
/// use webmm_alloc::{Allocator, DlAlloc, DlConfig};
/// use webmm_sim::PlainPort;
///
/// let mut port = PlainPort::new();
/// let mut m = DlAlloc::new(DlConfig::default());
/// let a = m.malloc(&mut port, 100)?;
/// m.free(&mut port, a);
/// assert!(!m.alloc_traits().bulk_free, "glibc has no freeAll");
/// # Ok::<(), webmm_alloc::AllocError>(())
/// ```
#[derive(Debug)]
pub struct DlAlloc {
    heap: BoundaryHeap,
    code_id: Option<CodeRegionId>,
    stats: OpStats,
}

impl DlAlloc {
    /// Creates the allocator; the heap is obtained lazily.
    pub fn new(config: DlConfig) -> Self {
        DlAlloc {
            heap: BoundaryHeap::new(config.arena_bytes, config.max_arenas, true),
            code_id: None,
            stats: OpStats::default(),
        }
    }
}

impl webmm_obs::HeapTelemetry for DlAlloc {
    fn heap_snapshot(&self) -> webmm_obs::HeapSnapshot {
        webmm_obs::HeapSnapshot {
            allocator: "glibc".into(),
            // No freeAll here, ever: free_all_count/free_all_ns stay 0.
            ..self.heap.snapshot()
        }
    }
}

impl Allocator for DlAlloc {
    fn name(&self) -> &'static str {
        "glibc"
    }

    fn alloc_traits(&self) -> AllocTraits {
        AllocTraits {
            bulk_free: false,
            per_object_free: true,
            defragmentation: true,
            cost: CostClass::High,
            bandwidth: BandwidthClass::Low,
        }
    }

    fn code_spec(&self) -> CodeSpec {
        // Bin sorting and best-fit selection on top of the usual machinery.
        CodeSpec::new(24 * 1024, 5 * 1024)
    }

    fn malloc(&mut self, port: &mut dyn MemoryPort, size: u64) -> Result<Addr, AllocError> {
        if size == 0 {
            return Err(AllocError::InvalidRequest { requested: 0 });
        }
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let r = self.heap.malloc(port, size);
        if r.is_ok() {
            self.stats.mallocs += 1;
            self.stats.bytes_requested += size;
        }
        exit_mm(port);
        r
    }

    fn free(&mut self, port: &mut dyn MemoryPort, addr: Addr) {
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        self.heap.free(port, addr);
        self.stats.frees += 1;
        exit_mm(port);
    }

    fn realloc(
        &mut self,
        port: &mut dyn MemoryPort,
        addr: Addr,
        _old_size: u64,
        new_size: u64,
    ) -> Result<Addr, AllocError> {
        if new_size == 0 {
            return Err(AllocError::InvalidRequest { requested: 0 });
        }
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let usable = self.heap.usable(port, addr);
        exit_mm(port);
        if round_up(new_size, 8).max(MIN_BLOCK - HEADER) <= usable {
            self.stats.reallocs += 1;
            return Ok(addr);
        }
        let new = self.malloc(port, new_size)?;
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        port.memcpy(new, addr, usable.min(new_size));
        exit_mm(port);
        self.free(port, addr);
        self.stats.reallocs += 1;
        self.stats.mallocs -= 1;
        self.stats.frees -= 1;
        self.stats.bytes_requested -= new_size;
        Ok(new)
    }

    /// # Panics
    ///
    /// Always panics: glibc malloc has no bulk-free interface. The runtime
    /// checks [`AllocTraits::bulk_free`] and restarts the process instead
    /// (§4.4).
    fn free_all(&mut self, _port: &mut dyn MemoryPort) {
        panic!("glibc malloc does not support freeAll; restart the process instead");
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            heap_bytes: self.heap.heap_bytes(),
            metadata_bytes: self.heap.metadata_bytes(),
            peak_tx_alloc_bytes: self.heap.peak_tx_alloc(),
        }
    }

    fn stats(&self) -> OpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webmm_sim::PlainPort;

    fn dl() -> DlAlloc {
        DlAlloc::new(DlConfig {
            arena_bytes: 64 * 1024,
            max_arenas: 16,
        })
    }

    #[test]
    fn best_fit_selection() {
        let mut port = PlainPort::new();
        let mut m = dl();
        let big = m.malloc(&mut port, 8000).unwrap();
        m.malloc(&mut port, 64).unwrap(); // guard
        let snug = m.malloc(&mut port, 5000).unwrap();
        m.malloc(&mut port, 64).unwrap(); // guard
        m.free(&mut port, big);
        m.free(&mut port, snug);
        // Sorted bins: best fit picks the 5000-byte block for 4500 bytes.
        assert_eq!(m.malloc(&mut port, 4500).unwrap(), snug);
    }

    #[test]
    fn coalescing_keeps_heap_compact_over_churn() {
        let mut port = PlainPort::new();
        let mut m = dl();
        // Sustained churn with full drain each round: coalescing + the
        // wilderness absorb keep the heap from growing.
        for _ in 0..50 {
            let objs: Vec<_> = (0..100)
                .map(|i| m.malloc(&mut port, 40 + (i % 7) * 24).unwrap())
                .collect();
            for o in objs {
                m.free(&mut port, o);
            }
        }
        assert_eq!(
            m.footprint().heap_bytes,
            64 * 1024,
            "one arena suffices forever"
        );
    }

    #[test]
    #[should_panic(expected = "does not support freeAll")]
    fn free_all_panics() {
        let mut port = PlainPort::new();
        let mut m = dl();
        m.malloc(&mut port, 8).unwrap();
        m.free_all(&mut port);
    }

    #[test]
    fn traits_match_table_1() {
        let t = dl().alloc_traits();
        assert!(!t.bulk_free);
        assert!(t.per_object_free);
        assert!(t.defragmentation);
        assert_eq!(t.cost, CostClass::High);
    }

    #[test]
    fn realloc_roundtrip() {
        let mut port = PlainPort::new();
        let mut m = dl();
        let a = m.malloc(&mut port, 32).unwrap();
        port.store_u64(a, 99);
        let b = m.realloc(&mut port, a, 32, 2000).unwrap();
        assert_eq!(port.memory().read_u64(b), 99);
        let c = m.realloc(&mut port, b, 2000, 100).unwrap();
        assert_eq!(c, b, "shrink in place");
    }
}
