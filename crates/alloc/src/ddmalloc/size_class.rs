//! DDmalloc size-class mapping.
//!
//! The paper (§3.2): "Our current implementation 1) rounds up the requested
//! size to a multiple of 8 bytes if the size is smaller than 128 bytes,
//! 2) rounds up to a multiple of 32 bytes if the size is smaller than 512
//! bytes, and 3) rounds up to the nearest power of two for larger sizes",
//! and calls objects *large* when they exceed half a segment. The mapping
//! is "an important tunable parameter", so alternative mappings are
//! provided for the ablation study.

use serde::Serialize;

/// Alternative size-class mapping policies (ablation study).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub enum ClassMapping {
    /// The paper's mapping: ×8 below 128 B, ×32 below 512 B, powers of two
    /// above.
    #[default]
    Paper,
    /// Pure powers of two from 8 B up — fewer classes, more internal waste.
    PowersOfTwo,
    /// Multiples of 8 throughout — many classes, minimal waste, more
    /// segments in play.
    Fine8,
}

/// Granularity of the small-size lookup table. Every class size in every
/// mapping is a multiple of 8, so `class_of` is constant on each
/// `(8k, 8(k+1)]` interval and one table entry per granule suffices.
const LUT_GRANULE: u64 = 8;

/// Largest request size covered by the lookup table. 2 KB spans the
/// entire fine-grained region of every mapping (Paper's ×8/×32 rules end
/// at 512 B, Fine8's ×8 rule at 1 KB), so everything above it follows a
/// closed-form progression handled by [`Tail`].
const LUT_MAX: u64 = 2048;

/// How to map request sizes above [`LUT_MAX`] without searching.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Tail {
    /// The table ends at or below [`LUT_MAX`]: every small size is in the
    /// LUT.
    None,
    /// Classes double: `class = first_class + (ceil_log2(size) - first_log2)`
    /// (Paper and PowersOfTwo above the LUT).
    Pow2 { first_class: u32, first_log2: u32 },
    /// Classes step arithmetically from `prev_size` (the largest class
    /// size the LUT still covers):
    /// `class = first_class + (size - prev_size - 1) / step`
    /// (Fine8's ×64 region above the LUT).
    Step {
        first_class: u32,
        prev_size: u64,
        step: u64,
    },
    /// No recognized progression: fall back to binary search. Unused by
    /// the built-in mappings, kept so new mappings stay correct by
    /// default.
    Search,
}

/// The resolved size-class table for a given segment size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SizeClasses {
    sizes: Vec<u64>,
    mapping: ClassMapping,
    /// Requests above this are "large" (whole segments).
    large_threshold: u64,
    /// `lut[ceil(size / 8)]` is the class of `size`, for
    /// `size <= lut_max`. Entry 0 is unused (zero-sized requests are
    /// rejected upstream).
    lut: Vec<u16>,
    /// Largest size the LUT covers: `min(LUT_MAX, large_threshold)`.
    lut_max: u64,
    /// Closed-form mapping for `lut_max < size <= large_threshold`.
    tail: Tail,
}

impl SizeClasses {
    /// Builds the class table for `segment_bytes` under `mapping`.
    ///
    /// # Panics
    ///
    /// Panics if `segment_bytes` is not a power of two or is below 1 KB.
    pub fn new(segment_bytes: u64, mapping: ClassMapping) -> Self {
        assert!(
            segment_bytes.is_power_of_two(),
            "segment size must be a power of two"
        );
        assert!(segment_bytes >= 1024, "segments below 1 KB are not useful");
        let large_threshold = segment_bytes / 2;
        let mut sizes = Vec::new();
        match mapping {
            ClassMapping::Paper => {
                let mut s = 8;
                while s <= 128.min(large_threshold) {
                    sizes.push(s);
                    s += 8;
                }
                let mut s = 160;
                while s <= 512.min(large_threshold) {
                    sizes.push(s);
                    s += 32;
                }
                let mut s: u64 = 1024;
                while s <= large_threshold {
                    sizes.push(s);
                    s *= 2;
                }
            }
            ClassMapping::PowersOfTwo => {
                let mut s: u64 = 8;
                while s <= large_threshold {
                    sizes.push(s);
                    s *= 2;
                }
            }
            ClassMapping::Fine8 => {
                let mut s: u64 = 8;
                while s <= large_threshold {
                    sizes.push(s);
                    // Multiples of 8 up to 1 KB, then ×64 steps to keep the
                    // table bounded.
                    s += if s < 1024 { 8 } else { 64 };
                }
            }
        }
        debug_assert!(
            sizes.iter().all(|s| s % LUT_GRANULE == 0),
            "class sizes must be multiples of {LUT_GRANULE} for the LUT"
        );
        let lut_max = LUT_MAX.min(large_threshold);
        let mut lut = vec![0u16; (lut_max / LUT_GRANULE) as usize + 1];
        for (idx, slot) in lut.iter_mut().enumerate().skip(1) {
            // The largest size in the granule; every size in it shares
            // the class because class boundaries sit on multiples of 8.
            let size = idx as u64 * LUT_GRANULE;
            let class = match sizes.binary_search(&size) {
                Ok(i) | Err(i) => i,
            };
            *slot = u16::try_from(class).expect("LUT region has < 2^16 classes");
        }
        let tail = Self::derive_tail(&sizes, lut_max, large_threshold);
        SizeClasses {
            sizes,
            mapping,
            large_threshold,
            lut,
            lut_max,
            tail,
        }
    }

    /// Recognizes the progression the class table follows above
    /// `lut_max`, so `class_of` never searches on the hot path.
    fn derive_tail(sizes: &[u64], lut_max: u64, large_threshold: u64) -> Tail {
        if lut_max >= large_threshold {
            return Tail::None;
        }
        let first_class = sizes.partition_point(|&s| s <= lut_max);
        let tail_sizes = &sizes[first_class..];
        let Some(&first) = tail_sizes.first() else {
            // Sizes in (lut_max, large_threshold] exist but have no
            // class — the constructor never builds such a table, but
            // searching keeps even that case correct.
            return Tail::Search;
        };
        let doubling = first.is_power_of_two()
            && lut_max >= first / 2
            && tail_sizes.windows(2).all(|w| w[1] == w[0] * 2);
        if doubling {
            return Tail::Pow2 {
                first_class: first_class as u32,
                first_log2: first.trailing_zeros(),
            };
        }
        let step = match tail_sizes {
            [a, b, ..] => b - a,
            _ => first - lut_max,
        };
        let arithmetic = step > 0
            && first - step <= lut_max
            && tail_sizes.windows(2).all(|w| w[1] == w[0] + step);
        if arithmetic {
            return Tail::Step {
                first_class: first_class as u32,
                prev_size: first - step,
                step,
            };
        }
        Tail::Search
    }

    /// The mapping policy this table was built with.
    pub fn mapping(&self) -> ClassMapping {
        self.mapping
    }

    /// Number of size classes.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Requests above this many bytes are served as large objects.
    pub fn large_threshold(&self) -> u64 {
        self.large_threshold
    }

    /// Maps a request to its size class, or `None` for large requests.
    ///
    /// This is the allocator's hottest lookup: small sizes are one
    /// branch-free table load, larger ones a closed-form shift or divide
    /// ([`Tail`]). Must agree with [`SizeClasses::class_of_reference`]
    /// for every size — the test suite checks this exhaustively.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for zero-sized requests (the allocator
    /// rejects those before mapping).
    #[inline]
    pub fn class_of(&self, size: u64) -> Option<usize> {
        debug_assert!(size > 0, "zero-sized request reached the class mapper");
        if size <= self.lut_max {
            let idx = (size.div_ceil(LUT_GRANULE)) as usize;
            return Some(self.lut[idx] as usize);
        }
        if size > self.large_threshold {
            return None;
        }
        match self.tail {
            Tail::Pow2 {
                first_class,
                first_log2,
            } => {
                // ceil(log2(size)) for size >= 2; size > lut_max >= 8 here.
                let log2 = u64::BITS - (size - 1).leading_zeros();
                Some(first_class as usize + (log2 - first_log2) as usize)
            }
            Tail::Step {
                first_class,
                prev_size,
                step,
            } => Some(first_class as usize + ((size - prev_size - 1) / step) as usize),
            // `None` is unreachable (lut_max == large_threshold there);
            // searching is harmlessly correct for it too.
            Tail::None | Tail::Search => self.class_of_reference(size),
        }
    }

    /// Reference mapping: binary search over the sorted class table.
    ///
    /// Kept public so tests can check [`SizeClasses::class_of`] against
    /// it; not used on the allocation path.
    pub fn class_of_reference(&self, size: u64) -> Option<usize> {
        debug_assert!(size > 0, "zero-sized request reached the class mapper");
        if size > self.large_threshold {
            return None;
        }
        match self.sizes.binary_search(&size) {
            Ok(i) => Some(i),
            Err(i) => Some(i), // first class >= size
        }
    }

    /// The object size of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn size_of(&self, class: usize) -> u64 {
        self.sizes[class]
    }

    /// Objects of class `class` fitting in one segment.
    pub fn objects_per_segment(&self, class: usize, segment_bytes: u64) -> u64 {
        segment_bytes / self.sizes[class]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> SizeClasses {
        SizeClasses::new(32 * 1024, ClassMapping::Paper)
    }

    #[test]
    fn paper_mapping_matches_section_3_2() {
        let sc = paper();
        // Rule 1: multiples of 8 below 128.
        assert_eq!(sc.size_of(sc.class_of(1).unwrap()), 8);
        assert_eq!(sc.size_of(sc.class_of(8).unwrap()), 8);
        assert_eq!(sc.size_of(sc.class_of(9).unwrap()), 16);
        assert_eq!(sc.size_of(sc.class_of(62).unwrap()), 64);
        assert_eq!(sc.size_of(sc.class_of(121).unwrap()), 128);
        // Rule 2: multiples of 32 below 512.
        assert_eq!(sc.size_of(sc.class_of(129).unwrap()), 160);
        assert_eq!(sc.size_of(sc.class_of(200).unwrap()), 224);
        assert_eq!(sc.size_of(sc.class_of(481).unwrap()), 512);
        // Rule 3: powers of two above.
        assert_eq!(sc.size_of(sc.class_of(513).unwrap()), 1024);
        assert_eq!(sc.size_of(sc.class_of(3000).unwrap()), 4096);
        assert_eq!(sc.size_of(sc.class_of(16 * 1024).unwrap()), 16 * 1024);
    }

    #[test]
    fn large_threshold_is_half_segment() {
        let sc = paper();
        assert_eq!(sc.large_threshold(), 16 * 1024);
        assert_eq!(sc.class_of(16 * 1024 + 1), None);
        assert!(sc.class_of(16 * 1024).is_some());
    }

    #[test]
    fn classes_are_sorted_and_unique() {
        for mapping in [
            ClassMapping::Paper,
            ClassMapping::PowersOfTwo,
            ClassMapping::Fine8,
        ] {
            let sc = SizeClasses::new(32 * 1024, mapping);
            for w in sc.sizes.windows(2) {
                assert!(w[0] < w[1], "{mapping:?} table must be strictly increasing");
            }
            assert!(sc.count() > 0);
        }
    }

    #[test]
    fn every_small_size_maps_to_a_class_at_least_as_big() {
        for mapping in [
            ClassMapping::Paper,
            ClassMapping::PowersOfTwo,
            ClassMapping::Fine8,
        ] {
            let sc = SizeClasses::new(32 * 1024, mapping);
            for size in 1..=sc.large_threshold() {
                let class = sc
                    .class_of(size)
                    .unwrap_or_else(|| panic!("{size} unmapped"));
                assert!(sc.size_of(class) >= size, "class too small for {size}");
                // And the class below (if any) would not fit.
                if class > 0 {
                    assert!(sc.size_of(class - 1) < size, "class not minimal for {size}");
                }
            }
        }
    }

    #[test]
    fn objects_per_segment() {
        let sc = paper();
        let c64 = sc.class_of(64).unwrap();
        assert_eq!(sc.objects_per_segment(c64, 32 * 1024), 512);
        let c16k = sc.class_of(16 * 1024).unwrap();
        assert_eq!(sc.objects_per_segment(c16k, 32 * 1024), 2);
    }

    #[test]
    fn smaller_segments_shrink_the_table() {
        let small = SizeClasses::new(8 * 1024, ClassMapping::Paper);
        assert_eq!(small.large_threshold(), 4 * 1024);
        assert!(small.count() < paper().count());
    }

    #[test]
    fn pow2_wastes_more_than_paper() {
        let p = paper();
        let p2 = SizeClasses::new(32 * 1024, ClassMapping::PowersOfTwo);
        // A 96-byte request: paper serves exactly, pow2 rounds to 128.
        assert_eq!(p.size_of(p.class_of(96).unwrap()), 96);
        assert_eq!(p2.size_of(p2.class_of(96).unwrap()), 128);
    }
}
