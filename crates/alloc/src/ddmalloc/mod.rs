//! DDmalloc: the paper's defrag-dodging allocator (§3).
//!
//! A heap is an array of fixed-size, alignment-restricted *segments* plus a
//! small metadata block. Each segment is dedicated to one size class and
//! used as an array of equal-sized objects with **no per-object headers**.
//! Per size class the metadata holds the head of a singly-linked free list
//! (chained through the freed objects themselves, reused in LIFO order) and
//! a *tail* pointer into the segment currently being carved; the number of
//! still-unallocated objects is stored **at the top of the unallocated
//! objects** (paper Figure 3). Large objects (bigger than half a segment)
//! take whole segments, found by scanning the size-class byte array.
//!
//! There is no coalescing, no splitting, no sorting — ever. `freeAll`
//! resets only the metadata, whose cost is "almost negligible" next to the
//! heap itself.
//!
//! The three optimizations of §3.3 are implemented: process-id-based
//! metadata placement (associativity-conflict avoidance on Niagara's tiny
//! shared L1), large-page heap mappings, and lock-free per-process heaps
//! (trivially true here: one allocator per simulated process).
//!
//! One engineering refinement beyond the paper's text: each size class
//! retains its *primary segment* across `freeAll` (the binding is
//! re-initialized rather than discarded). Without it, the class→segment
//! assignment would reshuffle every transaction with the first-malloc
//! order, needlessly cycling the heap's hot lines through different
//! physical addresses; retention keeps the per-transaction working set at
//! stable addresses, which is what a production implementation would do.

mod size_class;

pub use size_class::{ClassMapping, SizeClasses};

use crate::api::{
    enter_mm, exit_mm, AllocError, AllocTraits, Allocator, BandwidthClass, CostClass, Footprint,
    OpStats,
};
use webmm_sim::{Addr, CodeRegionId, CodeSpec, MemoryPort, PageSize};

/// Marker in the size-class byte array: segment is part of a large object.
const SEG_LARGE: u8 = 255;
/// Marker: segment unused.
const SEG_FREE: u8 = 0;

/// Configuration of a [`DdMalloc`] heap.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct DdConfig {
    /// Segment size in bytes (the paper uses 32 KB, chosen by measurement).
    pub segment_bytes: u64,
    /// Maximum number of segments (heap capacity = product of the two).
    pub max_segments: u32,
    /// Map the heap with 4 MB pages (§3.3 optimization 2; the paper enables
    /// it on Niagara, disables it on Xeon for fairness).
    pub large_pages: bool,
    /// Offset the metadata block by a per-process stride to avoid cache
    /// associativity conflicts between runtimes (§3.3 optimization 1).
    pub metadata_offset: bool,
    /// Simulated process id feeding the metadata offset.
    pub pid: u32,
    /// Size-class mapping policy (§3.2; ablation parameter).
    pub mapping: ClassMapping,
}

impl Default for DdConfig {
    fn default() -> Self {
        DdConfig {
            segment_bytes: 32 * 1024,
            max_segments: 16 * 1024, // 512 MB of heap address space
            large_pages: false,
            metadata_offset: true,
            pid: 0,
            mapping: ClassMapping::Paper,
        }
    }
}

/// Resolved heap layout (addresses inside the simulated address space).
#[derive(Copy, Clone, Debug)]
struct Layout {
    /// chain_head[class]: head of the per-class free list.
    chain_base: Addr,
    /// tail_ptr[class]: next carve position in the class's open segment.
    tail_base: Addr,
    /// hint[class]: the segment index this class used last — checked first
    /// on segment acquisition so a class reclaims "its" segment after
    /// `freeAll`, keeping the class→segment binding (and therefore the
    /// cache-resident working set) stable across transactions.
    hint_base: Addr,
    /// seg_class[segment]: one byte per segment.
    class_map: Addr,
    /// large_span[segment]: u32 span length for large-object starts.
    span_base: Addr,
    /// Scalar metadata: rotor (next-fit scan position).
    rotor_addr: Addr,
    /// Scalar metadata: high-water segment count.
    hw_addr: Addr,
    /// First segment.
    seg_base: Addr,
}

/// The defrag-dodging allocator.
///
/// # Examples
///
/// ```
/// use webmm_alloc::{Allocator, DdConfig, DdMalloc};
/// use webmm_sim::PlainPort;
///
/// let mut port = PlainPort::new();
/// let mut dd = DdMalloc::new(DdConfig::default());
/// let a = dd.malloc(&mut port, 48)?;
/// let b = dd.malloc(&mut port, 48)?;
/// dd.free(&mut port, a);
/// let c = dd.malloc(&mut port, 48)?;
/// assert_eq!(a, c, "freed objects are reused in LIFO order");
/// dd.free_all(&mut port);
/// # Ok::<(), webmm_alloc::AllocError>(())
/// ```
#[derive(Debug)]
pub struct DdMalloc {
    config: DdConfig,
    classes: SizeClasses,
    layout: Option<Layout>,
    code_id: Option<CodeRegionId>,
    stats: OpStats,
    /// Rust-side mirror of the high-water mark, for `footprint()` (which
    /// has no port to read simulated memory through).
    hw_mirror: u64,
    tx_alloc_bytes: u64,
    /// Folded lazily: updated only where `tx_alloc_bytes` can shrink
    /// (`free` / `free_all`), so the malloc fast path skips the max.
    /// Readers take `max(peak_tx_alloc, tx_alloc_bytes)`.
    peak_tx_alloc: u64,
    /// Telemetry mirrors (never read by the simulation): per-class live
    /// object and free-list-length counts, which classes hold a primary
    /// segment, segments currently marked used, and cumulative `freeAll`
    /// wall cost.
    ///
    /// `class_live`/`class_free` are cleared *lazily*: `free_all` bumps
    /// `epoch` instead of zeroing both vectors, and an entry only counts
    /// when `class_epoch[c] == epoch` (hot paths refresh stale entries
    /// through [`DdMalloc::touch_class`]). This keeps `free_all` — called
    /// once per transaction — O(1) on the Rust side regardless of how
    /// many size classes the mapping produces.
    class_live: Vec<u64>,
    class_free: Vec<u64>,
    class_epoch: Vec<u64>,
    epoch: u64,
    hint_set: Vec<bool>,
    /// Count of `true` entries in `hint_set`, maintained incrementally so
    /// `free_all` does not rescan the vector.
    hint_count: u64,
    segs_used: u64,
    free_all_ns: u64,
}

impl DdMalloc {
    /// Creates a DDmalloc heap with the given configuration. The heap is
    /// materialized lazily on first allocation.
    pub fn new(config: DdConfig) -> Self {
        let classes = SizeClasses::new(config.segment_bytes, config.mapping);
        let n = classes.count();
        DdMalloc {
            config,
            classes,
            layout: None,
            code_id: None,
            stats: OpStats::default(),
            hw_mirror: 0,
            tx_alloc_bytes: 0,
            peak_tx_alloc: 0,
            class_live: vec![0; n],
            class_free: vec![0; n],
            class_epoch: vec![0; n],
            epoch: 0,
            hint_set: vec![false; n],
            hint_count: 0,
            segs_used: 0,
            free_all_ns: 0,
        }
    }

    /// The heap configuration.
    pub fn config(&self) -> &DdConfig {
        &self.config
    }

    /// The size-class table in use.
    pub fn size_classes(&self) -> &SizeClasses {
        &self.classes
    }

    fn layout(&mut self, port: &mut dyn MemoryPort) -> Layout {
        if let Some(l) = self.layout {
            return l;
        }
        let n_classes = self.classes.count() as u64;
        let n_segs = u64::from(self.config.max_segments);
        // chain heads + tails + hints + class bytes + span words +
        // 2 scalars, with headroom for the pid-based placement offset.
        let meta_len = n_classes * 24 + n_segs + n_segs * 4 + 16;
        let offset = if self.config.metadata_offset {
            // Stride the metadata start across cache sets per process
            // (§3.3): 64-byte lines, 61 distinct positions (prime, so pids
            // spread over sets rather than aliasing).
            u64::from(self.config.pid % 61) * 64
        } else {
            0
        };
        let meta = port.os_alloc(meta_len + 61 * 64, 4096, PageSize::Base) + offset;
        let pages = if self.config.large_pages {
            PageSize::Large
        } else {
            PageSize::Base
        };
        let seg_base = port.os_alloc(
            n_segs * self.config.segment_bytes,
            self.config.segment_bytes,
            pages,
        );
        let chain_base = meta;
        let tail_base = chain_base + n_classes * 8;
        let hint_base = tail_base + n_classes * 8;
        let class_map = hint_base + n_classes * 8;
        let span_base = (class_map + n_segs).align_up(8);
        let rotor_addr = span_base + n_segs * 4;
        let hw_addr = rotor_addr + 8;
        let l = Layout {
            chain_base,
            tail_base,
            hint_base,
            class_map,
            span_base,
            rotor_addr,
            hw_addr,
            seg_base,
        };
        // No class owns a segment yet.
        for c in 0..n_classes {
            port.store_u64(hint_base + c * 8, u64::MAX);
        }
        port.exec(2 * n_classes);
        self.layout = Some(l);
        l
    }

    #[inline]
    fn seg_index(&self, l: &Layout, addr: Addr) -> u64 {
        (addr - l.seg_base) / self.config.segment_bytes
    }

    #[inline]
    fn seg_addr(&self, l: &Layout, idx: u64) -> Addr {
        l.seg_base + idx * self.config.segment_bytes
    }

    /// Scans the size-class byte array (next-fit from the rotor) for `need`
    /// contiguous unused segments. Returns the first segment index.
    ///
    /// The scan reads the class map through the port — 8 segments per
    /// 64-bit load — so heavily fragmented heaps pay a real, visible cost.
    fn acquire_segments(
        &mut self,
        port: &mut dyn MemoryPort,
        l: &Layout,
        need: u64,
    ) -> Result<u64, AllocError> {
        let max = u64::from(self.config.max_segments);
        if need > max {
            return Err(AllocError::OutOfMemory {
                requested: need * self.config.segment_bytes,
            });
        }
        let rotor = port.load_u64(l.rotor_addr).min(max - 1);
        port.exec(8);

        // Two passes: rotor → end, then 0 → rotor (runs do not wrap).
        for (pass_start, pass_end) in [(rotor, max), (0, rotor.min(max))] {
            let mut run = 0u64;
            let mut run_start = 0u64;
            let mut i = pass_start;
            while i < pass_end {
                // Load the 8-byte chunk of the class map covering segment i.
                let chunk_addr = (l.class_map + i).align_down(8);
                let chunk = port.load_u64(chunk_addr);
                port.exec(2);
                let chunk_first = chunk_addr - l.class_map;
                let chunk_last = (chunk_first + 8).min(pass_end);
                let mut j = i;
                while j < chunk_last {
                    let byte = (chunk >> ((j - chunk_first) * 8)) & 0xff;
                    if byte == u64::from(SEG_FREE) {
                        if run == 0 {
                            run_start = j;
                        }
                        run += 1;
                        if run == need {
                            // Mark used happens at the caller (class-specific).
                            let new_rotor = run_start + need;
                            port.store_u64(l.rotor_addr, new_rotor % max);
                            let hw = port.load_u64(l.hw_addr);
                            if run_start + need > hw {
                                port.store_u64(l.hw_addr, run_start + need);
                                self.hw_mirror = run_start + need;
                            }
                            port.exec(6);
                            return Ok(run_start);
                        }
                    } else {
                        run = 0;
                    }
                    j += 1;
                }
                i = chunk_last;
            }
        }
        Err(AllocError::OutOfMemory {
            requested: need * self.config.segment_bytes,
        })
    }

    fn malloc_small(
        &mut self,
        port: &mut dyn MemoryPort,
        l: &Layout,
        class: usize,
    ) -> Result<Addr, AllocError> {
        let obj_size = self.classes.size_of(class);
        let chain_addr = l.chain_base + class as u64 * 8;

        // Fast path: pop the free list (LIFO reuse keeps the line hot).
        let head = Addr::new(port.load_u64(chain_addr));
        port.exec(6);
        if !head.is_null() {
            let next = port.load_u64(head);
            port.store_u64(chain_addr, next);
            port.exec(4);
            self.touch_class(class);
            self.class_free[class] = self.class_free[class].saturating_sub(1);
            self.class_live[class] += 1;
            return Ok(head);
        }

        // Tail path: carve the next object off the open segment; the count
        // of remaining unallocated objects lives at the top of them.
        let tail_addr = l.tail_base + class as u64 * 8;
        let tail = Addr::new(port.load_u64(tail_addr));
        port.exec(4);
        if !tail.is_null() {
            let count = port.load_u32(tail);
            if count > 1 {
                let new_tail = tail + obj_size;
                port.store_u32(new_tail, count - 1);
                port.store_u64(tail_addr, new_tail.raw());
            } else {
                port.store_u64(tail_addr, 0);
            }
            port.exec(6);
            self.touch_class(class);
            self.class_live[class] += 1;
            return Ok(tail);
        }

        // Slow path: open a fresh segment for this class. The class's last
        // segment is tried first (stable binding across freeAll), then the
        // next-fit scan.
        let hint_addr = l.hint_base + class as u64 * 8;
        let hint = port.load_u64(hint_addr);
        port.exec(4);
        let seg = if hint != u64::MAX && port.load_u8(l.class_map + hint) == SEG_FREE {
            port.exec(2);
            hint
        } else {
            self.acquire_segments(port, l, 1)?
        };
        port.store_u64(hint_addr, seg);
        port.store_u8(l.class_map + seg, class as u8 + 1);
        let seg_addr = self.seg_addr(l, seg);
        let per_seg = self
            .classes
            .objects_per_segment(class, self.config.segment_bytes);
        if per_seg > 1 {
            let second = seg_addr + obj_size;
            port.store_u32(second, (per_seg - 1) as u32);
            port.store_u64(tail_addr, second.raw());
        }
        port.exec(14);
        if !self.hint_set[class] {
            self.hint_set[class] = true;
            self.hint_count += 1;
        }
        self.segs_used += 1;
        self.touch_class(class);
        self.class_live[class] += 1;
        Ok(seg_addr)
    }

    fn malloc_large(
        &mut self,
        port: &mut dyn MemoryPort,
        l: &Layout,
        size: u64,
    ) -> Result<Addr, AllocError> {
        let need = size.div_ceil(self.config.segment_bytes);
        let first = self.acquire_segments(port, l, need)?;
        for k in 0..need {
            port.store_u8(l.class_map + first + k, SEG_LARGE);
        }
        port.store_u32(l.span_base + first * 4, need as u32);
        port.exec(12 + 2 * need);
        self.segs_used += need;
        Ok(self.seg_addr(l, first))
    }

    /// Usable size of the live object at `addr` (class size, or span bytes
    /// for large objects).
    fn usable_size(&mut self, port: &mut dyn MemoryPort, l: &Layout, addr: Addr) -> u64 {
        let seg = self.seg_index(l, addr);
        let tag = port.load_u8(l.class_map + seg);
        port.exec(4);
        if tag == SEG_LARGE {
            let span = port.load_u32(l.span_base + seg * 4);
            u64::from(span) * self.config.segment_bytes
        } else {
            debug_assert!(
                tag != SEG_FREE,
                "usable_size on an address in a free segment"
            );
            self.classes.size_of(usize::from(tag - 1))
        }
    }

    #[inline]
    fn note_alloc(&mut self, rounded: u64) {
        // The peak is folded in `free`/`free_all` (the only places the
        // running total can shrink) and in the readers, not here.
        self.tx_alloc_bytes += rounded;
    }

    /// Refreshes a class's lazily-cleared telemetry mirrors before a hot
    /// path increments them (see the `class_live` field docs).
    #[inline]
    fn touch_class(&mut self, class: usize) {
        if self.class_epoch[class] != self.epoch {
            self.class_epoch[class] = self.epoch;
            self.class_live[class] = 0;
            self.class_free[class] = 0;
        }
    }

    /// Epoch-guarded mirror reads: stale entries count as zero.
    #[inline]
    fn class_live_now(&self, class: usize) -> u64 {
        if self.class_epoch[class] == self.epoch {
            self.class_live[class]
        } else {
            0
        }
    }

    #[inline]
    fn class_free_now(&self, class: usize) -> u64 {
        if self.class_epoch[class] == self.epoch {
            self.class_free[class]
        } else {
            0
        }
    }
}

impl webmm_obs::HeapTelemetry for DdMalloc {
    fn heap_snapshot(&self) -> webmm_obs::HeapSnapshot {
        let n_classes = self.classes.count() as u64;
        let n_segs = u64::from(self.config.max_segments);
        webmm_obs::HeapSnapshot {
            allocator: "our DDmalloc".into(),
            heap_bytes: self.hw_mirror * self.config.segment_bytes,
            // Segments are carved sequentially: the high-water mark *is*
            // the touched extent (the paper's Fig. 9 definition for
            // DDmalloc: allocated segments plus metadata).
            touched_bytes: self.hw_mirror * self.config.segment_bytes,
            metadata_bytes: n_classes * 16 + n_segs + n_segs * 4 + 16,
            tx_live_bytes: self.tx_alloc_bytes,
            peak_tx_bytes: self.peak_tx_alloc.max(self.tx_alloc_bytes),
            segments: self.segs_used,
            free_list_len: (0..self.classes.count())
                .map(|c| self.class_free_now(c))
                .sum(),
            free_bytes: (0..self.classes.count())
                .map(|c| self.class_free_now(c) * self.classes.size_of(c))
                .sum(),
            free_all_count: self.stats.free_alls,
            free_all_ns: self.free_all_ns,
            classes: (0..self.classes.count())
                .map(|c| webmm_obs::ClassOccupancy {
                    class: c as u32,
                    object_size: self.classes.size_of(c),
                    live: self.class_live_now(c),
                    free: self.class_free_now(c),
                })
                .collect(),
        }
    }
}

impl Allocator for DdMalloc {
    fn name(&self) -> &'static str {
        "our DDmalloc"
    }

    fn alloc_traits(&self) -> AllocTraits {
        AllocTraits {
            bulk_free: true,
            per_object_free: true,
            defragmentation: false,
            cost: CostClass::Low,
            bandwidth: BandwidthClass::Low,
        }
    }

    fn code_spec(&self) -> CodeSpec {
        // Compact code: a table lookup and a couple of list operations.
        CodeSpec::new(8 * 1024, 2 * 1024)
    }

    #[inline]
    fn malloc(&mut self, port: &mut dyn MemoryPort, size: u64) -> Result<Addr, AllocError> {
        if size == 0 {
            return Err(AllocError::InvalidRequest { requested: 0 });
        }
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let l = self.layout(port);
        let result = match self.classes.class_of(size) {
            Some(class) => {
                let r = self.malloc_small(port, &l, class);
                if r.is_ok() {
                    self.note_alloc(self.classes.size_of(class));
                }
                r
            }
            None => {
                let r = self.malloc_large(port, &l, size);
                if r.is_ok() {
                    self.note_alloc(
                        size.div_ceil(self.config.segment_bytes) * self.config.segment_bytes,
                    );
                }
                r
            }
        };
        if result.is_ok() {
            self.stats.mallocs += 1;
            self.stats.bytes_requested += size;
        }
        exit_mm(port);
        result
    }

    #[inline]
    fn free(&mut self, port: &mut dyn MemoryPort, addr: Addr) {
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let l = self.layout(port);
        let seg = self.seg_index(&l, addr);
        let tag = port.load_u8(l.class_map + seg);
        port.exec(6);
        if tag == SEG_LARGE {
            // "To free the large objects, it simply marks the segment as
            // unused."
            let span = u64::from(port.load_u32(l.span_base + seg * 4));
            for k in 0..span {
                port.store_u8(l.class_map + seg + k, SEG_FREE);
            }
            port.exec(4 + 2 * span);
            self.peak_tx_alloc = self.peak_tx_alloc.max(self.tx_alloc_bytes);
            self.tx_alloc_bytes = self
                .tx_alloc_bytes
                .saturating_sub(span * self.config.segment_bytes);
            self.segs_used = self.segs_used.saturating_sub(span);
        } else {
            debug_assert!(
                tag != SEG_FREE,
                "double free or wild pointer: segment is free"
            );
            let class = usize::from(tag - 1);
            let chain_addr = l.chain_base + class as u64 * 8;
            let head = port.load_u64(chain_addr);
            port.store_u64(addr, head);
            port.store_u64(chain_addr, addr.raw());
            port.exec(5);
            self.peak_tx_alloc = self.peak_tx_alloc.max(self.tx_alloc_bytes);
            self.tx_alloc_bytes = self
                .tx_alloc_bytes
                .saturating_sub(self.classes.size_of(class));
            self.touch_class(class);
            self.class_live[class] = self.class_live[class].saturating_sub(1);
            self.class_free[class] += 1;
        }
        self.stats.frees += 1;
        exit_mm(port);
    }

    fn realloc(
        &mut self,
        port: &mut dyn MemoryPort,
        addr: Addr,
        _old_size: u64,
        new_size: u64,
    ) -> Result<Addr, AllocError> {
        if new_size == 0 {
            return Err(AllocError::InvalidRequest { requested: 0 });
        }
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let l = self.layout(port);
        let usable = self.usable_size(port, &l, addr);
        if new_size <= usable && new_size * 2 >= usable {
            // Still fits its class and is not shrinking drastically:
            // nothing to do, like any segregated-storage realloc.
            self.stats.reallocs += 1;
            exit_mm(port);
            return Ok(addr);
        }
        exit_mm(port);
        let new = self.malloc(port, new_size)?;
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        port.memcpy(new, addr, usable.min(new_size));
        exit_mm(port);
        self.free(port, addr);
        self.stats.reallocs += 1;
        // malloc/free above were internal plumbing, not API calls.
        self.stats.mallocs -= 1;
        self.stats.frees -= 1;
        self.stats.bytes_requested -= new_size;
        Ok(new)
    }

    fn free_all(&mut self, port: &mut dyn MemoryPort) {
        // Wall-clock timing feeds telemetry only; it never enters the
        // simulated instruction counts.
        let t0 = std::time::Instant::now();
        let spec = self.code_spec();
        enter_mm(port, &mut self.code_id, spec);
        let l = self.layout(port);
        let n_classes = self.classes.count() as u64;
        // Clear the class map up to the high-water mark (beyond it the map
        // was never written). The span array need not be cleared: spans are
        // only read behind a SEG_LARGE tag.
        let hw = port.load_u64(l.hw_addr);
        let mut i = 0;
        while i < hw {
            port.store_u64((l.class_map + i).align_down(8), 0);
            i += 8;
        }
        // Reset the free lists and re-open each class's retained primary
        // segment: the class→segment binding survives freeAll, so the next
        // transaction reuses the exact same (cache-warm) addresses and
        // never re-scans for a segment another class or a large object
        // could race it for.
        for c in 0..n_classes {
            port.store_u64(l.chain_base + c * 8, 0);
            let hint = port.load_u64(l.hint_base + c * 8);
            if hint == u64::MAX {
                port.store_u64(l.tail_base + c * 8, 0);
                continue;
            }
            let seg_addr = self.seg_addr(&l, hint);
            port.store_u8(l.class_map + hint, c as u8 + 1);
            let per_seg = self
                .classes
                .objects_per_segment(c as usize, self.config.segment_bytes);
            port.store_u32(seg_addr, per_seg as u32);
            port.store_u64(l.tail_base + c * 8, seg_addr.raw());
        }
        port.store_u64(l.rotor_addr, 0);
        port.exec(24 + 6 * n_classes + 2 * (hw / 8));
        self.stats.free_alls += 1;
        self.peak_tx_alloc = self.peak_tx_alloc.max(self.tx_alloc_bytes);
        self.tx_alloc_bytes = 0;
        // Mirrors: only the retained primary segments stay used, free
        // lists are gone, nothing is live. The per-class vectors are
        // cleared lazily (epoch bump); the used-segment count is the
        // maintained hint counter, not a rescan.
        self.epoch += 1;
        self.segs_used = self.hint_count;
        self.free_all_ns += t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        exit_mm(port);
    }

    fn footprint(&self) -> Footprint {
        let n_classes = self.classes.count() as u64;
        let n_segs = u64::from(self.config.max_segments);
        Footprint {
            heap_bytes: self.hw_mirror * self.config.segment_bytes,
            metadata_bytes: n_classes * 16 + n_segs + n_segs * 4 + 16,
            peak_tx_alloc_bytes: self.peak_tx_alloc.max(self.tx_alloc_bytes),
        }
    }

    fn stats(&self) -> OpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webmm_sim::PlainPort;

    fn dd() -> DdMalloc {
        DdMalloc::new(DdConfig {
            max_segments: 256,
            ..DdConfig::default()
        })
    }

    #[test]
    fn lifo_reuse() {
        let mut port = PlainPort::new();
        let mut a = dd();
        let x = a.malloc(&mut port, 64).unwrap();
        let y = a.malloc(&mut port, 64).unwrap();
        a.free(&mut port, y);
        a.free(&mut port, x);
        // LIFO: x was freed last, so it comes back first.
        assert_eq!(a.malloc(&mut port, 64).unwrap(), x);
        assert_eq!(a.malloc(&mut port, 64).unwrap(), y);
    }

    #[test]
    fn sequential_carving_within_segment() {
        let mut port = PlainPort::new();
        let mut a = dd();
        let first = a.malloc(&mut port, 100).unwrap(); // class 104
        let second = a.malloc(&mut port, 100).unwrap();
        let third = a.malloc(&mut port, 100).unwrap();
        assert_eq!(second - first, 104);
        assert_eq!(third - second, 104);
        // All in the same 32 KB segment.
        assert_eq!(first.align_down(32 * 1024), third.align_down(32 * 1024));
    }

    #[test]
    fn segment_alignment_restriction() {
        let mut port = PlainPort::new();
        let mut a = dd();
        let x = a.malloc(&mut port, 8).unwrap();
        // First object of a fresh segment starts at a segment boundary.
        assert!(x.is_aligned(32 * 1024));
    }

    #[test]
    fn distinct_classes_use_distinct_segments() {
        let mut port = PlainPort::new();
        let mut a = dd();
        let small = a.malloc(&mut port, 8).unwrap();
        let mid = a.malloc(&mut port, 200).unwrap();
        assert_ne!(small.align_down(32 * 1024), mid.align_down(32 * 1024));
    }

    #[test]
    fn segment_exhaustion_opens_new_segment() {
        let mut port = PlainPort::new();
        let mut a = dd();
        // 16 KB class: 2 objects per segment.
        let o1 = a.malloc(&mut port, 16 * 1024).unwrap();
        let o2 = a.malloc(&mut port, 16 * 1024).unwrap();
        let o3 = a.malloc(&mut port, 16 * 1024).unwrap();
        assert_eq!(o1.align_down(32 * 1024), o2.align_down(32 * 1024));
        assert_ne!(o2.align_down(32 * 1024), o3.align_down(32 * 1024));
    }

    #[test]
    fn large_objects_take_whole_segments() {
        let mut port = PlainPort::new();
        let mut a = dd();
        let x = a.malloc(&mut port, 40 * 1024).unwrap(); // 2 segments
        assert!(x.is_aligned(32 * 1024));
        let y = a.malloc(&mut port, 8).unwrap();
        assert!(y.raw() >= x.raw() + 64 * 1024, "large span not overlapped");
    }

    #[test]
    fn freed_large_span_reused_after_scan_wraps() {
        let mut port = PlainPort::new();
        let mut a = DdMalloc::new(DdConfig {
            max_segments: 4,
            ..DdConfig::default()
        });
        let x = a.malloc(&mut port, 40 * 1024).unwrap(); // segments 0-1
        let _small = a.malloc(&mut port, 8).unwrap(); // segment 2
        a.free(&mut port, x);
        // Only a wrap of the next-fit scan can find two contiguous segments.
        let z = a.malloc(&mut port, 40 * 1024).unwrap();
        assert_eq!(z, x, "next-fit scan reuses the freed span after wrapping");
    }

    #[test]
    fn free_all_resets_heap_to_initial_state() {
        let mut port = PlainPort::new();
        let mut a = dd();
        let first = a.malloc(&mut port, 64).unwrap();
        for _ in 0..100 {
            a.malloc(&mut port, 64).unwrap();
        }
        a.free_all(&mut port);
        // After freeAll the heap returns to its initial state (Figure 2):
        // the same first address comes back.
        assert_eq!(a.malloc(&mut port, 64).unwrap(), first);
    }

    #[test]
    fn free_all_even_after_everything_freed_per_object() {
        // The paper: applications must call freeAll even if all objects
        // were already freed, because freeAll (not free) resets metadata.
        let mut port = PlainPort::new();
        let mut a = dd();
        let x = a.malloc(&mut port, 32).unwrap();
        a.free(&mut port, x);
        a.free_all(&mut port);
        assert_eq!(a.malloc(&mut port, 32).unwrap(), x);
        assert_eq!(a.stats().free_alls, 1);
    }

    #[test]
    fn no_per_object_headers() {
        // Objects in a segment are exactly class-size apart: zero header
        // overhead (a key DDmalloc property for space and cache locality).
        let mut port = PlainPort::new();
        let mut a = dd();
        let mut prev = a.malloc(&mut port, 8).unwrap();
        for _ in 0..10 {
            let next = a.malloc(&mut port, 8).unwrap();
            assert_eq!(next - prev, 8);
            prev = next;
        }
    }

    #[test]
    fn realloc_grows_and_preserves_prefix() {
        let mut port = PlainPort::new();
        let mut a = dd();
        let x = a.malloc(&mut port, 16).unwrap();
        port.store_u64(x, 0xabcd);
        port.store_u64(x + 8, 0x1234);
        let y = a.realloc(&mut port, x, 16, 200).unwrap();
        assert_ne!(x, y);
        assert_eq!(port.memory().read_u64(y), 0xabcd);
        assert_eq!(port.memory().read_u64(y + 8), 0x1234);
        assert_eq!(a.stats().reallocs, 1);
        assert_eq!(
            a.stats().mallocs,
            1,
            "realloc's internal malloc not double-counted"
        );
    }

    #[test]
    fn realloc_in_place_when_class_fits() {
        let mut port = PlainPort::new();
        let mut a = dd();
        let x = a.malloc(&mut port, 30).unwrap(); // class 32
        let y = a.realloc(&mut port, x, 30, 31).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn zero_size_rejected() {
        let mut port = PlainPort::new();
        let mut a = dd();
        assert!(matches!(
            a.malloc(&mut port, 0),
            Err(AllocError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn oom_when_heap_exhausted() {
        let mut port = PlainPort::new();
        let mut a = DdMalloc::new(DdConfig {
            max_segments: 4,
            ..DdConfig::default()
        });
        // 4 segments of 32 KB: a 5-segment large object cannot fit.
        assert!(matches!(
            a.malloc(&mut port, 160 * 1024),
            Err(AllocError::OutOfMemory { .. })
        ));
        // But 4 single segments fit exactly.
        for _ in 0..4 {
            a.malloc(&mut port, 20 * 1024).unwrap();
        }
        assert!(a.malloc(&mut port, 20 * 1024).is_err());
    }

    #[test]
    fn footprint_tracks_high_water_and_tx_peak() {
        let mut port = PlainPort::new();
        let mut a = dd();
        for _ in 0..10 {
            a.malloc(&mut port, 1024).unwrap();
        }
        let fp = a.footprint();
        assert_eq!(fp.heap_bytes, 32 * 1024, "ten 1 KB objects fit one segment");
        assert_eq!(fp.peak_tx_alloc_bytes, 10 * 1024);
        a.free_all(&mut port);
        let fp2 = a.footprint();
        assert_eq!(fp2.peak_tx_alloc_bytes, 10 * 1024, "peak survives freeAll");
        assert_eq!(
            fp2.heap_bytes,
            32 * 1024,
            "heap high-water survives freeAll"
        );
    }

    #[test]
    fn traits_match_table_1() {
        let a = dd();
        let t = a.alloc_traits();
        assert!(t.bulk_free);
        assert!(t.per_object_free);
        assert!(!t.defragmentation);
        assert_eq!(t.cost, CostClass::Low);
        assert_eq!(t.bandwidth, BandwidthClass::Low);
    }

    #[test]
    fn metadata_offset_distinguishes_processes() {
        let mut port0 = PlainPort::new();
        let mut port1 = PlainPort::new();
        let mk = |pid| DdConfig {
            pid,
            metadata_offset: true,
            max_segments: 64,
            ..DdConfig::default()
        };
        let mut a0 = DdMalloc::new(mk(0));
        let mut a1 = DdMalloc::new(mk(1));
        a0.malloc(&mut port0, 8).unwrap();
        a1.malloc(&mut port1, 8).unwrap();
        let l0 = a0.layout.unwrap();
        let l1 = a1.layout.unwrap();
        // Same address space shape, different metadata line offsets.
        assert_eq!(l1.chain_base.offset_in(64), 0);
        assert_ne!(
            l0.chain_base.raw() % 4096,
            l1.chain_base.raw() % 4096,
            "pid offset must shift metadata placement"
        );
    }

    #[test]
    fn large_pages_flag_maps_heap_large() {
        let mut port = PlainPort::new();
        let mut a = DdMalloc::new(DdConfig {
            large_pages: true,
            max_segments: 64,
            ..DdConfig::default()
        });
        a.malloc(&mut port, 8).unwrap();
        assert_eq!(port.large_ranges().len(), 1);
    }

    #[test]
    fn stats_count_operations() {
        let mut port = PlainPort::new();
        let mut a = dd();
        let x = a.malloc(&mut port, 10).unwrap();
        let y = a.malloc(&mut port, 20).unwrap();
        a.free(&mut port, x);
        a.realloc(&mut port, y, 20, 500).unwrap();
        a.free_all(&mut port);
        let s = a.stats();
        assert_eq!(s.mallocs, 2);
        assert_eq!(s.frees, 1);
        assert_eq!(s.reallocs, 1);
        assert_eq!(s.free_alls, 1);
        assert_eq!(s.bytes_requested, 30);
    }
}
