//! The allocator interface and the paper's Table 1 taxonomy.
//!
//! Every allocator in this crate implements [`Allocator`]: `malloc`,
//! per-object `free` (where supported), `realloc`, and `free_all` — the
//! paper's `freeAll` bulk-free hook called by the PHP runtime at the end of
//! each transaction. Allocators run entirely against a
//! [`MemoryPort`], keeping their metadata in simulated memory so that
//! free-list walks, header updates and segment carving generate exactly the
//! cache traffic the paper attributes to them.
//!
//! [`AllocTraits`] encodes Table 1 of the paper (bulk free / per-object
//! free / defragmentation / cost / bandwidth requirement) as data, so the
//! taxonomy can be printed programmatically.

use std::error::Error;
use std::fmt;

use webmm_sim::{Addr, Category, CodeSpec, MemoryPort};

/// Error returned when an allocation cannot be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The heap configured for this allocator is exhausted.
    OutOfMemory {
        /// The request that failed, in bytes.
        requested: u64,
    },
    /// The request is invalid (zero bytes or beyond the maximum supported).
    InvalidRequest {
        /// The request that failed, in bytes.
        requested: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "heap exhausted allocating {requested} bytes")
            }
            AllocError::InvalidRequest { requested } => {
                write!(f, "invalid allocation request of {requested} bytes")
            }
        }
    }
}

impl Error for AllocError {}

/// Relative cost of `malloc`/`free`, as tabulated in the paper's Table 1.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub enum CostClass {
    /// General-purpose allocators that defragment on every operation.
    High,
    /// Defrag-dodging: free lists only, no defragmentation.
    Low,
    /// Region-based: pointer increment.
    Lowest,
}

impl fmt::Display for CostClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CostClass::High => "high",
            CostClass::Low => "low",
            CostClass::Lowest => "lowest",
        };
        f.write_str(s)
    }
}

/// Memory-bandwidth appetite, as tabulated in the paper's Table 1.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub enum BandwidthClass {
    /// Reuses dead objects' memory: small working set.
    Low,
    /// Never reuses within a transaction: streams through fresh lines.
    High,
}

impl fmt::Display for BandwidthClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BandwidthClass::Low => "low",
            BandwidthClass::High => "high",
        })
    }
}

/// The paper's Table 1: properties of an allocation approach.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct AllocTraits {
    /// Supports `freeAll` (bulk freeing of all transaction-scoped objects).
    pub bulk_free: bool,
    /// Supports per-object `free` during a transaction.
    pub per_object_free: bool,
    /// Performs defragmentation activities (coalescing, splitting,
    /// size-sorting) in `malloc`/`free`.
    pub defragmentation: bool,
    /// Relative `malloc`/`free` cost.
    pub cost: CostClass,
    /// Memory-bandwidth requirement on multicore processors.
    pub bandwidth: BandwidthClass,
}

/// Memory-consumption report, following the paper's Figure 9 definitions.
///
/// "We defined memory consumption for each allocator as follows: the amount
/// of memory allocated from the underlying memory allocator for the default
/// allocator, the total amount of memory used for allocated segments and
/// the metadata for DDmalloc, and the total amount of memory allocated
/// during a transaction for the region-based allocator."
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Footprint {
    /// Bytes obtained from the simulated OS for heap payload (high-water).
    pub heap_bytes: u64,
    /// Bytes used by allocator metadata (free-list heads, class maps...).
    pub metadata_bytes: u64,
    /// Peak bytes allocated within a single transaction (between
    /// `free_all` calls), including rounding waste.
    pub peak_tx_alloc_bytes: u64,
}

/// Lifetime operation statistics maintained by every allocator.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct OpStats {
    /// `malloc` calls served.
    pub mallocs: u64,
    /// `free` calls served.
    pub frees: u64,
    /// `realloc` calls served.
    pub reallocs: u64,
    /// `free_all` calls served.
    pub free_alls: u64,
    /// Total bytes requested via `malloc` (pre-rounding).
    pub bytes_requested: u64,
}

/// A dynamic memory allocator operating on simulated memory.
///
/// # Contract
///
/// * Returned addresses are nonzero, aligned to at least 8 bytes, and the
///   ranges `[addr, addr + size)` of live objects never overlap.
/// * `free`/`realloc` must only be called with addresses currently live
///   from this allocator (checked by the validation layer in tests).
/// * Implementations set the port's cost category to
///   [`Category::MemoryManagement`] and select their own code region on
///   entry, and restore the category to [`Category::Application`] on exit.
///   Callers re-select their code region before executing their own code.
///
/// The [`HeapTelemetry`](webmm_obs::HeapTelemetry) supertrait makes every
/// allocator live-inspectable: `heap_snapshot` reports size-class
/// occupancy, free-list lengths, segment counts and cumulative `freeAll`
/// cost from Rust-side mirror counters, without touching the port or the
/// simulated heap.
pub trait Allocator: webmm_obs::HeapTelemetry {
    /// Display name, matching the paper's figures where applicable.
    fn name(&self) -> &'static str;

    /// Table 1 taxonomy entry for this allocator.
    fn alloc_traits(&self) -> AllocTraits;

    /// Code-footprint of this allocator's `malloc`/`free` paths (drives
    /// L1I behaviour; the paper credits DDmalloc's and the region
    /// allocator's L1I improvements to their smaller code).
    fn code_spec(&self) -> CodeSpec;

    /// Allocates `size` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidRequest`] for zero-sized or oversized
    /// requests and [`AllocError::OutOfMemory`] when the heap is exhausted.
    fn malloc(&mut self, port: &mut dyn MemoryPort, size: u64) -> Result<Addr, AllocError>;

    /// Frees the object at `addr`.
    ///
    /// For allocators without per-object free (region, obstack) this is a
    /// no-op; the runtime consults [`AllocTraits::per_object_free`] and
    /// omits the calls, as the paper's porting recipe requires.
    fn free(&mut self, port: &mut dyn MemoryPort, addr: Addr);

    /// Resizes the object at `addr` to `new_size` bytes, moving it if
    /// necessary. `old_size` is the caller-tracked payload size, used only
    /// by headerless allocators (the region allocator) to bound the copy.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Allocator::malloc`].
    fn realloc(
        &mut self,
        port: &mut dyn MemoryPort,
        addr: Addr,
        old_size: u64,
        new_size: u64,
    ) -> Result<Addr, AllocError>;

    /// Bulk-frees every object in the heap (the paper's `freeAll`).
    ///
    /// Implementations that do not support bulk freeing (glibc-, Hoard- and
    /// TCmalloc-style) panic; consult [`AllocTraits::bulk_free`] first.
    fn free_all(&mut self, port: &mut dyn MemoryPort);

    /// Current memory consumption (Figure 9 definitions).
    fn footprint(&self) -> Footprint;

    /// Lifetime operation counts.
    fn stats(&self) -> OpStats;
}

/// Sets the port up for allocator work: memory-management category plus the
/// allocator's code region (registered lazily on first use as *shared
/// text* — allocators are shared libraries, so every process fetches the
/// same lines).
pub(crate) fn enter_mm(
    port: &mut dyn MemoryPort,
    code_id: &mut Option<webmm_sim::CodeRegionId>,
    spec: CodeSpec,
) {
    port.set_category(Category::MemoryManagement);
    let id = *code_id.get_or_insert_with(|| {
        // Distinct (len, hot_len) pairs identify distinct allocators.
        let key = (spec.len / 1024) as u32 * 97 + (spec.hot_len / 1024) as u32;
        port.register_shared_code(key, spec)
    });
    port.set_code_region(id);
}

/// Restores the application category on exit from allocator code.
pub(crate) fn exit_mm(port: &mut dyn MemoryPort) {
    port.set_category(Category::Application);
}

/// Rounds `size` up to a multiple of `align` (power of two).
#[inline]
pub(crate) fn round_up(size: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (size + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = AllocError::OutOfMemory { requested: 100 };
        assert_eq!(e.to_string(), "heap exhausted allocating 100 bytes");
        let e = AllocError::InvalidRequest { requested: 0 };
        assert!(e.to_string().contains("invalid"));
    }

    #[test]
    fn cost_class_display() {
        assert_eq!(CostClass::High.to_string(), "high");
        assert_eq!(CostClass::Low.to_string(), "low");
        assert_eq!(CostClass::Lowest.to_string(), "lowest");
        assert_eq!(BandwidthClass::Low.to_string(), "low");
        assert_eq!(BandwidthClass::High.to_string(), "high");
    }

    #[test]
    fn round_up_works() {
        assert_eq!(round_up(1, 8), 8);
        assert_eq!(round_up(8, 8), 8);
        assert_eq!(round_up(9, 8), 16);
        assert_eq!(round_up(100, 32), 128);
        assert_eq!(round_up(513, 1024), 1024);
    }
}
