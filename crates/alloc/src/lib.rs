//! # webmm-alloc: the paper's allocators
//!
//! Every memory allocator studied in *"A Study of Memory Management for
//! Web-based Applications on Multicore Processors"* (PLDI 2009),
//! implemented against the simulated memory of [`webmm_sim`] so that their
//! metadata traffic — free-list walks, boundary-tag updates, segment
//! carving — shows up in the machine's cache and bus counters exactly where
//! the paper says it does.
//!
//! | Allocator | Paper role | Table 1 row |
//! |---|---|---|
//! | [`DdMalloc`] | **the contribution**: defrag-dodging segregated storage | bulk ✓, per-object ✓, defrag ✗, cost *low*, bandwidth *low* |
//! | [`PhpDefaultAlloc`] | Zend-style default allocator of the PHP runtime | bulk ✓, per-object ✓, defrag ✓, cost *high*, bandwidth *low* |
//! | [`RegionAlloc`] | 256 MB-chunk bump allocator | bulk ✓, per-object ✗, defrag ✗, cost *lowest*, bandwidth *high* |
//! | [`ObstackAlloc`] | GNU-obstack alternative region allocator | — |
//! | [`DlAlloc`] | glibc / Doug Lea baseline (Ruby study) | — |
//! | [`HoardAlloc`] | Hoard 3.7 baseline (Ruby study) | — |
//! | [`TcAlloc`] | TCmalloc baseline with *delayed* defragmentation | — |
//! | [`ReapAlloc`] | Reaps (§6): region bulk-free + Lea-style per-object free | — |
//!
//! All implement the [`Allocator`] trait; [`AllocatorKind`] is the factory.
//!
//! ## Example
//!
//! ```
//! use webmm_alloc::{Allocator, AllocatorKind};
//! use webmm_sim::PlainPort;
//!
//! let mut port = PlainPort::new();
//! let mut dd = AllocatorKind::DdMalloc.build(0);
//! let obj = dd.malloc(&mut port, 100)?;
//! dd.free(&mut port, obj);
//! dd.free_all(&mut port); // end of transaction
//! # Ok::<(), webmm_alloc::AllocError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod api;
mod boundary;
mod ddmalloc;
mod dl;
mod factory;
mod hoard;
mod obstack;
mod php_default;
mod reaps;
mod region;
mod tcmalloc;

pub use api::{AllocError, AllocTraits, Allocator, BandwidthClass, CostClass, Footprint, OpStats};
pub use ddmalloc::{ClassMapping, DdConfig, DdMalloc, SizeClasses};
pub use dl::{DlAlloc, DlConfig};
pub use factory::AllocatorKind;
pub use hoard::{HoardAlloc, HoardConfig};
pub use obstack::{ObstackAlloc, ObstackConfig};
pub use php_default::{PhpConfig, PhpDefaultAlloc};
pub use reaps::{ReapAlloc, ReapConfig};
pub use region::{RegionAlloc, RegionConfig};
pub use tcmalloc::{TcAlloc, TcConfig};
pub use webmm_obs::{ClassOccupancy, HeapSnapshot, HeapTelemetry};
