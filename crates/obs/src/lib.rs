//! # webmm-obs — live telemetry for the webmm serving harness
//!
//! The paper's argument is built from measurement lenses: CPU-time
//! breakdowns, hardware-event deltas, per-allocator memory-consumption
//! definitions. This crate supplies the *live* versions of those lenses —
//! readable while a serving run is in flight, not just after
//! `Server::finish` — with overhead small enough that the measurements
//! remain trustworthy:
//!
//! * [`MetricsRegistry`] — named atomic counters/gauges, one
//!   cache-line-padded shard per worker, snapshot-on-read. The hot path
//!   is a single relaxed atomic add.
//! * [`LatencyHistogram`] / [`LatencySummary`] — the log2-bucketed
//!   histogram (moved here from `webmm-server` so every crate shares one
//!   definition of a quantile) with documented edge behavior at
//!   `q = 0`, `q = 1`, and on empty histograms.
//! * [`SlidingWindow`] / [`AtomicHistogram`] — a rotating ring of atomic
//!   histogram slots giving mid-run p50/p95/p99 over the last
//!   `slots × interval` of traffic.
//! * [`HeapTelemetry`] / [`HeapSnapshot`] — the trait every allocator
//!   family implements to expose size-class occupancy, segment/chunk
//!   counts, free-list lengths, touched-footprint high-water marks, and
//!   cumulative `freeAll` cost from Rust-side mirrors (no simulated-
//!   memory walks, no perturbation of the measured heap).
//! * [`TxTracer`] / [`TxSpan`] — fixed-capacity per-worker ring buffers
//!   of raw transaction spans (`enqueue → dequeue → complete`, bytes,
//!   shed flag) with whole-ring dump on demand.
//! * [`ShardSample`] — per-shard depth, admission, and steal counters
//!   for sharded work-stealing ingress queues, published in every
//!   telemetry sample so shard imbalance is visible live.
//!
//! The crate is dependency-free beyond `serde` (for one shared JSON path
//! with the bench reports) and knows nothing about servers, queues, or
//! ports — `webmm-server` wires these primitives into its sampler thread
//! and JSONL exporter.

mod heap;
mod histogram;
mod net;
mod registry;
mod shard;
mod trace;
mod window;

pub use heap::{ClassOccupancy, HeapSnapshot, HeapTelemetry};
pub use histogram::{LatencyHistogram, LatencySummary};
pub use net::{net_metric, NetCounters};
pub use registry::{MetricHandle, MetricKind, MetricSample, MetricsRegistry, MetricsSnapshot};
pub use shard::ShardSample;
pub use trace::{SpanRing, TxSpan, TxTracer};
pub use window::{AtomicHistogram, SlidingWindow};
