//! Per-shard ingress counters for sharded work-stealing queues.
//!
//! The serving harness can replace its single global ingress queue with
//! one shard per worker (see `webmm-server`'s DESIGN notes on ingress
//! sharding). Each shard then carries its own admission counters plus a
//! steal counter, and the sampler publishes one [`ShardSample`] per shard
//! in every telemetry sample so imbalance — a hot shard, a starved
//! worker living off steals — is visible live, not just in the final
//! report.
//!
//! The type lives here rather than in `webmm-server` because it is pure
//! observation data: the JSONL exporter, dashboards, and offline tooling
//! all deserialize it without pulling in the server crate.

/// Depth and admission/steal counters for one ingress shard at sampling
/// time.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShardSample {
    /// Shard index (shard *i* is worker *i*'s home shard).
    pub shard: u64,
    /// Transactions queued in this shard at sampling time.
    pub depth: u64,
    /// Cumulative submissions routed to this shard.
    pub submitted: u64,
    /// Cumulative sheds charged to this shard (rejections at its door
    /// plus shed-oldest victims displaced from its buffer).
    pub shed: u64,
    /// Deepest this shard has been.
    pub max_depth: u64,
    /// Transactions other workers have stolen *from* this shard.
    pub stolen: u64,
}
