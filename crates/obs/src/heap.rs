//! Heap telemetry: live introspection of allocator internals.
//!
//! The paper's Fig. 9 argues that "memory consumption" means something
//! different under every allocator — a region's touched high-water mark,
//! DDmalloc's segment count, a boundary-tag heap's free-list mass. The
//! [`HeapTelemetry`] trait makes each family report its own internals in
//! one shared vocabulary so the serving harness can sample a worker's
//! heap mid-run and the dashboard can compare families side by side.
//!
//! Implementations answer from Rust-side mirror counters, *not* by
//! walking simulated memory: allocator metadata lives behind a
//! [`MemoryPort`](../../webmm_sim) and walking it would both need a port
//! handle and perturb the very instruction counts the study measures.
//! Keeping mirrors is the observability analogue of the paper's
//! no-per-object-header rule — the measured heap stays untouched.

/// Occupancy of one size class (or span/superblock class) at snapshot
/// time.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ClassOccupancy {
    /// Class index within the allocator's own class table.
    pub class: u32,
    /// Object size this class serves, in bytes.
    pub object_size: u64,
    /// Objects currently live (allocated, not yet freed).
    pub live: u64,
    /// Entries on this class's free list, ready for reuse.
    pub free: u64,
}

/// Point-in-time view of one worker heap's internals.
///
/// Families fill the fields that exist for them and leave the rest zero /
/// empty: a bump allocator has no free lists, a boundary-tag heap has no
/// size classes. [`HeapSnapshot::default`] is the all-zero snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HeapSnapshot {
    /// Allocator name, as in [`Allocator::name`] (e.g. `"ddmalloc"`).
    pub allocator: String,
    /// Bytes reserved from the (simulated) OS.
    pub heap_bytes: u64,
    /// High-water mark of bytes actually touched — the paper's honest
    /// footprint measure for lazily-committed memory.
    pub touched_bytes: u64,
    /// Bytes of allocator metadata (headers, maps, directories).
    pub metadata_bytes: u64,
    /// Payload bytes allocated in the current transaction so far.
    pub tx_live_bytes: u64,
    /// Largest in-transaction allocation total seen by this heap — how
    /// far a single transaction has ever stretched it.
    pub peak_tx_bytes: u64,
    /// Segments / chunks / superblocks / spans currently held, in the
    /// family's own unit.
    pub segments: u64,
    /// Total entries across all free lists (0 where none exist).
    pub free_list_len: u64,
    /// Bytes those free-list entries cover — the reusable-but-held mass a
    /// defragmenting allocator carries between transactions.
    pub free_bytes: u64,
    /// Bulk `freeAll` calls served so far.
    pub free_all_count: u64,
    /// Cumulative wall-clock nanoseconds spent inside `freeAll` — the
    /// paper's "freeAll cost" made observable as it accrues.
    pub free_all_ns: u64,
    /// Per-class occupancy, empty for classless families.
    pub classes: Vec<ClassOccupancy>,
}

impl HeapSnapshot {
    /// Sum of live objects across all classes.
    pub fn live_objects(&self) -> u64 {
        self.classes.iter().map(|c| c.live).sum()
    }
}

/// Live introspection hook every allocator family implements.
///
/// This is a supertrait of `webmm_alloc::Allocator`, so any boxed
/// allocator can be snapshotted without downcasting. The snapshot must be
/// answerable from the allocator's own Rust-side state — no port access,
/// no simulated-memory walks — so taking one is cheap and side-effect
/// free.
pub trait HeapTelemetry {
    /// Reports this heap's internals right now.
    fn heap_snapshot(&self) -> HeapSnapshot;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_snapshot_is_empty() {
        let s = HeapSnapshot::default();
        assert_eq!(s.allocator, "");
        assert_eq!(s.live_objects(), 0);
        assert!(s.classes.is_empty());
    }

    #[test]
    fn live_objects_sums_classes() {
        let s = HeapSnapshot {
            classes: vec![
                ClassOccupancy {
                    class: 0,
                    object_size: 8,
                    live: 3,
                    free: 1,
                },
                ClassOccupancy {
                    class: 1,
                    object_size: 16,
                    live: 4,
                    free: 0,
                },
            ],
            ..HeapSnapshot::default()
        };
        assert_eq!(s.live_objects(), 7);
    }

    #[test]
    fn snapshot_roundtrips_through_serde() {
        let s = HeapSnapshot {
            allocator: "ddmalloc".into(),
            heap_bytes: 1 << 20,
            touched_bytes: 4096,
            segments: 3,
            classes: vec![ClassOccupancy {
                class: 2,
                object_size: 32,
                live: 5,
                free: 7,
            }],
            ..HeapSnapshot::default()
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: HeapSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
