//! Sliding-window latency view over atomic histogram slots.
//!
//! The per-run [`LatencyHistogram`](crate::LatencyHistogram) answers
//! "what were the quantiles of the whole run" — after the run. Mid-run we
//! want "what is p99 *right now*", which needs (a) concurrent recording
//! from many workers and (b) forgetting: a latency spike five minutes ago
//! must not pollute the current reading forever.
//!
//! [`SlidingWindow`] solves both with a ring of [`AtomicHistogram`]
//! slots. Workers record into the current slot with relaxed atomics (same
//! bucket math as the scalar histogram, so window quantiles and end-of-run
//! quantiles are directly comparable). The sampler thread calls
//! [`SlidingWindow::advance`] once per sampling tick: the cursor moves to
//! the oldest slot, which is wiped and becomes current. A read merges all
//! slots, so the view always covers the last `slots × interval` of
//! traffic, aging out one slot at a time.

use crate::histogram::{LatencyHistogram, LatencySummary};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A [`LatencyHistogram`] with atomic cells, recordable from any thread.
pub struct AtomicHistogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    /// `u64::MAX` sentinel while empty, like the scalar histogram.
    min_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty atomic histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: [const { AtomicU64::new(0) }; 64],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one observation; same bucketing as
    /// [`LatencyHistogram::record`], all relaxed atomics.
    #[inline]
    pub fn record(&self, ns: u64) {
        let idx = 63u32.saturating_sub(ns.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
    }

    /// Wipes back to empty (sampler-side, between window rotations).
    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
    }

    /// Copies the atomic cells into a scalar [`LatencyHistogram`].
    /// Concurrent writers keep writing; the copy is per-cell atomic, not
    /// globally consistent — fine for observability, wrong for invariants.
    pub fn to_histogram(&self) -> LatencyHistogram {
        let mut buckets = [0u64; 64];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        LatencyHistogram::from_parts(
            buckets,
            self.count.load(Ordering::Relaxed),
            self.sum_ns.load(Ordering::Relaxed),
            self.max_ns.load(Ordering::Relaxed),
            self.min_ns.load(Ordering::Relaxed),
        )
    }
}

/// Ring of atomic histogram slots covering the last
/// `slots × advance-interval` of observations.
pub struct SlidingWindow {
    slots: Vec<AtomicHistogram>,
    cursor: AtomicUsize,
}

impl SlidingWindow {
    /// A window of `slots` slots (at least 2: one being written, one or
    /// more aging out).
    pub fn new(slots: usize) -> Self {
        SlidingWindow {
            slots: (0..slots.max(2)).map(|_| AtomicHistogram::new()).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Number of slots in the ring.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Records into the current slot. Racing with [`advance`](Self::advance)
    /// at worst lands the observation in the slot just rotated out — off
    /// by one tick, never lost.
    #[inline]
    pub fn record(&self, ns: u64) {
        let cur = self.cursor.load(Ordering::Relaxed) % self.slots.len();
        self.slots[cur].record(ns);
    }

    /// Rotates the window one tick: the oldest slot is wiped and becomes
    /// the new current slot. Called by the sampler, once per interval.
    pub fn advance(&self) {
        let next = (self.cursor.load(Ordering::Relaxed) + 1) % self.slots.len();
        self.slots[next].reset();
        self.cursor.store(next, Ordering::Relaxed);
    }

    /// Merged view of every slot — the whole window.
    pub fn histogram(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for slot in &self.slots {
            let h = slot.to_histogram();
            if h.count() > 0 {
                merged.merge(&h);
            }
        }
        merged
    }

    /// Quantile summary of the whole window.
    pub fn summary(&self) -> LatencySummary {
        self.histogram().summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn atomic_histogram_matches_scalar() {
        let a = AtomicHistogram::new();
        let mut s = LatencyHistogram::new();
        for v in [0u64, 1, 7, 100, 4096, 1_000_000] {
            a.record(v);
            s.record(v);
        }
        let copied = a.to_histogram();
        assert_eq!(copied.summary(), s.summary());
        assert_eq!(copied.min_ns(), 0);
        assert_eq!(copied.max_ns(), 1_000_000);
    }

    #[test]
    fn empty_atomic_histogram_converts_to_empty() {
        let a = AtomicHistogram::new();
        let h = a.to_histogram();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn window_ages_out_old_observations() {
        let w = SlidingWindow::new(3);
        w.record(1_000_000); // spike in slot 0
        assert_eq!(w.histogram().max_ns(), 1_000_000);
        w.advance(); // slot 1 current; spike still in window
        w.record(100);
        assert_eq!(w.histogram().max_ns(), 1_000_000);
        w.advance(); // slot 2 current; spike still in window (3 slots)
        assert_eq!(w.histogram().max_ns(), 1_000_000);
        w.advance(); // wraps: slot 0 wiped — spike aged out
        assert_eq!(w.histogram().max_ns(), 100);
        assert_eq!(w.histogram().count(), 1);
    }

    #[test]
    fn window_summary_covers_all_live_slots() {
        let w = SlidingWindow::new(4);
        for i in 0..3 {
            for v in 0..100u64 {
                w.record(v + i * 1000);
            }
            w.advance();
        }
        let s = w.summary();
        assert_eq!(s.count, 300);
        assert_eq!(s.min_ns, 0);
        assert!(s.p50_ns <= s.p99_ns && s.p99_ns <= s.max_ns);
    }

    #[test]
    fn concurrent_recording_loses_nothing_without_rotation() {
        let w = Arc::new(SlidingWindow::new(4));
        thread::scope(|sc| {
            for t in 0..4 {
                let w = Arc::clone(&w);
                sc.spawn(move || {
                    for i in 0..10_000u64 {
                        w.record(t * 13 + i % 97);
                    }
                });
            }
        });
        assert_eq!(w.histogram().count(), 40_000);
    }
}
