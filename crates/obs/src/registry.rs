//! Lock-free metrics registry: sharded atomic counters and gauges.
//!
//! The hot path (a worker bumping a counter) is one relaxed atomic add on
//! a cache-line-padded cell owned by that worker's shard — no locks, no
//! false sharing, no cross-core traffic. Reads are *snapshot-on-read*: the
//! sampler sums the shards when it wants a value, paying the cost on the
//! cold path instead. This mirrors the paper's DDmalloc principle of
//! keeping per-object work header-free and pushing bookkeeping to the
//! boundaries: the worker's fast path carries no observation overhead
//! beyond the single add.
//!
//! Registration (naming a metric) takes a write lock, but happens only at
//! startup; after that every handle is a plain `(metric, shard)` index
//! pair that can be cloned and moved across threads freely.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One atomic cell, padded to a cache line so shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

/// Whether a metric accumulates (counter) or holds a last-written value
/// (gauge). Counters sum across shards on read; gauges also sum — each
/// shard's gauge is that worker's contribution (e.g. its live bytes), so
/// the sum is the fleet-wide value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MetricKind {
    /// Monotone accumulator; `add` is the writer.
    Counter,
    /// Last-value-wins per shard; `set` is the writer.
    Gauge,
}

struct Metric {
    name: String,
    kind: MetricKind,
    shards: Vec<PaddedCell>,
}

/// Registry of named metrics, one shard per worker.
///
/// Create once with the worker count, register metrics up front, hand
/// each worker its [`MetricHandle`]s, and let the sampler call
/// [`MetricsRegistry::snapshot`] at its leisure.
pub struct MetricsRegistry {
    shards: usize,
    metrics: RwLock<Vec<Arc<Metric>>>,
}

impl MetricsRegistry {
    /// A registry with `shards` independent write lanes (one per worker;
    /// values are summed across lanes on read). At least one shard.
    pub fn new(shards: usize) -> Self {
        MetricsRegistry {
            shards: shards.max(1),
            metrics: RwLock::new(Vec::new()),
        }
    }

    /// Number of write lanes.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Registers (or finds) a metric by name and returns the handle for
    /// `shard`. Re-registering the same name returns a handle to the same
    /// cells, so workers can register independently without coordination.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range, or if the name is already
    /// registered with a different kind.
    pub fn handle(&self, name: &str, kind: MetricKind, shard: usize) -> MetricHandle {
        assert!(shard < self.shards, "shard {shard} >= {}", self.shards);
        if let Some(m) = self.find(name) {
            assert_eq!(m.kind, kind, "metric {name:?} re-registered as {kind:?}");
            return MetricHandle { metric: m, shard };
        }
        let mut metrics = self.metrics.write().unwrap();
        // Re-check under the write lock: another thread may have won.
        if let Some(m) = metrics.iter().find(|m| m.name == name) {
            assert_eq!(m.kind, kind, "metric {name:?} re-registered as {kind:?}");
            return MetricHandle {
                metric: Arc::clone(m),
                shard,
            };
        }
        let metric = Arc::new(Metric {
            name: name.to_string(),
            kind,
            shards: (0..self.shards).map(|_| PaddedCell::default()).collect(),
        });
        metrics.push(Arc::clone(&metric));
        MetricHandle { metric, shard }
    }

    fn find(&self, name: &str) -> Option<Arc<Metric>> {
        self.metrics
            .read()
            .unwrap()
            .iter()
            .find(|m| m.name == name)
            .map(Arc::clone)
    }

    /// Sums `name` across all shards; `None` if never registered.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.find(name).map(|m| {
            m.shards
                .iter()
                .map(|c| c.0.load(Ordering::Relaxed))
                .sum::<u64>()
        })
    }

    /// Reads every metric (summed across shards) at roughly one instant.
    /// "Roughly": writers keep writing — each value is individually
    /// atomic, the set is not, which is the documented trade for a
    /// lock-free hot path.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.read().unwrap();
        MetricsSnapshot {
            samples: metrics
                .iter()
                .map(|m| MetricSample {
                    name: m.name.clone(),
                    kind: m.kind,
                    value: m
                        .shards
                        .iter()
                        .map(|c| c.0.load(Ordering::Relaxed))
                        .sum::<u64>(),
                })
                .collect(),
        }
    }
}

/// A writer's grip on one metric's shard. Cheap to clone, `Send + Sync`;
/// writes are single relaxed atomics.
#[derive(Clone)]
pub struct MetricHandle {
    metric: Arc<Metric>,
    shard: usize,
}

impl MetricHandle {
    /// Adds to this shard (counters).
    #[inline]
    pub fn add(&self, delta: u64) {
        self.metric.shards[self.shard]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrites this shard (gauges).
    #[inline]
    pub fn set(&self, value: u64) {
        self.metric.shards[self.shard]
            .0
            .store(value, Ordering::Relaxed);
    }

    /// This metric summed across *all* shards (not just this handle's).
    pub fn value(&self) -> u64 {
        self.metric
            .shards
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Point-in-time view of every registered metric.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// One entry per metric, in registration order.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.value)
    }
}

/// One metric's summed value at snapshot time.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct MetricSample {
    /// Registered name, e.g. `"tx.completed"`.
    pub name: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Sum over all shards.
    pub value: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_sum_across_shards() {
        let reg = MetricsRegistry::new(4);
        for shard in 0..4 {
            let h = reg.handle("tx.completed", MetricKind::Counter, shard);
            h.add((shard as u64 + 1) * 10);
        }
        assert_eq!(reg.value("tx.completed"), Some(100));
        assert_eq!(reg.snapshot().get("tx.completed"), Some(100));
    }

    #[test]
    fn gauges_overwrite_per_shard_and_sum_on_read() {
        let reg = MetricsRegistry::new(2);
        let a = reg.handle("heap.live_bytes", MetricKind::Gauge, 0);
        let b = reg.handle("heap.live_bytes", MetricKind::Gauge, 1);
        a.set(500);
        a.set(300); // overwrites, does not accumulate
        b.set(200);
        assert_eq!(reg.value("heap.live_bytes"), Some(500));
    }

    #[test]
    fn unknown_metric_reads_none() {
        let reg = MetricsRegistry::new(1);
        assert_eq!(reg.value("nope"), None);
        assert!(reg.snapshot().samples.is_empty());
    }

    #[test]
    fn concurrent_registration_and_writes_agree() {
        let reg = Arc::new(MetricsRegistry::new(8));
        thread::scope(|s| {
            for shard in 0..8 {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    let h = reg.handle("ops", MetricKind::Counter, shard);
                    for _ in 0..1000 {
                        h.add(1);
                    }
                });
            }
        });
        assert_eq!(reg.value("ops"), Some(8000));
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new(1);
        reg.handle("m", MetricKind::Counter, 0);
        reg.handle("m", MetricKind::Gauge, 0);
    }
}
