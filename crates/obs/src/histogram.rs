//! Log2-bucketed latency histogram.
//!
//! Service latencies span five-plus decades (a shed transaction completes
//! in microseconds; a queue-delayed one can take milliseconds), so fixed
//! buckets either blur the head or truncate the tail. Power-of-two buckets
//! give constant *relative* resolution (every estimate is within 2× of
//! truth, tightened below by linear interpolation inside the bucket) with
//! 64 counters and branch-free recording — cheap enough to live on the
//! worker's completion path.

/// Histogram of nanosecond latencies in 64 power-of-two buckets.
///
/// Bucket `i` holds values whose highest set bit is `i`, i.e. the range
/// `[2^i, 2^(i+1))`; bucket 0 holds 0 and 1 ns — a zero-nanosecond
/// observation is a real observation and is counted, not dropped.
/// Quantiles interpolate linearly within the selected bucket.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
    /// Smallest observation; `u64::MAX` while empty (accessor returns 0).
    min_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    /// Rebuilds a histogram from raw parts (used by the atomic windowed
    /// variant in [`crate::window`] to snapshot itself into this type).
    pub(crate) fn from_parts(
        buckets: [u64; 64],
        count: u64,
        sum_ns: u64,
        max_ns: u64,
        min_ns: u64,
    ) -> Self {
        LatencyHistogram {
            buckets,
            count,
            sum_ns,
            max_ns,
            min_ns,
        }
    }

    /// Records one latency observation. `record(0)` lands in the first
    /// bucket like any other value — zeros are counted, never dropped.
    pub fn record(&mut self, ns: u64) {
        let idx = 63u32.saturating_sub(ns.leading_zeros()) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Folds another histogram into this one (used to combine per-worker
    /// histograms into the server-wide view).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest observation, exact (0 for an empty histogram).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Smallest observation, exact (0 for an empty histogram).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Mean latency (exact: the running sum is kept outside the buckets).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile, interpolated within its bucket.
    ///
    /// Edge behavior, by contract:
    ///
    /// * an **empty** histogram returns 0 for every `q`;
    /// * `q <= 0.0` returns the exact observed **minimum**;
    /// * `q >= 1.0` returns the exact observed **maximum**;
    /// * everything in between is a within-bucket linear interpolation,
    ///   clamped into `[min_ns, max_ns]` so no estimate ever leaves the
    ///   observed range.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min_ns;
        }
        if q >= 1.0 {
            return self.max_ns;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let width = if i == 0 { 2u64 } else { 1u64 << i };
                let into = (rank - seen) as f64 / n as f64;
                let est = lo + (width as f64 * into) as u64;
                return est.clamp(self.min_ns, self.max_ns);
            }
            seen += n;
        }
        self.max_ns
    }

    /// Fixed-quantile summary for reports.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_ns: self.mean_ns(),
            min_ns: self.min_ns(),
            p50_ns: self.quantile(0.50),
            p95_ns: self.quantile(0.95),
            p99_ns: self.quantile(0.99),
            p999_ns: self.quantile(0.999),
            max_ns: self.max_ns,
        }
    }
}

/// Serializable quantile summary of a [`LatencyHistogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LatencySummary {
    /// Observations behind the quantiles.
    pub count: u64,
    /// Mean latency in nanoseconds (exact).
    pub mean_ns: u64,
    /// Smallest observation, exact.
    pub min_ns: u64,
    /// Median, within 2× (log2 buckets, interpolated).
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Largest observation, exact.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.summary(), LatencySummary::default());
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 100); // 100 ns .. 1 ms
        }
        let s = h.summary();
        assert!(s.min_ns <= s.p50_ns);
        assert!(s.p50_ns <= s.p95_ns);
        assert!(s.p95_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.p999_ns);
        assert!(s.p999_ns <= s.max_ns);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 1_000_000);
        // Log2 buckets: estimates are within a factor of two of truth.
        assert!(
            (250_000..=1_000_000).contains(&s.p50_ns),
            "p50 = {}",
            s.p50_ns
        );
    }

    #[test]
    fn quantile_edges_return_exact_min_and_max() {
        let mut h = LatencyHistogram::new();
        for v in [777u64, 3000, 42_000, 5] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 5);
        assert_eq!(h.quantile(-1.0), 5);
        assert_eq!(h.quantile(1.0), 42_000);
        assert_eq!(h.quantile(2.0), 42_000);
        for q in [0.1, 0.25, 0.5, 0.9, 0.99] {
            let v = h.quantile(q);
            assert!((5..=42_000).contains(&v), "q={q} → {v}");
        }
    }

    #[test]
    fn single_value_quantiles_hit_it_exactly() {
        let mut h = LatencyHistogram::new();
        h.record(4096);
        assert_eq!(h.quantile(0.0), 4096);
        assert_eq!(h.quantile(0.5), 4096);
        assert_eq!(h.quantile(0.999), 4096);
        assert_eq!(h.quantile(1.0), 4096);
        assert_eq!(h.mean_ns(), 4096);
        assert_eq!(h.min_ns(), 4096);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * 37 + 5;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.mean_ns(), whole.mean_ns());
        assert_eq!(a.summary(), whole.summary());
    }

    #[test]
    fn zero_is_recorded_in_bucket_zero_not_dropped() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.count(), 2, "record(0) must count");
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 1);
        assert!(h.quantile(1.0) <= 1);
        let mut only_zero = LatencyHistogram::new();
        only_zero.record(0);
        assert_eq!(only_zero.count(), 1);
        assert_eq!(only_zero.quantile(0.5), 0);
    }
}
