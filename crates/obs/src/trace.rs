//! Transaction span tracing: fixed-capacity per-worker ring buffers.
//!
//! Aggregates (histograms, counters) answer "how bad is the tail"; they
//! cannot answer "what did transaction 48123 actually experience". The
//! tracer keeps the last N transactions per worker as raw
//! `{tx_id, enqueue → dequeue → complete, bytes, shed}` spans so a
//! post-run dump can reconstruct individual slow requests and shed
//! decisions.
//!
//! Cost model: each worker writes only its own ring, so the per-record
//! mutex is uncontended (a dump is the only other locker, and dumps are
//! rare). The ring is fixed capacity — old spans are overwritten, memory
//! never grows, and tracing can stay on for an arbitrarily long run.

use std::sync::Mutex;
use std::time::Instant;

/// One transaction's lifecycle, timestamps in nanoseconds since the
/// tracer's epoch (its construction instant).
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TxSpan {
    /// Workload transaction id.
    pub tx_id: u64,
    /// Worker that completed it, or the shed lane's id for shed spans.
    pub worker: u64,
    /// When the client enqueued it.
    pub enqueue_ns: u64,
    /// When a worker dequeued it (equals `complete_ns` for shed spans —
    /// a shed transaction never ran).
    pub dequeue_ns: u64,
    /// When it finished (or was shed).
    pub complete_ns: u64,
    /// Payload bytes the transaction allocated while running (0 if shed).
    pub bytes_allocated: u64,
    /// True if admission control dropped it instead of serving it.
    pub shed: bool,
}

impl TxSpan {
    /// Time spent waiting in the queue.
    pub fn queue_ns(&self) -> u64 {
        self.dequeue_ns.saturating_sub(self.enqueue_ns)
    }

    /// Time spent executing on a worker.
    pub fn service_ns(&self) -> u64 {
        self.complete_ns.saturating_sub(self.dequeue_ns)
    }
}

/// Fixed-capacity overwrite-oldest ring of spans.
pub struct SpanRing {
    buf: Vec<TxSpan>,
    /// Next write position once the ring is full.
    head: usize,
    /// Spans ever pushed (≥ `buf.len()`).
    total: u64,
    capacity: usize,
}

impl SpanRing {
    /// A ring holding the most recent `capacity` spans (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanRing {
            buf: Vec::with_capacity(capacity),
            head: 0,
            total: 0,
            capacity,
        }
    }

    /// Pushes a span, evicting the oldest when full.
    pub fn push(&mut self, span: TxSpan) {
        if self.buf.len() < self.capacity {
            self.buf.push(span);
        } else {
            self.buf[self.head] = span;
            self.head = (self.head + 1) % self.capacity;
        }
        self.total += 1;
    }

    /// Spans ever pushed (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Copies the ring out, oldest first.
    pub fn dump(&self) -> Vec<TxSpan> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// Per-worker span rings plus one extra lane for shed transactions
/// (sheds happen on the *submitting* thread, before any worker exists
/// for them).
pub struct TxTracer {
    rings: Vec<Mutex<SpanRing>>,
    epoch: Instant,
    workers: usize,
}

impl TxTracer {
    /// A tracer for `workers` workers, each ring holding `capacity`
    /// spans, plus the shed lane.
    pub fn new(workers: usize, capacity: usize) -> Self {
        TxTracer {
            rings: (0..workers + 1)
                .map(|_| Mutex::new(SpanRing::new(capacity)))
                .collect(),
            epoch: Instant::now(),
            workers,
        }
    }

    /// Nanoseconds since the tracer was created — the clock all span
    /// timestamps share.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Converts an [`Instant`] the caller already holds onto the tracer's
    /// clock — lets a hot loop that took one timestamp reuse it for span
    /// recording instead of paying a second `Instant::now()`. Instants
    /// from before the tracer's construction map to 0.
    pub fn ns_of(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64
    }

    /// The `worker` field stamped on shed spans.
    pub fn shed_lane(&self) -> u64 {
        self.workers as u64
    }

    /// Records a completed span into its worker's ring.
    pub fn record(&self, worker: usize, span: TxSpan) {
        if let Some(ring) = self.rings.get(worker) {
            ring.lock().unwrap().push(span);
        }
    }

    /// Records a shed span into the shed lane.
    pub fn record_shed(&self, mut span: TxSpan) {
        span.shed = true;
        span.worker = self.shed_lane();
        span.dequeue_ns = span.complete_ns;
        self.rings[self.workers].lock().unwrap().push(span);
    }

    /// Spans ever recorded across all lanes (including evicted).
    pub fn total(&self) -> u64 {
        self.rings.iter().map(|r| r.lock().unwrap().total()).sum()
    }

    /// Dumps every lane's ring, merged and sorted by completion time.
    pub fn dump(&self) -> Vec<TxSpan> {
        let mut spans: Vec<TxSpan> = self
            .rings
            .iter()
            .flat_map(|r| r.lock().unwrap().dump())
            .collect();
        spans.sort_by_key(|s| (s.complete_ns, s.tx_id));
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(tx_id: u64, complete_ns: u64) -> TxSpan {
        TxSpan {
            tx_id,
            enqueue_ns: complete_ns.saturating_sub(100),
            dequeue_ns: complete_ns.saturating_sub(40),
            complete_ns,
            bytes_allocated: 64,
            ..TxSpan::default()
        }
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut r = SpanRing::new(3);
        for i in 0..5 {
            r.push(span(i, i * 10));
        }
        assert_eq!(r.total(), 5);
        let ids: Vec<u64> = r.dump().iter().map(|s| s.tx_id).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest first, capacity respected");
    }

    #[test]
    fn ring_dump_below_capacity_keeps_order() {
        let mut r = SpanRing::new(8);
        r.push(span(7, 70));
        r.push(span(8, 80));
        let ids: Vec<u64> = r.dump().iter().map(|s| s.tx_id).collect();
        assert_eq!(ids, vec![7, 8]);
    }

    #[test]
    fn span_durations_decompose() {
        let s = span(1, 1000);
        assert_eq!(s.queue_ns(), 60);
        assert_eq!(s.service_ns(), 40);
        assert_eq!(s.queue_ns() + s.service_ns(), 100);
    }

    #[test]
    fn tracer_merges_lanes_sorted_by_completion() {
        let t = TxTracer::new(2, 16);
        t.record(0, span(1, 300));
        t.record(1, span(2, 100));
        t.record_shed(span(3, 200));
        let dump = t.dump();
        let ids: Vec<u64> = dump.iter().map(|s| s.tx_id).collect();
        assert_eq!(ids, vec![2, 3, 1]);
        assert_eq!(t.total(), 3);
        let shed = dump.iter().find(|s| s.tx_id == 3).unwrap();
        assert!(shed.shed);
        assert_eq!(shed.worker, t.shed_lane());
        assert_eq!(shed.service_ns(), 0, "shed spans never ran");
    }

    #[test]
    fn out_of_range_worker_is_ignored() {
        let t = TxTracer::new(1, 4);
        t.record(9, span(1, 10));
        assert_eq!(t.total(), 0);
    }
}
