//! Network-tier observation: the shared counter block and metric names.
//!
//! `webmm-net` puts a real TCP tier in front of the serving harness;
//! both of its halves — the connection front-end and the load-generator
//! client — describe their traffic with the same [`NetCounters`] block,
//! so server-side and client-side JSON reports stay field-compatible
//! and reconciliation tests can diff them directly.
//!
//! The front-end additionally mirrors these counters into the
//! [`MetricsRegistry`](crate::MetricsRegistry) under the names in
//! [`net_metric`], which is how connection churn, byte traffic, and
//! protocol errors flow into every live `ObsSample` alongside queue
//! depth and heap occupancy — no new sampler machinery, just more
//! registered metrics.

/// One side's view of network traffic. For the server front-end,
/// `conns_accepted` counts accepted sockets; for the client, established
/// connections (reconnects included).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NetCounters {
    /// Connections brought up.
    pub conns_accepted: u64,
    /// Connections wound down in an orderly way (goodbye, EOF, idle
    /// timeout, drain).
    pub conns_closed: u64,
    /// Connections discarded abnormally: refused at the backlog cap,
    /// killed by an I/O error, or thrown away mid-drain.
    pub conns_dropped: u64,
    /// Payload bytes read off sockets.
    pub bytes_in: u64,
    /// Payload bytes written to sockets.
    pub bytes_out: u64,
    /// Whole frames decoded.
    pub frames_in: u64,
    /// Whole frames encoded and sent.
    pub frames_out: u64,
    /// Protocol violations observed (malformed frames, unexpected frame
    /// kinds, response/request id mismatches).
    pub protocol_errors: u64,
}

impl NetCounters {
    /// Folds `other` into `self` (summing every field) — how per-handler
    /// tallies merge into one report.
    pub fn merge(&mut self, other: &NetCounters) {
        self.conns_accepted += other.conns_accepted;
        self.conns_closed += other.conns_closed;
        self.conns_dropped += other.conns_dropped;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.protocol_errors += other.protocol_errors;
    }
}

/// Registry metric names published by the network front-end. Centralized
/// here (like the server's worker metrics) so the front-end, dashboards,
/// and tests agree on spelling.
pub mod net_metric {
    /// Connections currently being served (gauge: each handler sets its
    /// shard to the connections it holds; shards sum on read).
    pub const CONNS_OPEN: &str = "net_conns_open";
    /// Connections accepted since startup (counter).
    pub const CONNS_ACCEPTED: &str = "net_conns_accepted";
    /// Connections dropped abnormally (counter).
    pub const CONNS_DROPPED: &str = "net_conns_dropped";
    /// Bytes read off sockets (counter).
    pub const BYTES_IN: &str = "net_bytes_in";
    /// Bytes written to sockets (counter).
    pub const BYTES_OUT: &str = "net_bytes_out";
    /// Submit requests handled (counter).
    pub const REQUESTS: &str = "net_requests";
    /// Protocol violations (counter).
    pub const PROTOCOL_ERRORS: &str = "net_protocol_errors";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_field() {
        let mut a = NetCounters {
            conns_accepted: 1,
            conns_closed: 2,
            conns_dropped: 3,
            bytes_in: 4,
            bytes_out: 5,
            frames_in: 6,
            frames_out: 7,
            protocol_errors: 8,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(
            a,
            NetCounters {
                conns_accepted: 2,
                conns_closed: 4,
                conns_dropped: 6,
                bytes_in: 8,
                bytes_out: 10,
                frames_in: 12,
                frames_out: 14,
                protocol_errors: 16,
            }
        );
    }
}
