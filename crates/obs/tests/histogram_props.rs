//! Property tests for the latency histogram: merge preservation and
//! quantile monotonicity, over randomly generated observation sets.

use proptest::prelude::*;
use webmm_obs::LatencyHistogram;

fn build(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Observation values spanning the full dynamic range the harness sees:
/// sub-ns zeros through multi-second latencies.
fn latency() -> impl Strategy<Value = u64> {
    prop_oneof![
        1 => Just(0u64),
        4 => 0u64..1000,                       // sub-microsecond
        4 => 1_000u64..10_000_000,             // µs .. 10 ms
        2 => 10_000_000u64..10_000_000_000,    // 10 ms .. 10 s
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// `merge` preserves count, max, min, and mean exactly, and produces
    /// the same histogram as recording everything into one.
    #[test]
    fn merge_preserves_count_max_and_summary(
        xs in collection::vec(latency(), 0..200),
        ys in collection::vec(latency(), 0..200),
    ) {
        let mut merged = build(&xs);
        merged.merge(&build(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        let whole = build(&all);

        prop_assert_eq!(merged.count(), (xs.len() + ys.len()) as u64);
        prop_assert_eq!(merged.max_ns(), all.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(merged.min_ns(), whole.min_ns());
        prop_assert_eq!(merged.mean_ns(), whole.mean_ns());
        prop_assert_eq!(merged.summary(), whole.summary());
    }

    /// Quantiles are monotone non-decreasing in `q` and never leave the
    /// observed `[min, max]` range.
    #[test]
    fn quantiles_monotone_in_q(xs in collection::vec(latency(), 1..300)) {
        let h = build(&xs);
        let qs = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0];
        let mut prev = 0u64;
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile({q}) = {v} < quantile(prev) = {prev}");
            prop_assert!(v >= h.min_ns(), "q={q}: {v} below min {}", h.min_ns());
            prop_assert!(v <= h.max_ns(), "q={q}: {v} above max {}", h.max_ns());
            prev = v;
        }
        prop_assert_eq!(h.quantile(0.0), h.min_ns());
        prop_assert_eq!(h.quantile(1.0), h.max_ns());
    }

    /// The empty histogram answers 0 for every quantile — no panics, no
    /// sentinels leaking out.
    #[test]
    fn empty_histogram_quantiles_are_zero(q in 0.0f64..1.0) {
        let h = LatencyHistogram::new();
        prop_assert_eq!(h.quantile(q), 0);
        prop_assert_eq!(h.min_ns(), 0);
        prop_assert_eq!(h.max_ns(), 0);
    }
}
