//! Transaction operation streams.
//!
//! A [`TxStream`] turns a [`WorkloadSpec`] into an endless, deterministic
//! sequence of [`WorkOp`]s — the exact malloc/free/realloc/touch/compute
//! interleaving a PHP or Ruby runtime would drive into its allocator while
//! serving transactions. The lifetime model gives most objects short,
//! LIFO-biased lives (freed per-object mid-transaction) and leaves the
//! remainder to the transaction-end bulk free, matching Table 3's
//! free/malloc ratios; sizes come from the log-normal
//! [`SizeSampler`](crate::SizeSampler).

use crate::objtable::ObjectTable;
use crate::sizes::SizeSampler;
use crate::spec::WorkloadSpec;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};

/// One operation of a transaction stream.
///
/// Object identity is by `id` (assigned at `Malloc`); the runtime maps ids
/// to allocator addresses, so streams are independent of any particular
/// allocator's address choices.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, serde::Deserialize)]
pub enum WorkOp {
    /// Allocate `size` bytes for object `id`.
    Malloc {
        /// Object identity.
        id: u64,
        /// Requested bytes.
        size: u64,
    },
    /// Per-object free of object `id`.
    Free {
        /// Object identity.
        id: u64,
    },
    /// Resize object `id` to `new_size` bytes.
    Realloc {
        /// Object identity.
        id: u64,
        /// New requested size.
        new_size: u64,
    },
    /// Application touch of object `id` (`write` on initialization).
    Touch {
        /// Object identity.
        id: u64,
        /// Store vs. load.
        write: bool,
    },
    /// Pure application compute.
    Compute {
        /// Instructions to execute.
        instr: u64,
    },
    /// Touch of the process's static data area.
    StaticTouch {
        /// Byte offset into the static area.
        offset: u64,
        /// Bytes touched.
        len: u64,
    },
    /// Transaction boundary: the PHP runtime calls `freeAll` here.
    EndTx,
}

/// Running totals over generated operations (for validating the stream
/// against Table 3).
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize)]
pub struct StreamStats {
    /// `Malloc` ops generated.
    pub mallocs: u64,
    /// `Free` ops generated.
    pub frees: u64,
    /// `Realloc` ops generated.
    pub reallocs: u64,
    /// Transactions completed.
    pub transactions: u64,
    /// Total bytes requested by `Malloc` ops.
    pub bytes_requested: u64,
}

impl StreamStats {
    /// Mean allocation size over the generated stream.
    pub fn mean_alloc_bytes(&self) -> f64 {
        if self.mallocs == 0 {
            return 0.0;
        }
        self.bytes_requested as f64 / self.mallocs as f64
    }
}

/// Deterministic generator of transaction operations for one process.
///
/// # Examples
///
/// ```
/// use webmm_workload::{mediawiki_read, TxStream, WorkOp};
/// let mut stream = TxStream::new(mediawiki_read(), 64, 42);
/// let ops: Vec<WorkOp> = (0..10).map(|_| stream.next_op()).collect();
/// assert!(matches!(ops[0], WorkOp::Compute { .. } | WorkOp::StaticTouch { .. }));
/// ```
#[derive(Debug)]
pub struct TxStream {
    spec: WorkloadSpec,
    rng: ChaCha8Rng,
    sizes: SizeSampler,
    /// Mallocs per scaled transaction.
    tx_ticks: u64,
    /// Reallocs are issued every this many ticks.
    realloc_every: u64,
    next_id: u64,
    tick: u64,
    ticks_into_tx: u64,
    /// tick → objects dying there.
    deaths: BTreeMap<u64, Vec<u64>>,
    /// tick → objects touched (read) there.
    touches: BTreeMap<u64, Vec<u64>>,
    /// Live objects and their current sizes. Ids come from the monotonic
    /// `next_id` counter, so the dense generation-stamped table replaces
    /// the original `HashMap`: no hashing per op, O(1) clear at `EndTx`.
    live: ObjectTable<u64>,
    /// Insertion-ordered ids for O(1)-ish random picks.
    live_order: Vec<u64>,
    queue: VecDeque<WorkOp>,
    stats: StreamStats,
}

impl TxStream {
    /// Creates a stream for `spec`, with per-transaction operation counts
    /// divided by `scale` (1 = the paper's full transaction sizes), seeded
    /// deterministically by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero or leaves fewer than 16 mallocs per
    /// transaction.
    pub fn new(spec: WorkloadSpec, scale: u32, seed: u64) -> Self {
        assert!(scale > 0, "scale must be nonzero");
        let tx_ticks = spec.mallocs_per_tx / u64::from(scale);
        assert!(
            tx_ticks >= 16,
            "scale {scale} leaves too few mallocs per transaction"
        );
        let reallocs = (spec.reallocs_per_tx / u64::from(scale)).max(1);
        let sizes = SizeSampler::new(spec.mean_alloc_bytes);
        TxStream {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x5eed_c0de),
            sizes,
            tx_ticks,
            realloc_every: (tx_ticks / reallocs).max(1),
            next_id: 1,
            tick: 0,
            ticks_into_tx: 0,
            deaths: BTreeMap::new(),
            touches: BTreeMap::new(),
            // Live ids span at most ~6 transactions (cross-tx lifetimes
            // cap at 4 whole transactions plus an in-tx remainder), so
            // 8× the per-tx tick count avoids ever growing.
            live: ObjectTable::with_capacity((tx_ticks * 8) as usize),
            live_order: Vec::new(),
            queue: VecDeque::new(),
            stats: StreamStats::default(),
            spec,
        }
    }

    /// The workload specification driving this stream.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Mallocs per (scaled) transaction.
    pub fn tx_ticks(&self) -> u64 {
        self.tx_ticks
    }

    /// Statistics over everything generated so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Produces the next operation. The stream is infinite.
    pub fn next_op(&mut self) -> WorkOp {
        while self.queue.is_empty() {
            self.generate_tick();
        }
        self.queue.pop_front().expect("queue refilled")
    }

    fn pick_live(&mut self) -> Option<u64> {
        while !self.live_order.is_empty() {
            let idx = self.rng.gen_range(0..self.live_order.len());
            let id = self.live_order[idx];
            if self.live.contains(id) {
                return Some(id);
            }
            // Lazily drop stale entries (objects freed since insertion).
            self.live_order.swap_remove(idx);
        }
        None
    }

    fn emit_free(&mut self, id: u64) {
        if self.live.remove(id).is_some() {
            // Objects are typically read one last time right before dying
            // (string consumed, array iterated, zval refcount dropped).
            self.queue.push_back(WorkOp::Touch { id, write: false });
            self.queue.push_back(WorkOp::Free { id });
            self.stats.frees += 1;
        }
    }

    fn generate_tick(&mut self) {
        // 1. Deaths and touches that fall due at this tick. Done before the
        //    transaction-boundary check so lifetimes clamped to the final
        //    tick still emit their per-object free before freeAll.
        let due_deaths = self
            .deaths
            .range(..=self.tick)
            .map(|(&t, _)| t)
            .collect::<Vec<_>>();
        for t in due_deaths {
            if let Some(ids) = self.deaths.remove(&t) {
                for id in ids {
                    self.emit_free(id);
                }
            }
        }
        let due_touches = self
            .touches
            .range(..=self.tick)
            .map(|(&t, _)| t)
            .collect::<Vec<_>>();
        for t in due_touches {
            if let Some(ids) = self.touches.remove(&t) {
                for id in ids {
                    if self.live.contains(id) {
                        self.queue.push_back(WorkOp::Touch { id, write: false });
                    }
                }
            }
        }

        // Transaction boundary.
        if self.ticks_into_tx == self.tx_ticks {
            self.queue.push_back(WorkOp::EndTx);
            self.ticks_into_tx = 0;
            self.stats.transactions += 1;
            if self.spec.bulk_free_at_end {
                // freeAll kills everything: drop all pending lifetimes.
                // The live table's clear is a generation bump — O(1).
                self.deaths.clear();
                self.touches.clear();
                self.live.clear();
                self.live_order.clear();
            }
            return;
        }

        // 2. Application work: compute plus a static-data touch.
        self.queue.push_back(WorkOp::Compute {
            instr: self.spec.app_instr_per_malloc,
        });
        let off = self
            .rng
            .gen_range(0..self.spec.static_bytes.saturating_sub(256).max(1));
        self.queue.push_back(WorkOp::StaticTouch {
            offset: off,
            len: 64,
        });

        // 3. The allocation of this tick.
        let id = self.next_id;
        self.next_id += 1;
        let size = self.sizes.sample(&mut self.rng);
        self.queue.push_back(WorkOp::Malloc { id, size });
        self.queue.push_back(WorkOp::Touch { id, write: true });
        self.live.insert(id, size);
        self.live_order.push(id);
        self.stats.mallocs += 1;
        self.stats.bytes_requested += size;

        // 4. Lifetime scheduling.
        let p_free = self.spec.per_object_free_ratio();
        if self.rng.gen_bool(p_free.min(1.0)) {
            let gap = self.draw_gap();
            let death = self.tick + gap;
            self.deaths.entry(death).or_default().push(id);
            // Mid-life read touches.
            for k in 1..=self.spec.touches_per_object as u64 {
                let at = self.tick + (gap * k) / (u64::from(self.spec.touches_per_object) + 1);
                if at > self.tick {
                    self.touches.entry(at).or_default().push(id);
                }
            }
        } else if self.spec.bulk_free_at_end {
            // Survivor: lives to freeAll; touch it once mid-transaction.
            let at = self.tick + self.rng.gen_range(1..=self.tx_ticks.min(256));
            self.touches.entry(at).or_default().push(id);
        }

        // 5. Occasional realloc (growing a string/array).
        if self.ticks_into_tx % self.realloc_every == self.realloc_every - 1 {
            if let Some(rid) = self.pick_live() {
                let old = self.live.get(rid).expect("picked id is live");
                let new_size = (old + old / 2 + 8).min(32 * 1024);
                self.live.insert(rid, new_size);
                self.queue.push_back(WorkOp::Realloc { id: rid, new_size });
                self.stats.reallocs += 1;
            }
        }

        self.tick += 1;
        self.ticks_into_tx += 1;
    }

    /// Draws an object lifetime in allocation ticks: LIFO-biased
    /// (log-uniform) short lives, clamped to die before the transaction
    /// ends for bulk-freeing runtimes; a configured fraction crosses
    /// transaction boundaries otherwise.
    fn draw_gap(&mut self) -> u64 {
        if !self.spec.bulk_free_at_end && self.rng.gen_bool(self.spec.cross_tx_fraction) {
            // Ruby: survives 1-4 transactions past this one.
            let txs = self.rng.gen_range(1u64..=4);
            return txs * self.tx_ticks + self.rng.gen_range(0..self.tx_ticks);
        }
        let max_gap = (self.tx_ticks / 2).clamp(2, 1024);
        let log_max = (max_gap as f64).ln();
        let gap = self.rng.gen_range(0.0..log_max).exp() as u64;
        let gap = gap.max(1);
        if self.spec.bulk_free_at_end {
            // Die before freeAll: remaining ticks in this transaction.
            let remaining = self.tx_ticks - self.ticks_into_tx;
            gap.min(remaining.max(1))
        } else {
            gap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{mediawiki_read, phpbb, rails, specweb};

    /// Drains ops until `n` transactions complete.
    fn run_transactions(stream: &mut TxStream, n: u64) -> Vec<WorkOp> {
        let mut ops = Vec::new();
        let mut done = 0;
        while done < n {
            let op = stream.next_op();
            if op == WorkOp::EndTx {
                done += 1;
            }
            ops.push(op);
        }
        ops
    }

    #[test]
    fn stream_is_deterministic() {
        let mut a = TxStream::new(phpbb(), 64, 123);
        let mut b = TxStream::new(phpbb(), 64, 123);
        for _ in 0..5000 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = TxStream::new(phpbb(), 64, 124);
        let differs = (0..5000).any(|_| a.next_op() != c.next_op());
        assert!(differs, "different seeds must differ");
    }

    #[test]
    fn counts_track_table3() {
        let spec = mediawiki_read();
        let scale = 16;
        let mut s = TxStream::new(spec.clone(), scale, 7);
        run_transactions(&mut s, 8);
        let st = s.stats();
        let per_tx_mallocs = st.mallocs as f64 / st.transactions as f64;
        let target_mallocs = (spec.mallocs_per_tx / scale as u64) as f64;
        assert!(
            (per_tx_mallocs - target_mallocs).abs() / target_mallocs < 0.01,
            "mallocs/tx {per_tx_mallocs} vs {target_mallocs}"
        );
        let free_ratio = st.frees as f64 / st.mallocs as f64;
        let target_ratio = spec.per_object_free_ratio();
        assert!(
            (free_ratio - target_ratio).abs() < 0.05,
            "free ratio {free_ratio} vs {target_ratio}"
        );
        let mean = st.mean_alloc_bytes();
        assert!(
            (mean - spec.mean_alloc_bytes).abs() / spec.mean_alloc_bytes < 0.10,
            "mean size {mean} vs {}",
            spec.mean_alloc_bytes
        );
        let reallocs_per_tx = st.reallocs as f64 / st.transactions as f64;
        let target_reallocs = (spec.reallocs_per_tx / scale as u64) as f64;
        assert!(
            (reallocs_per_tx - target_reallocs).abs() / target_reallocs < 0.15,
            "reallocs/tx {reallocs_per_tx} vs {target_reallocs}"
        );
    }

    #[test]
    fn no_double_free_and_free_only_live() {
        let mut s = TxStream::new(phpbb(), 32, 3);
        let ops = run_transactions(&mut s, 6);
        let mut live = std::collections::HashSet::new();
        for op in ops {
            match op {
                WorkOp::Malloc { id, .. } => assert!(live.insert(id), "id reused"),
                WorkOp::Free { id } => assert!(live.remove(&id), "free of dead object"),
                WorkOp::Realloc { id, .. } | WorkOp::Touch { id, .. } => {
                    assert!(live.contains(&id), "op on dead object {id}");
                }
                WorkOp::EndTx => live.clear(), // freeAll
                _ => {}
            }
        }
    }

    #[test]
    fn php_streams_free_everything_before_end_tx_or_not_at_all() {
        // With bulk free, every Free must target an object of the current
        // transaction (checked implicitly by no_double_free); moreover,
        // after EndTx the stream starts from zero live objects.
        let mut s = TxStream::new(phpbb(), 32, 11);
        run_transactions(&mut s, 3);
        assert!(s.live.is_empty() || !s.spec.bulk_free_at_end);
    }

    #[test]
    fn rails_lifetimes_cross_transactions() {
        let mut s = TxStream::new(rails(), 64, 5);
        let ops = run_transactions(&mut s, 8);
        // Find an object allocated in tx k and freed in tx > k.
        let mut tx = 0u64;
        let mut born = std::collections::HashMap::new();
        let mut crossed = 0u64;
        for op in ops {
            match op {
                WorkOp::EndTx => tx += 1,
                WorkOp::Malloc { id, .. } => {
                    born.insert(id, tx);
                }
                WorkOp::Free { id } if born.get(&id).is_some_and(|&b| b < tx) => {
                    crossed += 1;
                }
                _ => {}
            }
        }
        assert!(
            crossed > 0,
            "Rails objects must cross transaction boundaries"
        );
    }

    #[test]
    fn lifetimes_are_short_and_lifo_biased() {
        let mut s = TxStream::new(mediawiki_read(), 16, 9);
        let ops = run_transactions(&mut s, 2);
        let mut birth_tick = std::collections::HashMap::new();
        let mut mallocs_seen = 0u64;
        let mut lifetimes = Vec::new();
        for op in &ops {
            match op {
                WorkOp::Malloc { id, .. } => {
                    mallocs_seen += 1;
                    birth_tick.insert(*id, mallocs_seen);
                }
                WorkOp::Free { id } => {
                    if let Some(b) = birth_tick.get(id) {
                        lifetimes.push(mallocs_seen - b);
                    }
                }
                _ => {}
            }
        }
        lifetimes.sort_unstable();
        let median = lifetimes[lifetimes.len() / 2];
        assert!(
            median <= 64,
            "median lifetime {median} should be short (LIFO bias)"
        );
    }

    #[test]
    fn specweb_structure() {
        // SPECweb has big compute per malloc and bigger objects.
        let mut s = TxStream::new(specweb(), 16, 1);
        let ops = run_transactions(&mut s, 4);
        let computes: u64 = ops
            .iter()
            .map(|op| {
                if let WorkOp::Compute { instr } = op {
                    *instr
                } else {
                    0
                }
            })
            .sum();
        let mallocs = ops
            .iter()
            .filter(|o| matches!(o, WorkOp::Malloc { .. }))
            .count() as u64;
        assert!(computes / mallocs >= 10_000);
        assert!(s.stats().mean_alloc_bytes() > 120.0);
    }

    #[test]
    #[should_panic(expected = "too few mallocs")]
    fn absurd_scale_rejected() {
        TxStream::new(specweb(), 1000, 0);
    }
}
