//! Dense, generation-stamped object tables.
//!
//! The transaction hot path — the worker mapping workload object ids to
//! heap addresses, and [`TxStream`](crate::TxStream) tracking which
//! objects are still live — originally used `HashMap<u64, _>`. That pays
//! a SipHash round and a probe sequence on *every* malloc, free, realloc
//! and touch, and `clear()` walks every bucket at every transaction
//! boundary. But workload ids are not adversarial: they are handed out by
//! a monotonic counter, so the ids live at any instant occupy a narrow,
//! dense band of the id space. [`ObjectTable`] exploits that:
//!
//! * slots live in a power-of-two ring indexed by `id & mask` — no
//!   hashing, one load to find the slot;
//! * each slot is stamped with the id it holds and the table's current
//!   **generation**; a lookup is valid only if both match, so stale slots
//!   need never be wiped;
//! * [`ObjectTable::clear`] bumps the generation instead of touching any
//!   slot — the per-transaction `freeAll` analogue is O(1);
//! * orphan detection stays exact: an id the table never admitted (or
//!   admitted in a previous generation) misses on the id/generation
//!   check exactly where the `HashMap` would miss on absence.
//!
//! Two live ids that collide in the ring (possible only when the live id
//! *span* exceeds the capacity — monotonic ids in a contiguous band never
//! collide below that) trigger a grow-and-rehash, so correctness never
//! depends on the caller sizing the table right; sizing only buys
//! avoiding the one-time growth.

/// A slot of the ring: the id it holds, the generation it was written
/// in, and the caller's payload.
#[derive(Copy, Clone, Debug)]
struct Slot<T> {
    id: u64,
    /// Slot is live iff this equals the table's current generation.
    /// 0 is the "never written / removed" sentinel; table generations
    /// start at 1 and only grow.
    gen: u64,
    value: T,
}

/// Growth cap: a live id span this sparse means ids are not coming from a
/// monotonic workload counter, and the dense representation is the wrong
/// tool — fail loudly instead of eating the address space.
const MAX_CAPACITY: usize = 1 << 26;

/// Dense id → value map for monotonically allocated object ids, with O(1)
/// generation-bump clearing.
///
/// # Examples
///
/// ```
/// use webmm_workload::ObjectTable;
/// let mut t: ObjectTable<u64> = ObjectTable::with_capacity(64);
/// t.insert(7, 700);
/// assert_eq!(t.get(7), Some(700));
/// t.clear(); // O(1): generation bump, no slot is touched
/// assert_eq!(t.get(7), None);
/// assert_eq!(t.remove(7), None, "cleared ids are gone, not orphaned");
/// ```
#[derive(Debug)]
pub struct ObjectTable<T> {
    slots: Vec<Slot<T>>,
    mask: u64,
    gen: u64,
    live: usize,
}

impl<T: Copy + Default> ObjectTable<T> {
    /// Creates a table able to hold a live id span of at least `capacity`
    /// without growing (rounded up to a power of two, minimum 16).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(16).next_power_of_two();
        ObjectTable {
            slots: vec![Slot::default(); cap],
            mask: cap as u64 - 1,
            gen: 1,
            live: 0,
        }
    }

    /// Current slot count (the live id span the table holds without
    /// growing).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no entry is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts or replaces `id`, returning the previous value if `id` was
    /// live. Grows (rehashing live entries) if a *different* live id
    /// occupies the slot.
    #[inline]
    pub fn insert(&mut self, id: u64, value: T) -> Option<T> {
        loop {
            let slot = &mut self.slots[(id & self.mask) as usize];
            if slot.gen != self.gen {
                *slot = Slot {
                    id,
                    gen: self.gen,
                    value,
                };
                self.live += 1;
                return None;
            }
            if slot.id == id {
                return Some(std::mem::replace(&mut slot.value, value));
            }
            self.grow();
        }
    }

    /// The value stored for `id`, if live.
    #[inline]
    pub fn get(&self, id: u64) -> Option<T> {
        let slot = &self.slots[(id & self.mask) as usize];
        (slot.gen == self.gen && slot.id == id).then_some(slot.value)
    }

    /// `true` if `id` is live.
    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        let slot = &self.slots[(id & self.mask) as usize];
        slot.gen == self.gen && slot.id == id
    }

    /// Removes `id`, returning its value if it was live.
    #[inline]
    pub fn remove(&mut self, id: u64) -> Option<T> {
        let gen = self.gen;
        let slot = &mut self.slots[(id & self.mask) as usize];
        if slot.gen == gen && slot.id == id {
            slot.gen = 0;
            self.live -= 1;
            Some(slot.value)
        } else {
            None
        }
    }

    /// Empties the table in O(1) by bumping the generation: every live
    /// slot silently expires. The `freeAll` analogue.
    #[inline]
    pub fn clear(&mut self) {
        self.gen += 1;
        self.live = 0;
    }

    /// Calls `f(id, value)` for every live entry and empties the table.
    /// Used for the survivor sweep of allocators without bulk free. Walks
    /// the whole ring — O(capacity), which is proportional to the
    /// transaction's own op count, and only taken on the no-`freeAll`
    /// path.
    pub fn drain(&mut self, mut f: impl FnMut(u64, T)) {
        if self.live > 0 {
            let gen = self.gen;
            for slot in &mut self.slots {
                if slot.gen == gen {
                    slot.gen = 0;
                    f(slot.id, slot.value);
                }
            }
        }
        self.clear();
    }

    /// Doubles capacity (repeatedly, if the live set still collides) and
    /// rehashes live entries.
    ///
    /// # Panics
    ///
    /// Panics if the live id span needs more than `MAX_CAPACITY` slots —
    /// ids that sparse are not from a monotonic workload counter and a
    /// dense table is the wrong structure for them.
    #[cold]
    fn grow(&mut self) {
        let mut cap = self.slots.len() * 2;
        'retry: loop {
            assert!(
                cap <= MAX_CAPACITY,
                "ObjectTable: live id span too sparse for a dense table \
                 (needs > {MAX_CAPACITY} slots for {} live ids)",
                self.live
            );
            let mask = cap as u64 - 1;
            let mut slots: Vec<Slot<T>> = vec![Slot::default(); cap];
            for slot in &self.slots {
                if slot.gen == self.gen {
                    let dst = &mut slots[(slot.id & mask) as usize];
                    if dst.gen == self.gen {
                        cap *= 2;
                        continue 'retry;
                    }
                    *dst = *slot;
                }
            }
            self.slots = slots;
            self.mask = mask;
            return;
        }
    }
}

impl<T: Copy + Default> Default for Slot<T> {
    fn default() -> Self {
        Slot {
            id: 0,
            gen: 0,
            value: T::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t: ObjectTable<u64> = ObjectTable::with_capacity(32);
        assert_eq!(t.insert(3, 30), None);
        assert_eq!(t.insert(4, 40), None);
        assert_eq!(t.get(3), Some(30));
        assert_eq!(t.len(), 2);
        assert_eq!(t.insert(3, 31), Some(30), "replace returns old value");
        assert_eq!(t.len(), 2, "replace is not a second entry");
        assert_eq!(t.remove(3), Some(31));
        assert_eq!(t.remove(3), None, "double remove misses");
        assert_eq!(t.get(3), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clear_is_a_generation_bump() {
        let mut t: ObjectTable<u64> = ObjectTable::with_capacity(16);
        for id in 0..10 {
            t.insert(id, id * 10);
        }
        t.clear();
        assert!(t.is_empty());
        for id in 0..10 {
            assert_eq!(t.get(id), None, "cleared id {id} must miss");
            assert_eq!(t.remove(id), None);
        }
        // Re-inserting the same slot indices in the new generation works.
        t.insert(2, 99);
        assert_eq!(t.get(2), Some(99));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn monotonic_ids_never_grow_below_capacity_span() {
        let mut t: ObjectTable<u64> = ObjectTable::with_capacity(128);
        // Many transactions of 100 dense ids each: the band slides up
        // forever but the span stays under the capacity.
        let mut id = 0u64;
        for _ in 0..1000 {
            for _ in 0..100 {
                t.insert(id, id);
                id += 1;
            }
            t.clear();
        }
        assert_eq!(t.capacity(), 128, "sliding dense band must not grow");
    }

    #[test]
    fn colliding_live_ids_force_growth_not_corruption() {
        let mut t: ObjectTable<u64> = ObjectTable::with_capacity(16);
        // 5 and 5+16 collide at capacity 16.
        t.insert(5, 50);
        t.insert(5 + 16, 60);
        assert_eq!(t.get(5), Some(50));
        assert_eq!(t.get(5 + 16), Some(60));
        assert!(t.capacity() > 16);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn drain_yields_every_live_entry_once() {
        let mut t: ObjectTable<u64> = ObjectTable::with_capacity(32);
        for id in [1u64, 7, 9, 20] {
            t.insert(id, id + 100);
        }
        t.remove(9);
        let mut seen = Vec::new();
        t.drain(|id, v| seen.push((id, v)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, 101), (7, 107), (20, 120)]);
        assert!(t.is_empty());
        let mut after = 0;
        t.drain(|_, _| after += 1);
        assert_eq!(after, 0, "second drain yields nothing");
    }

    #[test]
    fn stale_generation_slot_is_reusable() {
        let mut t: ObjectTable<u64> = ObjectTable::with_capacity(16);
        t.insert(3, 1);
        t.clear();
        // id 19 maps to the slot id 3 occupied in the old generation.
        t.insert(19, 2);
        assert_eq!(t.get(19), Some(2));
        assert_eq!(t.get(3), None);
        assert_eq!(t.capacity(), 16, "dead slot reuse must not grow");
    }
}
