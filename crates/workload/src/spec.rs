//! Workload specifications: the paper's Table 3, as data.
//!
//! Table 3 reports, per Web transaction, the average numbers of `malloc`
//! (including `calloc`), per-object `free`, and `realloc` calls, and the
//! average allocation size. Those four numbers — plus a per-workload
//! application-compute weight — fully parameterize our synthetic
//! transaction streams: the allocator under study only ever sees the
//! malloc/free/realloc/touch sequence, so reproducing the sequence
//! statistics reproduces the allocator-visible behaviour of each PHP
//! application without porting PHP.

use serde::Serialize;

/// Statistical description of one workload's transactions.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct WorkloadSpec {
    /// Display name, matching the paper's tables.
    pub name: &'static str,
    /// Average `malloc` (+`calloc`) calls per transaction (Table 3).
    pub mallocs_per_tx: u64,
    /// Average per-object `free` calls per transaction (Table 3).
    pub frees_per_tx: u64,
    /// Average `realloc` calls per transaction (Table 3).
    pub reallocs_per_tx: u64,
    /// Average allocation size in bytes (Table 3).
    pub mean_alloc_bytes: f64,
    /// Application instructions executed per allocation (interpreter work,
    /// database access, templating). Calibrated so that memory management
    /// consumes a Figure 6-like share of CPU time under the default
    /// allocator.
    pub app_instr_per_malloc: u64,
    /// Read touches of a live object over its lifetime (beyond the
    /// initializing write).
    pub touches_per_object: u32,
    /// Bytes of per-process static data (interpreter tables, opcode
    /// caches, database result buffers) touched alongside the heap.
    pub static_bytes: u64,
    /// Whether the runtime bulk-frees at transaction end (PHP: yes;
    /// Ruby: no — §4.4).
    pub bulk_free_at_end: bool,
    /// Fraction of per-object-freed objects whose lifetime crosses into
    /// later transactions (only meaningful without bulk free).
    pub cross_tx_fraction: f64,
}

impl WorkloadSpec {
    /// Fraction of allocated objects freed per-object (the paper: "more
    /// than 80% of the total objects are deallocated by per-object free").
    pub fn per_object_free_ratio(&self) -> f64 {
        self.frees_per_tx as f64 / self.mallocs_per_tx as f64
    }
}

/// MediaWiki, read-only scenario: reading randomly selected articles from
/// a 1,000-article Wikipedia import, with memcached.
pub fn mediawiki_read() -> WorkloadSpec {
    WorkloadSpec {
        name: "MediaWiki (read only)",
        mallocs_per_tx: 151_770,
        frees_per_tx: 129_141,
        reallocs_per_tx: 6_147,
        mean_alloc_bytes: 62.1,
        app_instr_per_malloc: 420,
        touches_per_object: 2,
        static_bytes: 2 << 20,
        bulk_free_at_end: true,
        cross_tx_fraction: 0.0,
    }
}

/// MediaWiki, read/write scenario: 20% of transactions edit the article.
pub fn mediawiki_rw() -> WorkloadSpec {
    WorkloadSpec {
        name: "MediaWiki (read/write)",
        mallocs_per_tx: 404_983,
        frees_per_tx: 354_775,
        reallocs_per_tx: 22_371,
        mean_alloc_bytes: 66.7,
        app_instr_per_malloc: 420,
        touches_per_object: 2,
        static_bytes: 2 << 20,
        bulk_free_at_end: true,
        cross_tx_fraction: 0.0,
    }
}

/// SugarCRM: AJAX-style customer lookups against 512 user accounts.
pub fn sugarcrm() -> WorkloadSpec {
    WorkloadSpec {
        name: "SugarCRM",
        mallocs_per_tx: 276_853,
        frees_per_tx: 225_800,
        reallocs_per_tx: 3_120,
        mean_alloc_bytes: 49.3,
        app_instr_per_malloc: 380,
        touches_per_object: 2,
        static_bytes: 2 << 20,
        bulk_free_at_end: true,
        cross_tx_fraction: 0.0,
    }
}

/// eZ Publish: reading randomly selected articles of a 1,000-post blog.
pub fn ez_publish() -> WorkloadSpec {
    WorkloadSpec {
        name: "eZ Publish",
        mallocs_per_tx: 123_019,
        frees_per_tx: 109_856,
        reallocs_per_tx: 4_646,
        mean_alloc_bytes: 78.6,
        app_instr_per_malloc: 430,
        touches_per_object: 2,
        static_bytes: 2 << 20,
        bulk_free_at_end: true,
        cross_tx_fraction: 0.0,
    }
}

/// phpBB: reading randomly selected posts of a 1,000-post forum.
pub fn phpbb() -> WorkloadSpec {
    WorkloadSpec {
        name: "phpBB",
        mallocs_per_tx: 46_965,
        frees_per_tx: 43_267,
        reallocs_per_tx: 1_003,
        mean_alloc_bytes: 56.3,
        app_instr_per_malloc: 440,
        touches_per_object: 2,
        static_bytes: 1 << 20,
        bulk_free_at_end: true,
        cross_tx_fraction: 0.0,
    }
}

/// CakePHP: a telephone-directory application on the framework (read a
/// table, select a record, update it).
pub fn cakephp() -> WorkloadSpec {
    WorkloadSpec {
        name: "CakePHP",
        mallocs_per_tx: 99_195,
        frees_per_tx: 82_645,
        reallocs_per_tx: 3_574,
        mean_alloc_bytes: 68.6,
        app_instr_per_malloc: 430,
        touches_per_object: 2,
        static_bytes: 1 << 20,
        bulk_free_at_end: true,
        cross_tx_fraction: 0.0,
    }
}

/// SPECweb2005, eCommerce scenario: few allocator calls, larger objects,
/// and a "large amount of CPU time consumed in static file serving" — the
/// workload the paper found least sensitive to the allocator.
pub fn specweb() -> WorkloadSpec {
    WorkloadSpec {
        name: "SPECweb2005",
        mallocs_per_tx: 3_277,
        frees_per_tx: 2_383,
        reallocs_per_tx: 106,
        mean_alloc_bytes: 175.6,
        // Static serving dominates: ~25x the per-malloc application work.
        app_instr_per_malloc: 11_000,
        touches_per_object: 3,
        static_bytes: 4 << 20,
        bulk_free_at_end: true,
        cross_tx_fraction: 0.0,
    }
}

/// Ruby on Rails telephone-directory application (§4.4): CakePHP-like
/// allocation behaviour, but the Ruby runtime never calls `freeAll` —
/// every object is freed per-object (by the Ruby GC's sweep), a sliver of
/// them surviving across transactions, and the heap is only truly cleaned
/// by restarting the process.
pub fn rails() -> WorkloadSpec {
    WorkloadSpec {
        name: "Ruby on Rails",
        mallocs_per_tx: 99_195,
        frees_per_tx: 97_211, // ~98%: everything is eventually swept
        reallocs_per_tx: 3_574,
        mean_alloc_bytes: 68.6,
        app_instr_per_malloc: 430,
        touches_per_object: 2,
        static_bytes: 1 << 20,
        bulk_free_at_end: false,
        cross_tx_fraction: 0.06,
    }
}

/// The seven PHP workloads of the main study, in the paper's order
/// (Tables 2-4, Figures 5-9).
pub fn php_workloads() -> Vec<WorkloadSpec> {
    vec![
        mediawiki_read(),
        mediawiki_rw(),
        sugarcrm(),
        ez_publish(),
        phpbb(),
        cakephp(),
        specweb(),
    ]
}

/// Looks a workload up by its paper name (exact match).
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    php_workloads()
        .into_iter()
        .chain(std::iter::once(rails()))
        .find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_row_count_and_order() {
        let all = php_workloads();
        assert_eq!(all.len(), 7);
        assert_eq!(all[0].name, "MediaWiki (read only)");
        assert_eq!(all[6].name, "SPECweb2005");
    }

    #[test]
    fn per_object_free_ratios_match_paper_range() {
        // Paper: free calls are 7.9% to 27.3% (15.3% avg) fewer than mallocs.
        let mut gaps = Vec::new();
        for w in php_workloads() {
            let gap = 1.0 - w.per_object_free_ratio();
            assert!((0.07..=0.28).contains(&gap), "{}: gap {gap}", w.name);
            gaps.push(gap);
        }
        let avg = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            (0.13..=0.18).contains(&avg),
            "average gap {avg} should be ~15.3%"
        );
    }

    #[test]
    fn specweb_is_the_outlier() {
        let s = specweb();
        for w in php_workloads() {
            if w.name != s.name {
                assert!(w.mallocs_per_tx > 10 * s.mallocs_per_tx);
                assert!(w.mean_alloc_bytes < s.mean_alloc_bytes);
            }
        }
    }

    #[test]
    fn rails_never_bulk_frees() {
        let r = rails();
        assert!(!r.bulk_free_at_end);
        assert!(r.cross_tx_fraction > 0.0);
        assert!(r.per_object_free_ratio() > 0.95);
    }

    #[test]
    fn by_name_roundtrip() {
        assert_eq!(by_name("phpBB").unwrap().mallocs_per_tx, 46_965);
        assert!(!by_name("Ruby on Rails").unwrap().bulk_free_at_end);
        assert!(by_name("nope").is_none());
    }
}
