//! Trace capture and replay.
//!
//! The generators in this crate are deterministic, but sometimes you want
//! the *exact* operation sequence as an artifact: to diff two workload
//! models, to feed an external allocator simulator, or to replay one
//! stream against many allocators without regenerating it. A trace is a
//! JSON-lines file, one [`WorkOp`] per line — self-describing and
//! `grep`-able.

use crate::stream::{TxStream, WorkOp};
use std::io::{self, BufRead, Write};

/// Writes `transactions` whole transactions from `stream` to `out`, one
/// JSON-encoded [`WorkOp`] per line.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
///
/// # Examples
///
/// ```
/// use webmm_workload::{phpbb, trace, TxStream};
/// let mut stream = TxStream::new(phpbb(), 64, 7);
/// let mut buf = Vec::new();
/// trace::write_trace(&mut stream, 2, &mut buf)?;
/// let ops = trace::read_trace(&buf[..])?;
/// assert!(ops.len() > 1000);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_trace<W: Write>(
    stream: &mut TxStream,
    transactions: u64,
    mut out: W,
) -> io::Result<()> {
    let mut done = 0;
    while done < transactions {
        let op = stream.next_op();
        let line = serde_json::to_string(&op).map_err(io::Error::other)?;
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
        if op == WorkOp::EndTx {
            done += 1;
        }
    }
    Ok(())
}

/// Reads a trace written by [`write_trace`] back into memory.
///
/// # Errors
///
/// Returns an error on I/O failure or if a line is not a valid [`WorkOp`].
pub fn read_trace<R: io::Read>(input: R) -> io::Result<Vec<WorkOp>> {
    let mut ops = Vec::new();
    for line in io::BufReader::new(input).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        ops.push(serde_json::from_str(&line).map_err(io::Error::other)?);
    }
    Ok(ops)
}

/// Whole transactions in a recorded op sequence (its `EndTx` count) —
/// what a replay driver should pass as its transaction total.
pub fn count_transactions(ops: &[WorkOp]) -> u64 {
    ops.iter().filter(|op| **op == WorkOp::EndTx).count() as u64
}

/// An iterator adapter replaying a recorded trace as an op source.
///
/// After the recorded ops are exhausted it yields `EndTx` forever, so a
/// replay can always be driven to a transaction boundary.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    ops: Vec<WorkOp>,
    pos: usize,
}

impl TraceReplay {
    /// Wraps a recorded op sequence.
    pub fn new(ops: Vec<WorkOp>) -> Self {
        TraceReplay { ops, pos: 0 }
    }

    /// The next operation (EndTx forever once exhausted).
    pub fn next_op(&mut self) -> WorkOp {
        let op = self.ops.get(self.pos).copied().unwrap_or(WorkOp::EndTx);
        self.pos += 1;
        op
    }

    /// Whether the recorded portion has been fully replayed.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::phpbb;

    #[test]
    fn round_trip_preserves_ops() {
        let mut stream = TxStream::new(phpbb(), 64, 9);
        let mut buf = Vec::new();
        write_trace(&mut stream, 1, &mut buf).unwrap();
        let ops = read_trace(&buf[..]).unwrap();
        // Regenerate with the same seed and compare.
        let mut stream2 = TxStream::new(phpbb(), 64, 9);
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(*op, stream2.next_op(), "op {i} differs");
        }
        assert_eq!(*ops.last().unwrap(), WorkOp::EndTx);
    }

    #[test]
    fn replay_yields_end_tx_forever() {
        let mut r = TraceReplay::new(vec![WorkOp::Compute { instr: 5 }]);
        assert_eq!(r.next_op(), WorkOp::Compute { instr: 5 });
        assert!(!r.exhausted() || r.pos == 1);
        assert_eq!(r.next_op(), WorkOp::EndTx);
        assert_eq!(r.next_op(), WorkOp::EndTx);
        assert!(r.exhausted());
    }

    #[test]
    fn count_transactions_counts_end_tx() {
        let mut stream = TxStream::new(phpbb(), 64, 9);
        let mut buf = Vec::new();
        write_trace(&mut stream, 3, &mut buf).unwrap();
        let ops = read_trace(&buf[..]).unwrap();
        assert_eq!(count_transactions(&ops), 3);
        assert_eq!(count_transactions(&[]), 0);
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(read_trace(&b"not json\n"[..]).is_err());
    }

    #[test]
    fn read_skips_blank_lines() {
        let ops = read_trace(&b"\n{\"EndTx\":null}\n\n"[..]).unwrap();
        assert_eq!(ops, vec![WorkOp::EndTx]);
    }
}
