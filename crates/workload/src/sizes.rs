//! Allocation-size sampling.
//!
//! Table 3 gives only the *mean* allocation size per workload. PHP
//! allocation sizes are heavily right-skewed — zvals and small strings
//! dominate, with occasional large buffers (row sets, rendered pages) —
//! which a log-normal captures well. The sampler clamps to
//! `[8 B, 32 KB]` and numerically corrects the log-normal location
//! parameter so the post-clamping mean matches the requested mean.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Log-normal shape parameter (σ of the underlying normal).
const SIGMA: f64 = 1.0;
/// Smallest request.
const MIN_SIZE: u64 = 8;
/// Largest request (PHP strings/rows; above segment-large thresholds often
/// enough to exercise the allocators' large paths).
const MAX_SIZE: u64 = 32 * 1024;

/// Samples allocation sizes with a given mean.
#[derive(Clone, Debug)]
pub struct SizeSampler {
    mu: f64,
}

impl SizeSampler {
    /// Creates a sampler whose clamped mean approximates `mean_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `mean_bytes` is not within `(8, 16384)`.
    pub fn new(mean_bytes: f64) -> Self {
        assert!(
            mean_bytes > MIN_SIZE as f64 && mean_bytes < 16_384.0,
            "mean {mean_bytes} outside supported range"
        );
        // Start from the unclamped closed form and correct for clamping
        // with a few fixed-point iterations over the analytic clamped mean.
        let mut mu = mean_bytes.ln() - SIGMA * SIGMA / 2.0;
        for _ in 0..24 {
            let m = clamped_mean(mu);
            mu += (mean_bytes.ln() - m.ln()).clamp(-0.5, 0.5);
        }
        SizeSampler { mu }
    }

    /// Draws one allocation size.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> u64 {
        // Box-Muller from two uniforms (keeps us off rand_distr).
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let x = (self.mu + SIGMA * z).exp();
        (x as u64).clamp(MIN_SIZE, MAX_SIZE)
    }
}

/// Analytic mean of the clamped log-normal via coarse numerical
/// integration over the quantile space.
fn clamped_mean(mu: f64) -> f64 {
    const STEPS: usize = 2000;
    let mut acc = 0.0;
    for i in 0..STEPS {
        let p = (i as f64 + 0.5) / STEPS as f64;
        let z = inverse_normal_cdf(p);
        let x = (mu + SIGMA * z)
            .exp()
            .clamp(MIN_SIZE as f64, MAX_SIZE as f64);
        acc += x;
    }
    acc / STEPS as f64
}

/// Acklam's rational approximation of the standard normal quantile.
#[allow(clippy::excessive_precision)] // coefficients kept exactly as published
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn empirical_mean(target: f64, n: usize) -> f64 {
        let s = SizeSampler::new(target);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        (0..n).map(|_| s.sample(&mut rng) as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn mean_matches_table3_values() {
        for target in [49.3, 56.3, 62.1, 66.7, 68.6, 78.6, 175.6] {
            let m = empirical_mean(target, 200_000);
            let err = (m - target).abs() / target;
            assert!(err < 0.05, "target {target}: got {m} (err {err:.3})");
        }
    }

    #[test]
    fn sizes_within_bounds() {
        let s = SizeSampler::new(62.1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = s.sample(&mut rng);
            assert!((MIN_SIZE..=MAX_SIZE).contains(&v));
        }
    }

    #[test]
    fn distribution_is_right_skewed() {
        let s = SizeSampler::new(62.1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut v: Vec<u64> = (0..100_000).map(|_| s.sample(&mut rng)).collect();
        v.sort_unstable();
        let median = v[v.len() / 2] as f64;
        let mean = v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(median < mean, "log-normal: median {median} < mean {mean}");
        // A visible large-object tail exists (exercises large paths).
        assert!(*v.last().unwrap() > 1024);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let s = SizeSampler::new(100.0);
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    fn inverse_cdf_sane() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.975) - 1.96).abs() < 0.01);
        assert!((inverse_normal_cdf(0.025) + 1.96).abs() < 0.01);
    }
}
