//! # webmm-workload: transaction-scoped allocation workloads
//!
//! Synthetic but statistically faithful reproductions of the workloads in
//! *"A Study of Memory Management for Web-based Applications on Multicore
//! Processors"* (PLDI 2009): the six PHP applications of Table 2 (MediaWiki
//! in two scenarios, SugarCRM, eZ Publish, phpBB, CakePHP, plus
//! SPECweb2005) and the Ruby on Rails application of §4.4.
//!
//! Each workload is parameterized directly from the paper's Table 3 —
//! malloc/free/realloc calls per transaction and mean allocation size —
//! plus a lifetime model in which most objects die young (per-object free,
//! LIFO-biased) and the rest live until the transaction-end `freeAll`.
//! A [`TxStream`] turns a [`WorkloadSpec`] into a deterministic, endless
//! sequence of [`WorkOp`]s that the runtime replays against any allocator.
//!
//! ## Example
//!
//! ```
//! use webmm_workload::{phpbb, TxStream, WorkOp};
//!
//! let mut stream = TxStream::new(phpbb(), 32, 1);
//! let mut mallocs = 0;
//! loop {
//!     match stream.next_op() {
//!         WorkOp::Malloc { .. } => mallocs += 1,
//!         WorkOp::EndTx => break,
//!         _ => {}
//!     }
//! }
//! assert_eq!(mallocs as u64, stream.tx_ticks());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod objtable;
mod sizes;
mod spec;
mod stream;
pub mod trace;

pub use objtable::ObjectTable;
pub use sizes::SizeSampler;
pub use spec::{
    by_name, cakephp, ez_publish, mediawiki_read, mediawiki_rw, php_workloads, phpbb, rails,
    specweb, sugarcrm, WorkloadSpec,
};
pub use stream::{StreamStats, TxStream, WorkOp};
