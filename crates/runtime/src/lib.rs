//! # webmm-runtime: the transaction engine
//!
//! Recreates the paper's measurement setup in simulation: single-threaded
//! language-runtime processes (one allocator heap each, as PHP and Ruby
//! are configured in the paper) serve transaction streams on the hardware
//! contexts of a simulated multicore machine, interleaved through the
//! shared memory hierarchy. A bus-contention fixed point then converts the
//! measured hardware events into cycles, throughput, and the paper's
//! CPU-time breakdowns.
//!
//! * [`Process`] — one runtime process: address space + allocator +
//!   workload stream + object table (with Ruby-style periodic restart).
//! * [`run`] / [`RunConfig`] / [`RunResult`] — one measurement.
//! * [`solve`] / [`Throughput`] — the contention model (out-of-order
//!   overlap on Xeon, 4-way fine-grained SMT on Niagara, shared-bus
//!   queueing on both).
//!
//! ## Example
//!
//! ```no_run
//! use webmm_alloc::AllocatorKind;
//! use webmm_runtime::{run, RunConfig};
//! use webmm_sim::MachineConfig;
//! use webmm_workload::phpbb;
//!
//! let machine = MachineConfig::xeon_clovertown();
//! let cfg = RunConfig::new(AllocatorKind::DdMalloc, phpbb()).scale(32).cores(8);
//! let result = run(&machine, &cfg);
//! println!("{:.1} tx/sec", result.throughput.tx_per_sec);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod engine;
mod process;
mod throughput;

pub use engine::{run, RunConfig, RunResult};
pub use process::{AllocatorSpec, Process, StepEvent};
pub use throughput::{solve, Throughput};
