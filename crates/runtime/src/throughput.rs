//! Bus-contention fixed point and throughput model.
//!
//! The simulation measures per-transaction *events*; this module turns
//! them into *time*. The circularity the paper's multicore story rests on
//! is solved here: transaction time depends on memory latency, memory
//! latency depends on bus utilization, and bus utilization depends on how
//! fast transactions (and their bus traffic) are being produced. We
//! iterate that loop to a damped fixed point.
//!
//! Two platform behaviours are modeled on top of the raw cycle counts:
//!
//! * **Out-of-order overlap (Xeon)** — a fraction of stall cycles is
//!   hidden by OoO execution (in [`MachineConfig::cycles`]).
//! * **Fine-grained multithreading (Niagara)** — a core interleaves its
//!   `T` hardware threads, so per-thread transaction time is
//!   `max(T·compute, compute + stalls) / T · T = max(T·compute, compute+stalls)`:
//!   compute-bound threads share the pipeline, memory-bound threads hide
//!   each other's stalls. With `T = 1` this degenerates to
//!   `compute + stalls` (Xeon).

use serde::Serialize;
use webmm_sim::{CategorizedCounts, Cycles, MachineConfig};

/// Solved steady-state performance of one run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, serde::Deserialize)]
pub struct Throughput {
    /// Aggregate transactions per second across all contexts.
    pub tx_per_sec: f64,
    /// Average wall-clock cycles per transaction per hardware context
    /// (after SMT folding).
    pub cycles_per_tx: f64,
    /// Average *CPU* cycles per transaction spent in memory management
    /// (Figure 6/11 breakdowns; before SMT folding).
    pub mm_cycles_per_tx: f64,
    /// Average CPU cycles per transaction spent in the application.
    pub app_cycles_per_tx: f64,
    /// Bus utilization at the fixed point (0..).
    pub bus_utilization: f64,
    /// Memory-latency multiplier at the fixed point (>= 1).
    pub latency_factor: f64,
}

/// Fraction of a thread's *memory* (L2-miss) stall cycles that cannot be
/// covered by its sibling hardware threads because they are stalled too
/// (stall alignment). Short L2-hit stalls are always covered; hundred-cycle
/// memory stalls increasingly coincide.
const SMT_STALL_ALIGN: f64 = 0.3;

/// Per-thread transaction time under `threads`-way fine-grained SMT.
///
/// The pipeline bound charges each thread's compute, its software-handled
/// TLB traps (they execute instructions), and the aligned share of its
/// memory stalls; the latency bound is the thread running alone. With one
/// thread this reduces to `compute + all stalls`.
fn smt_tx_time(compute: f64, l2_hit: f64, mem: f64, tlb: f64, threads: f64) -> f64 {
    let pipeline = threads * (compute + tlb + mem * SMT_STALL_ALIGN);
    let latency = compute + l2_hit + mem + tlb;
    pipeline.max(latency)
}

/// Solves the contention fixed point for measured per-context events.
///
/// `events[ctx]` are the totals over `measured_tx` transactions of context
/// `ctx`; `active_cores` says how the contexts fold onto cores.
pub fn solve(
    machine: &MachineConfig,
    events: &[CategorizedCounts],
    measured_tx: u64,
    active_cores: u32,
) -> Throughput {
    assert!(!events.is_empty(), "need at least one context");
    assert!(measured_tx > 0, "need a nonzero measurement window");
    let threads = f64::from(machine.threads_per_core);
    let n_tx = measured_tx as f64;

    let mut factor = 1.0f64;
    let mut result = Throughput::default();
    for _ in 0..200 {
        let mut total_rate = 0.0; // tx per cycle, all contexts
        let mut total_bytes_per_cycle = 0.0;
        let mut cycles_acc = 0.0;
        let mut mm_acc = 0.0;
        let mut app_acc = 0.0;

        for ev in events {
            let mm: Cycles = machine.cycles(&ev.mm, factor);
            let app: Cycles = machine.cycles(&ev.app, factor);
            let compute = (mm.compute + app.compute) / n_tx;
            let l2_hit = (mm.l2_hit_stall + app.l2_hit_stall) / n_tx;
            let mem = (mm.memory_stall + app.memory_stall) / n_tx;
            let tlb = (mm.tlb_stall + app.tlb_stall) / n_tx;
            let tx_time = smt_tx_time(compute, l2_hit, mem, tlb, threads);
            let rate = 1.0 / tx_time; // tx/cycle for this context
            total_rate += rate;
            let bytes_per_tx = ev.total().bus_bytes as f64 / n_tx;
            total_bytes_per_cycle += bytes_per_tx * rate;
            cycles_acc += tx_time;
            mm_acc += mm.total() / n_tx;
            app_acc += app.total() / n_tx;
        }

        let rho = machine.bus.utilization(total_bytes_per_cycle);
        let next = machine.bus.latency_factor(rho.min(0.999));
        let new_factor = 0.5 * factor + 0.5 * next;

        let n = events.len() as f64;
        result = Throughput {
            tx_per_sec: total_rate * machine.freq_ghz * 1e9,
            cycles_per_tx: cycles_acc / n,
            mm_cycles_per_tx: mm_acc / n,
            app_cycles_per_tx: app_acc / n,
            bus_utilization: rho,
            latency_factor: factor,
        };
        if (new_factor - factor).abs() < 1e-9 {
            break;
        }
        factor = new_factor;
    }
    let _ = active_cores; // documented fold is via threads_per_core
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use webmm_sim::EventCounts;

    fn events(instr: u64, l2_misses: u64, bus_bytes: u64) -> CategorizedCounts {
        CategorizedCounts {
            mm: EventCounts::default(),
            app: EventCounts {
                instructions: instr,
                l2_misses,
                bus_txns: bus_bytes / 64,
                bus_bytes,
                ..Default::default()
            },
        }
    }

    #[test]
    fn compute_bound_run_sees_no_contention() {
        let m = MachineConfig::xeon_clovertown();
        let ev = vec![events(10_000_000, 10, 640); 8];
        let t = solve(&m, &ev, 10, 8);
        assert!(t.bus_utilization < 0.05);
        assert!((t.latency_factor - 1.0).abs() < 0.01);
        // 1M instructions/tx at CPI 0.75 = 750k cycles/tx.
        assert!((t.cycles_per_tx - 750_000.0).abs() / 750_000.0 < 0.05);
    }

    #[test]
    fn bandwidth_hungry_run_saturates_and_slows() {
        let m = MachineConfig::xeon_clovertown();
        // 1M instructions and 150k misses/tx → enormous offered traffic.
        // At the fixed point the rising latency throttles demand, so the
        // equilibrium sits at the knee of the delay curve: moderate
        // utilization, clearly elevated latency, much lower throughput.
        let hungry = vec![events(10_000_000, 1_500_000, 1_500_000 * 64); 8];
        let light = vec![events(10_000_000, 1_000, 1_000 * 64); 8];
        let th = solve(&m, &hungry, 10, 8);
        let tl = solve(&m, &light, 10, 8);
        assert!(th.bus_utilization > 0.4, "rho = {}", th.bus_utilization);
        assert!(th.latency_factor > 1.5, "factor = {}", th.latency_factor);
        assert!(
            th.tx_per_sec < tl.tx_per_sec / 10.0,
            "stalls dominate throughput"
        );
        assert!(tl.latency_factor < 1.05);
    }

    #[test]
    fn contention_grows_with_contexts() {
        let m = MachineConfig::xeon_clovertown();
        let per_ctx = events(10_000_000, 100_000, 100_000 * 64);
        let one = solve(&m, &vec![per_ctx; 1], 10, 1);
        let eight = solve(&m, &vec![per_ctx; 8], 10, 8);
        assert!(eight.latency_factor > one.latency_factor);
        // Throughput still rises with cores, but sub-linearly.
        assert!(eight.tx_per_sec > one.tx_per_sec);
        assert!(eight.tx_per_sec < 8.0 * one.tx_per_sec);
    }

    #[test]
    fn smt_hides_stalls_on_niagara() {
        // Memory-bound: 4-way SMT hides most (not all) of the latency —
        // per-thread time grows by the aligned-stall share, not by 4x.
        let compute = 1000.0;
        let stalls = 10_000.0;
        let t1 = smt_tx_time(compute, 0.0, stalls, 0.0, 1.0);
        let t4 = smt_tx_time(compute, 0.0, stalls, 0.0, 4.0);
        assert_eq!(t1, 11_000.0);
        assert!(t4 < 2.0 * t1, "most stalls hidden under SMT: {t4}");
        assert!(t4 > t1, "stall alignment exposes some latency: {t4}");
        // Short L2-hit stalls are hidden entirely once the pipeline binds.
        let h4 = smt_tx_time(compute, 2_000.0, 0.0, 0.0, 4.0);
        assert_eq!(h4, 4_000.0, "L2-hit stalls fully covered by siblings");
        // Compute-bound: threads serialize on the single-issue pipeline.
        let c1 = smt_tx_time(10_000.0, 0.0, 100.0, 0.0, 1.0);
        let c4 = smt_tx_time(10_000.0, 0.0, 100.0, 0.0, 4.0);
        assert_eq!(c1, 10_100.0);
        assert!((40_000.0..41_000.0).contains(&c4));
    }

    #[test]
    fn fixed_point_converges_deterministically() {
        let m = MachineConfig::niagara_t1();
        let ev = vec![events(5_000_000, 200_000, 200_000 * 64); 32];
        let a = solve(&m, &ev, 5, 8);
        let b = solve(&m, &ev, 5, 8);
        assert_eq!(a, b);
        assert!(a.latency_factor >= 1.0);
        assert!(a.tx_per_sec.is_finite());
    }
}
