//! The multicore measurement engine.
//!
//! Runs one process per hardware context, interleaving their operation
//! streams through the shared [`MemHierarchy`] in small slices so that L2
//! capacity sharing, prefetcher interaction, and mutual cache pollution
//! are simulated rather than modeled. After a warm-up window the engine
//! snapshots each context's hardware counters over a measurement window of
//! whole transactions; the bus-contention fixed point
//! ([`crate::throughput`]) then turns events into cycles and throughput.

use crate::process::{AllocatorSpec, Process, StepEvent};
use crate::throughput::{solve, Throughput};
use serde::Serialize;
use webmm_alloc::{AllocatorKind, DdConfig, Footprint};
use webmm_sim::{CategorizedCounts, MachineConfig, MemHierarchy};
use webmm_workload::WorkloadSpec;

/// Operations executed per context before rotating to the next (the
/// interleaving granularity; fine enough that contexts genuinely share the
/// caches, coarse enough to keep the simulation fast).
const SLICE_OPS: u32 = 32;

/// Configuration of one measurement run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Allocator under test.
    pub allocator: AllocatorSpec,
    /// Workload to serve.
    pub workload: WorkloadSpec,
    /// Per-transaction op counts are divided by this (1 = paper scale).
    pub scale: u32,
    /// How many of the machine's cores to use (the paper's Figure 7 core
    /// sweep); every hardware thread of an active core runs a process.
    pub active_cores: u32,
    /// Transactions per context discarded as warm-up.
    pub warmup_tx: u64,
    /// Transactions per context measured.
    pub measure_tx: u64,
    /// Restart processes every N transactions (Ruby study).
    pub restart_every: Option<u64>,
    /// Whether the runtime calls `freeAll` at transaction end (the Ruby
    /// study disables it even for DDmalloc).
    pub use_free_all: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl RunConfig {
    /// A conventional configuration: `kind` on `workload` using all eight
    /// cores, scale 16, 2 warm-up + 6 measured transactions.
    pub fn new(kind: AllocatorKind, workload: WorkloadSpec) -> Self {
        RunConfig {
            allocator: AllocatorSpec::new(kind),
            workload,
            scale: 16,
            active_cores: 8,
            warmup_tx: 2,
            measure_tx: 6,
            restart_every: None,
            use_free_all: true,
            seed: 0x5EED,
        }
    }

    /// Sets the workload scale divisor.
    pub fn scale(mut self, scale: u32) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the number of active cores.
    pub fn cores(mut self, cores: u32) -> Self {
        self.active_cores = cores;
        self
    }

    /// Sets warm-up and measured transaction counts per context.
    pub fn window(mut self, warmup: u64, measure: u64) -> Self {
        self.warmup_tx = warmup;
        self.measure_tx = measure;
        self
    }

    /// Sets Ruby-style periodic process restart.
    pub fn restart_every(mut self, n: Option<u64>) -> Self {
        self.restart_every = n;
        self
    }

    /// Disables the transaction-end `freeAll` (the §4.4 Ruby runtime).
    pub fn no_free_all(mut self) -> Self {
        self.use_free_all = false;
        self
    }

    /// Overrides the DDmalloc configuration (ablation studies).
    pub fn dd_config(mut self, cfg: DdConfig) -> Self {
        self.allocator.dd_override = Some(cfg);
        self
    }
}

/// Everything measured in one run.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct RunResult {
    /// Machine name.
    pub machine: String,
    /// Allocator display name (paper wording).
    pub allocator: String,
    /// Allocator id.
    pub allocator_id: String,
    /// Workload name.
    pub workload: String,
    /// Scale divisor used.
    pub scale: u32,
    /// Active cores.
    pub active_cores: u32,
    /// Hardware contexts that ran processes.
    pub contexts: usize,
    /// Event totals per context over its measurement window.
    pub events: Vec<CategorizedCounts>,
    /// Measured transactions per context.
    pub measured_tx: u64,
    /// Largest per-process footprint seen.
    pub footprint: Footprint,
    /// Solved throughput and cycle breakdown.
    pub throughput: Throughput,
}

impl RunResult {
    /// Sum of per-context event totals.
    pub fn total_events(&self) -> CategorizedCounts {
        let mut acc = CategorizedCounts::new();
        for e in &self.events {
            acc += *e;
        }
        acc
    }

    /// Average events per transaction, across all contexts (f64 fields via
    /// closure access on the summed counters).
    pub fn events_per_tx(&self, f: impl Fn(&CategorizedCounts) -> u64) -> f64 {
        let total = self.total_events();
        f(&total) as f64 / (self.measured_tx as f64 * self.events.len() as f64)
    }
}

/// Scales the machine for a `scale`-times-reduced workload: the L2
/// capacity shrinks with the per-transaction footprint so that the
/// footprint-to-cache ratios — which decide who pollutes and who fits —
/// match the full-scale machine. This is standard cache-sampling
/// methodology; L1s and TLBs are left alone because they serve the
/// *churn* working set, which does not grow with transaction length.
fn scaled_machine(machine: &MachineConfig, scale: u32) -> MachineConfig {
    assert!(
        scale.is_power_of_two(),
        "scale must be a power of two (cache sampling)"
    );
    if scale == 1 {
        return machine.clone();
    }
    let mut m = machine.clone();
    // Floor: 64 KB of L2 per hardware context sharing the array. Working
    // sets that do NOT scale with transaction length (allocator metadata,
    // the churn set of recycled objects) need the same headroom they have
    // at full scale; only footprints that grow with the transaction
    // (region streams, survivor tails) should feel the scaled capacity.
    // Repeated halving keeps the set count a power of two for any
    // associativity.
    let sharers = u64::from(machine.cores_per_l2 * machine.threads_per_core);
    // 96 KB of L2 per sharing context. Working sets whose reuse distance
    // does NOT scale with transaction length — the churn set of recycled
    // objects, whose re-reference gap is a fixed number of allocations
    // interleaved across all sharers — need the same headroom they have at
    // full scale; only footprints that grow with the transaction (survivor
    // tails, region streams) should feel the scaled capacity.
    let floor = 96 * 1024 * sharers;
    let min_geometry = u64::from(machine.l2.assoc) * machine.l2.line_bytes * 16;
    let mut size = machine.l2.size_bytes;
    let mut remaining = scale;
    while remaining > 1 && size / 2 >= floor && size / 2 >= min_geometry {
        size /= 2;
        remaining /= 2;
    }
    // The D-TLB is deliberately NOT scaled: its penalty feeds the cycle
    // model directly, and shrinking it makes every allocator's scaled heap
    // miss in ways the full-scale machines do not. The cost is that
    // Xeon's TLB covers scaled footprints entirely, so the large-page
    // ablation under-reports its full-scale throughput effect (the D-TLB
    // miss reduction itself still shows; see EXPERIMENTS.md).
    m.l2 = if machine.l2.hashed_index {
        webmm_sim::CacheConfig::new_hashed(size, machine.l2.line_bytes, machine.l2.assoc)
    } else {
        webmm_sim::CacheConfig::new(size, machine.l2.line_bytes, machine.l2.assoc)
    };
    m
}

/// Runs one configuration on one machine.
///
/// The workload scale divisor also scales the L2 (see [`scaled_machine`])
/// and the shared static area, keeping the architectural ratios of the
/// full-size experiment.
///
/// # Panics
///
/// Panics if `active_cores` exceeds the machine's core count, if `scale`
/// is not a power of two, or if an allocator reports out-of-memory mid-run
/// (configuration error).
pub fn run(machine: &MachineConfig, cfg: &RunConfig) -> RunResult {
    assert!(
        cfg.active_cores >= 1 && cfg.active_cores <= machine.cores,
        "active_cores {} out of range 1..={}",
        cfg.active_cores,
        machine.cores
    );
    let machine = &scaled_machine(machine, cfg.scale);
    let mut workload = cfg.workload.clone();
    workload.static_bytes = (workload.static_bytes / u64::from(cfg.scale)).max(64 * 1024);
    // The paper maps DDmalloc's heap with 4 MB pages where the OS supports
    // it transparently (Niagara/Solaris), unless an ablation overrides.
    let mut allocator = cfg.allocator.clone();
    if allocator.kind == AllocatorKind::DdMalloc
        && allocator.dd_override.is_none()
        && machine.os_large_pages
    {
        allocator.dd_override = Some(DdConfig {
            large_pages: true,
            ..DdConfig::default()
        });
    }
    let contexts = (cfg.active_cores * machine.threads_per_core) as usize;
    let mut hier = MemHierarchy::new(machine);
    let mut procs: Vec<Process> = (0..contexts)
        .map(|ctx| {
            Process::with_free_all(
                ctx as u32,
                allocator.clone(),
                workload.clone(),
                cfg.scale,
                cfg.seed,
                cfg.restart_every,
                cfg.use_free_all,
            )
        })
        .collect();

    // Phase 1: warm-up. Interleave until every context has finished its
    // warm-up transactions.
    let mut warm_done = vec![false; contexts];
    while !warm_done.iter().all(|&d| d) {
        for ctx in 0..contexts {
            if warm_done[ctx] {
                continue; // stop early: warm-up needs no interference fairness
            }
            for _ in 0..SLICE_OPS {
                match procs[ctx].step(&mut hier, ctx) {
                    StepEvent::TxDoneRestarted => hier.flush_core(ctx),
                    StepEvent::TxDone => {}
                    StepEvent::Op => continue,
                }
                if procs[ctx].transactions() >= cfg.warmup_tx {
                    warm_done[ctx] = true;
                    break;
                }
            }
        }
    }

    // Phase 2: measurement. Counters restart from zero; every context runs
    // until it completes `measure_tx` more transactions, and keeps running
    // (for interference) until all are done — but its own counters are
    // snapshotted the moment it finishes.
    hier.reset_counters();
    let target: Vec<u64> = procs
        .iter()
        .map(|p| p.transactions() + cfg.measure_tx)
        .collect();
    let mut snapshot: Vec<Option<CategorizedCounts>> = vec![None; contexts];
    while snapshot.iter().any(|s| s.is_none()) {
        for ctx in 0..contexts {
            // Contexts that already finished keep executing (their cache
            // pollution is part of the measured contexts' environment);
            // only unfinished contexts still get snapshotted below.
            for _ in 0..SLICE_OPS {
                if procs[ctx].step(&mut hier, ctx) == StepEvent::TxDoneRestarted {
                    hier.flush_core(ctx);
                }
            }
            if snapshot[ctx].is_none() && procs[ctx].transactions() >= target[ctx] {
                snapshot[ctx] = Some(*hier.counters(ctx));
            }
        }
    }
    let events: Vec<CategorizedCounts> = snapshot
        .into_iter()
        .map(|s| s.expect("all contexts measured"))
        .collect();

    let footprint = procs
        .iter()
        .map(Process::peak_footprint)
        .max_by_key(|f| f.heap_bytes + f.metadata_bytes)
        .unwrap_or_default();

    let throughput = solve(machine, &events, cfg.measure_tx, cfg.active_cores);

    RunResult {
        machine: machine.name.clone(),
        allocator: procs[0].allocator_name().to_string(),
        allocator_id: cfg.allocator.kind.id().to_string(),
        workload: cfg.workload.name.to_string(),
        scale: cfg.scale,
        active_cores: cfg.active_cores,
        contexts,
        events,
        measured_tx: cfg.measure_tx,
        footprint,
        throughput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webmm_workload::phpbb;

    #[test]
    fn single_core_run_produces_sane_numbers() {
        let machine = MachineConfig::xeon_clovertown();
        let cfg = RunConfig::new(AllocatorKind::DdMalloc, phpbb())
            .scale(64)
            .cores(1)
            .window(1, 2);
        let r = run(&machine, &cfg);
        assert_eq!(r.contexts, 1);
        assert!(r.throughput.tx_per_sec > 0.0);
        assert!(r.throughput.cycles_per_tx > 0.0);
        assert!(r.events[0].total().instructions > 100_000);
        assert!(r.footprint.heap_bytes > 0);
    }

    #[test]
    fn more_cores_more_throughput() {
        let machine = MachineConfig::xeon_clovertown();
        let mk = |cores| {
            let cfg = RunConfig::new(AllocatorKind::DdMalloc, phpbb())
                .scale(64)
                .cores(cores)
                .window(1, 2);
            run(&machine, &cfg).throughput.tx_per_sec
        };
        let one = mk(1);
        let four = mk(4);
        assert!(
            four > 2.0 * one,
            "4 cores ({four}) must beat 1 core ({one}) by >2x"
        );
    }

    #[test]
    fn niagara_uses_four_threads_per_core() {
        let machine = MachineConfig::niagara_t1();
        let cfg = RunConfig::new(AllocatorKind::DdMalloc, phpbb())
            .scale(64)
            .cores(2)
            .window(1, 1);
        let r = run(&machine, &cfg);
        assert_eq!(r.contexts, 8);
    }

    #[test]
    fn deterministic_given_seed() {
        let machine = MachineConfig::xeon_clovertown();
        let cfg = RunConfig::new(AllocatorKind::PhpDefault, phpbb())
            .scale(64)
            .cores(2)
            .window(1, 1);
        let a = run(&machine, &cfg);
        let b = run(&machine, &cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.throughput.tx_per_sec, b.throughput.tx_per_sec);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_too_many_cores() {
        let machine = MachineConfig::xeon_clovertown();
        let cfg = RunConfig::new(AllocatorKind::DdMalloc, phpbb()).cores(9);
        run(&machine, &cfg);
    }
}
