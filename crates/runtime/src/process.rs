//! A simulated language-runtime process.
//!
//! The paper runs 16 single-threaded PHP runtime processes on Xeon and 48
//! on Niagara (one heap per process, no locks — DDmalloc §3.3 item 3).
//! A [`Process`] bundles one process's address space, its allocator, its
//! workload stream, and the object table mapping stream object ids to
//! allocator addresses. It executes one [`WorkOp`] at a time against a
//! [`ContextPort`], so the multicore engine can interleave many processes
//! through the shared memory hierarchy.

use std::collections::HashMap;
use webmm_alloc::{Allocator, AllocatorKind, DdConfig, DdMalloc, Footprint};
use webmm_sim::{
    Addr, Category, CodeRegionId, CodeSpec, ContextPort, MemHierarchy, MemoryPort, ProcessMem,
};
use webmm_workload::{TxStream, WorkOp, WorkloadSpec};

/// Application (interpreter) code footprint: PHP/Ruby interpreters are
/// hundreds of KB of code with a much smaller hot loop.
const APP_CODE: CodeSpec = CodeSpec {
    len: 768 * 1024,
    hot_len: 12 * 1024,
};

/// Fixed address of the interpreter text, mapped shared by every process
/// (the same binary, held once in shared caches).
const APP_CODE_BASE: u64 = 0x7100_0000_0000;

/// Fixed address of the shared static data: interpreter read-only data and
/// the APC opcode cache, which PHP processes share via shared memory.
const STATIC_BASE: u64 = 0x7000_0000_0000;

/// Instructions charged for a process restart, at workload scale 1
/// (interpreter boot + framework load; divided by the run's scale).
const RESTART_INSTR: u64 = 300_000_000;

/// What [`Process::step`] just did, as far as the engine cares.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StepEvent {
    /// An ordinary operation.
    Op,
    /// A transaction completed.
    TxDone,
    /// A transaction completed and the process restarted itself (Ruby
    /// periodic-restart mode); the engine should flush the core's private
    /// caches.
    TxDoneRestarted,
}

/// How the process's allocator is (re)built.
#[derive(Clone, Debug)]
pub struct AllocatorSpec {
    /// Which allocator.
    pub kind: AllocatorKind,
    /// DDmalloc configuration override (ablations); `pid` is filled in
    /// per process.
    pub dd_override: Option<DdConfig>,
}

impl AllocatorSpec {
    /// Plain default-configured allocator of `kind`.
    pub fn new(kind: AllocatorKind) -> Self {
        AllocatorSpec {
            kind,
            dd_override: None,
        }
    }

    /// Builds an allocator instance for process `pid`.
    pub fn build(&self, pid: u32) -> Box<dyn Allocator> {
        match (self.kind, &self.dd_override) {
            (AllocatorKind::DdMalloc, Some(cfg)) => {
                Box::new(DdMalloc::new(DdConfig { pid, ..*cfg }))
            }
            (kind, _) => kind.build(pid),
        }
    }
}

/// One simulated runtime process.
pub struct Process {
    mem: ProcessMem,
    alloc: Box<dyn Allocator>,
    alloc_spec: AllocatorSpec,
    stream: TxStream,
    objects: HashMap<u64, (Addr, u64)>,
    static_base: Addr,
    app_code: CodeRegionId,
    pid: u32,
    generation: u32,
    scale: u32,
    seed: u64,
    tx_completed: u64,
    tx_since_restart: u64,
    /// Restart the process every N transactions (Ruby study), if set.
    restart_every: Option<u64>,
    /// Whether the runtime calls `freeAll` at transaction end (PHP: yes;
    /// the Ruby runtime of §4.4: no, even for allocators that support it).
    use_free_all: bool,
    /// Pending restart charge in instructions (applied on the next step).
    pending_restart_instr: u64,
    peak_footprint: Footprint,
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process")
            .field("pid", &self.pid)
            .field("allocator", &self.alloc.name())
            .field("workload", &self.stream.spec().name)
            .field("tx_completed", &self.tx_completed)
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

impl Process {
    /// Creates a process.
    ///
    /// * `pid` — process id (also selects the address-space base).
    /// * `alloc_spec` — allocator to run.
    /// * `workload` / `scale` / `seed` — the transaction stream.
    /// * `restart_every` — Ruby-style periodic restart, if any.
    pub fn new(
        pid: u32,
        alloc_spec: AllocatorSpec,
        workload: WorkloadSpec,
        scale: u32,
        seed: u64,
        restart_every: Option<u64>,
    ) -> Self {
        Self::with_free_all(pid, alloc_spec, workload, scale, seed, restart_every, true)
    }

    /// Like [`Process::new`], with explicit control over whether `freeAll`
    /// is invoked at transaction boundaries (§4.4 runs every allocator —
    /// including DDmalloc — without it).
    #[allow(clippy::too_many_arguments)]
    pub fn with_free_all(
        pid: u32,
        alloc_spec: AllocatorSpec,
        workload: WorkloadSpec,
        scale: u32,
        seed: u64,
        restart_every: Option<u64>,
        use_free_all: bool,
    ) -> Self {
        let mut mem = ProcessMem::new(Self::base(pid, 0));
        let app_code = mem.register_code_at(Addr::new(APP_CODE_BASE), APP_CODE);
        let static_base = Addr::new(STATIC_BASE);
        let alloc = alloc_spec.build(pid);
        Process {
            mem,
            alloc,
            alloc_spec,
            stream: TxStream::new(workload, scale, seed ^ (u64::from(pid) << 32)),
            objects: HashMap::new(),
            static_base,
            app_code,
            pid,
            generation: 0,
            scale,
            seed,
            tx_completed: 0,
            tx_since_restart: 0,
            restart_every,
            use_free_all,
            pending_restart_instr: 0,
            peak_footprint: Footprint::default(),
        }
    }

    fn base(pid: u32, generation: u32) -> u64 {
        // Distinct, widely spaced physical bases per process and per
        // process generation (a restarted process gets fresh pages).
        (u64::from(pid) + 1) << 40 | (u64::from(generation) << 34)
    }

    /// Transactions completed since creation.
    pub fn transactions(&self) -> u64 {
        self.tx_completed
    }

    /// The allocator's display name.
    pub fn allocator_name(&self) -> &'static str {
        self.alloc.name()
    }

    /// Largest footprint observed at any transaction end.
    pub fn peak_footprint(&self) -> Footprint {
        self.peak_footprint
    }

    /// Live objects right now (for white-box tests).
    pub fn live_objects(&self) -> usize {
        self.objects.len()
    }

    /// Workload stream statistics.
    pub fn stream_stats(&self) -> webmm_workload::StreamStats {
        self.stream.stats()
    }

    /// Executes one workload operation on hardware context `ctx` of
    /// `hier`.
    ///
    /// # Panics
    ///
    /// Panics if the allocator reports out-of-memory: the experiment heaps
    /// are sized so that OOM indicates a configuration error, and silently
    /// degrading would corrupt the measurements.
    pub fn step(&mut self, hier: &mut MemHierarchy, ctx: usize) -> StepEvent {
        let mut port = ContextPort::new(&mut self.mem, hier, ctx);
        if self.pending_restart_instr > 0 {
            // Charge the restart boot cost (interpreter + framework load).
            port.set_category(Category::Application);
            port.set_code_region(self.app_code);
            port.exec(self.pending_restart_instr);
            self.pending_restart_instr = 0;
        }
        let op = self.stream.next_op();
        match op {
            WorkOp::Malloc { id, size } => {
                let addr = self
                    .alloc
                    .malloc(&mut port, size)
                    .unwrap_or_else(|e| panic!("pid {}: {e}", self.pid));
                self.objects.insert(id, (addr, size));
                StepEvent::Op
            }
            WorkOp::Free { id } => {
                let (addr, _) = self
                    .objects
                    .remove(&id)
                    .expect("stream frees only live ids");
                if self.alloc.alloc_traits().per_object_free {
                    self.alloc.free(&mut port, addr);
                }
                // Without per-object free (region/obstack) the call is
                // removed entirely, per the paper's porting recipe.
                StepEvent::Op
            }
            WorkOp::Realloc { id, new_size } => {
                let (addr, old) = *self.objects.get(&id).expect("realloc of live id");
                let new_addr = self
                    .alloc
                    .realloc(&mut port, addr, old, new_size)
                    .unwrap_or_else(|e| panic!("pid {}: {e}", self.pid));
                self.objects.insert(id, (new_addr, new_size));
                StepEvent::Op
            }
            WorkOp::Touch { id, write } => {
                let (addr, size) = *self.objects.get(&id).expect("touch of live id");
                port.set_category(Category::Application);
                port.set_code_region(self.app_code);
                port.touch(addr, size, write);
                StepEvent::Op
            }
            WorkOp::Compute { instr } => {
                port.set_category(Category::Application);
                port.set_code_region(self.app_code);
                port.exec(instr);
                StepEvent::Op
            }
            WorkOp::StaticTouch { offset, len } => {
                port.set_category(Category::Application);
                port.set_code_region(self.app_code);
                port.touch(self.static_base + offset, len, false);
                StepEvent::Op
            }
            WorkOp::EndTx => {
                if self.use_free_all && self.alloc.alloc_traits().bulk_free {
                    self.alloc.free_all(&mut port);
                    self.objects.clear();
                }
                self.tx_completed += 1;
                self.tx_since_restart += 1;
                let fp = self.alloc.footprint();
                if fp.heap_bytes + fp.metadata_bytes
                    > self.peak_footprint.heap_bytes + self.peak_footprint.metadata_bytes
                {
                    self.peak_footprint.heap_bytes = fp.heap_bytes;
                    self.peak_footprint.metadata_bytes = fp.metadata_bytes;
                }
                self.peak_footprint.peak_tx_alloc_bytes = self
                    .peak_footprint
                    .peak_tx_alloc_bytes
                    .max(fp.peak_tx_alloc_bytes);
                if self
                    .restart_every
                    .is_some_and(|n| self.tx_since_restart >= n)
                {
                    self.restart();
                    StepEvent::TxDoneRestarted
                } else {
                    StepEvent::TxDone
                }
            }
        }
    }

    /// Tears the process down and boots a fresh one: new address space
    /// (fresh physical pages), new allocator, and a new workload stream —
    /// a restarted interpreter serves statistically identical transactions
    /// but shares no live state with its predecessor.
    fn restart(&mut self) {
        self.generation += 1;
        self.mem = ProcessMem::new(Self::base(self.pid, self.generation));
        self.app_code = self
            .mem
            .register_code_at(Addr::new(APP_CODE_BASE), APP_CODE);
        let spec = self.stream.spec().clone();
        self.static_base = Addr::new(STATIC_BASE);
        self.alloc = self.alloc_spec.build(self.pid);
        self.stream = TxStream::new(
            spec,
            self.scale,
            self.seed ^ (u64::from(self.pid) << 32) ^ (u64::from(self.generation) << 16),
        );
        self.objects.clear();
        self.tx_since_restart = 0;
        self.pending_restart_instr = RESTART_INSTR / u64::from(self.scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webmm_sim::MachineConfig;
    use webmm_workload::phpbb;

    fn run_ops(proc: &mut Process, hier: &mut MemHierarchy, n: usize) -> u64 {
        let mut txs = 0;
        for _ in 0..n {
            if proc.step(hier, 0) != StepEvent::Op {
                txs += 1;
            }
        }
        txs
    }

    #[test]
    fn process_runs_transactions_with_every_php_allocator() {
        let machine = MachineConfig::xeon_clovertown();
        for kind in AllocatorKind::PHP_STUDY {
            let mut hier = MemHierarchy::new(&machine);
            let mut proc = Process::new(0, AllocatorSpec::new(kind), phpbb(), 64, 42, None);
            let txs = run_ops(&mut proc, &mut hier, 20_000);
            assert!(txs >= 2, "{kind}: expected at least 2 transactions");
            assert_eq!(proc.transactions(), txs);
            // After each EndTx the object table is empty (bulk free).
            // Mid-transaction it may not be, so just check counters moved.
            let ev = hier.counters(0).total();
            assert!(ev.instructions > 100_000);
            assert!(hier.counters(0).mm.instructions > 0, "mm work attributed");
            assert!(hier.counters(0).app.instructions > 0, "app work attributed");
        }
    }

    #[test]
    fn restart_boots_a_fresh_process() {
        use webmm_workload::rails;
        let machine = MachineConfig::xeon_clovertown();
        let mut hier = webmm_sim::MemHierarchy::new(&machine);
        let mut proc = Process::with_free_all(
            0,
            AllocatorSpec::new(AllocatorKind::Dl),
            rails(),
            64,
            42,
            Some(2), // restart every 2 transactions
            false,
        );
        let mut restarts = 0;
        let mut steps = 0;
        while restarts < 2 && steps < 200_000 {
            if proc.step(&mut hier, 0) == StepEvent::TxDoneRestarted {
                restarts += 1;
                // After a restart the object table is empty and the next
                // transactions still run fine on the fresh allocator.
                assert_eq!(proc.live_objects(), 0);
            }
            steps += 1;
        }
        assert_eq!(restarts, 2, "expected two restarts in {steps} steps");
        assert!(proc.transactions() >= 4);
    }

    #[test]
    fn no_free_all_mode_keeps_allocator_heap_across_tx() {
        use webmm_workload::rails;
        let machine = MachineConfig::xeon_clovertown();
        let mut hier = webmm_sim::MemHierarchy::new(&machine);
        // DDmalloc in Ruby mode: bulk-free capable, but the runtime never
        // calls freeAll (§4.4).
        let mut proc = Process::with_free_all(
            0,
            AllocatorSpec::new(AllocatorKind::DdMalloc),
            rails(),
            64,
            42,
            None,
            false,
        );
        let mut txs = 0;
        let mut steps = 0;
        while txs < 3 && steps < 200_000 {
            if proc.step(&mut hier, 0) != StepEvent::Op {
                txs += 1;
                // Cross-transaction Rails objects stay live across EndTx.
                if txs >= 2 {
                    assert!(proc.live_objects() > 0, "no freeAll: survivors persist");
                }
            }
            steps += 1;
        }
        assert_eq!(txs, 3);
    }

    #[test]
    fn mm_share_is_larger_for_default_than_region() {
        let machine = MachineConfig::xeon_clovertown();
        let share = |kind: AllocatorKind| {
            let mut hier = MemHierarchy::new(&machine);
            let mut proc = Process::new(0, AllocatorSpec::new(kind), phpbb(), 64, 42, None);
            run_ops(&mut proc, &mut hier, 30_000);
            let c = hier.counters(0);
            c.mm.instructions as f64 / (c.mm.instructions + c.app.instructions) as f64
        };
        let php = share(AllocatorKind::PhpDefault);
        let region = share(AllocatorKind::Region);
        let dd = share(AllocatorKind::DdMalloc);
        assert!(php > dd, "php {php} vs dd {dd}");
        assert!(dd > region, "dd {dd} vs region {region}");
        // Paper Figure 6: region cuts mm time ~85%, DDmalloc ~56-65%.
        assert!(php > 0.05 && php < 0.45, "default-allocator mm share {php}");
    }
}
