//! End-to-end loopback accounting.
//!
//! Every test binds `127.0.0.1:0` (the exported bound address makes
//! parallel tests collision-free), drives a real client through real
//! sockets, and then reconciles three sets of books that were kept
//! independently: what the client observed, what the network tier
//! answered, and what the ingress queue admitted. The core identity —
//! `submitted == completed + shed` — must survive the network boundary
//! exactly, for every admission policy and both queue modes:
//!
//! * every response status the tier issued matches a queue admission
//!   outcome one-for-one ([`NetReport::reconciles`]);
//! * on a clean run (no timeouts, no drops) the client's per-status
//!   counts equal the server's — nothing is lost or invented between
//!   the socket and the report.

use std::time::Duration;
use webmm_net::{
    run_client, ClientWorkload, LoadMode, NetClientConfig, NetReport, NetServer, NetServerConfig,
};
use webmm_server::{AdmissionPolicy, ObsConfig, QueueMode, Server, ServerConfig};
use webmm_workload::phpbb;

fn start_tier(policy: AdmissionPolicy, queue_mode: QueueMode, capacity: usize) -> NetServer {
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_capacity: capacity,
        policy,
        queue_mode,
        batch: 4,
        static_bytes: 1 << 16,
        ..ServerConfig::default()
    });
    NetServer::bind(
        server,
        "127.0.0.1:0",
        NetServerConfig {
            handlers: 2,
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback")
}

/// Clean-run reconciliation: client books == tier books == queue books.
fn assert_clean_run(client: &webmm_net::ClientReport, tier: &NetReport, requests: u64) {
    assert_eq!(client.sent, requests, "every request must be written");
    assert_eq!(client.responses, requests, "every request must be answered");
    assert_eq!(client.timeouts, 0);
    assert_eq!(client.disconnects, 0);
    assert_eq!(client.net.protocol_errors, 0);
    assert_eq!(tier.net.protocol_errors, 0);

    // Tier-vs-queue: the wire statuses are the admission outcomes.
    assert!(tier.reconciles(), "tier must reconcile: {tier:?}");
    assert_eq!(tier.requests, requests);

    // Client-vs-tier: nothing lost or invented on the wire.
    assert_eq!(client.accepted, tier.accepted);
    assert_eq!(client.shed_accepted, tier.shed_accepted);
    assert_eq!(client.rejected, tier.rejected);
    assert_eq!(client.draining, tier.draining);
    assert_eq!(client.too_large, tier.oversized);

    // Client-vs-queue, end to end: what the client saw admitted is
    // exactly what the workers completed plus what shedding displaced.
    assert_eq!(
        client.accepted + client.shed_accepted + client.rejected,
        tier.server.submitted
    );
    assert_eq!(tier.server.shed, client.rejected + client.shed_accepted);
    assert_eq!(tier.server.completed, client.accepted);
}

#[test]
fn closed_loop_reconciles_under_block_policy() {
    for queue_mode in [QueueMode::Global, QueueMode::Sharded] {
        let tier = start_tier(AdmissionPolicy::Block, queue_mode, 8);
        let requests = 60;
        let client = run_client(
            tier.local_addr(),
            &ClientWorkload::Count { ops: 16, size: 128 },
            &NetClientConfig {
                connections: 2,
                requests,
                ..NetClientConfig::default()
            },
        );
        let report = tier.finish();
        assert_clean_run(&client, &report, requests);
        // Block never refuses: everything is accepted and completed.
        assert_eq!(client.accepted, requests, "{queue_mode:?}");
        assert_eq!(report.server.completed, requests);
        assert!(client.latency.count >= requests);
    }
}

#[test]
fn stream_workload_reconciles_and_executes_real_ops() {
    let tier = start_tier(AdmissionPolicy::Block, QueueMode::Sharded, 16);
    let requests = 24;
    let client = run_client(
        tier.local_addr(),
        &ClientWorkload::Stream {
            spec: phpbb(),
            scale: 1024,
            seed: 11,
        },
        &NetClientConfig {
            connections: 2,
            requests,
            affinity: true,
            ..NetClientConfig::default()
        },
    );
    let report = tier.finish();
    assert_clean_run(&client, &report, requests);
    assert_eq!(report.server.completed, requests);
    // Real phpbb transactions moved real bytes, not just frame headers.
    assert!(client.net.bytes_out > requests * 100);
    // Every response the server flushed was read (the client waits for
    // each one), so the response direction balances exactly.
    assert_eq!(client.net.bytes_in, report.net.bytes_out);
    // The request direction balances up to the trailing Goodbye frames,
    // which drain may cut off before the handler reads them.
    let goodbye_bytes = 2 * 5; // 2 connections × (4-byte header + tag)
    assert!(report.net.bytes_in >= client.net.bytes_out - goodbye_bytes);
    assert!(report.net.bytes_in <= client.net.bytes_out);
}

#[test]
fn open_loop_overload_reconciles_under_reject_and_shed() {
    for policy in [AdmissionPolicy::Reject, AdmissionPolicy::ShedOldest] {
        for queue_mode in [QueueMode::Global, QueueMode::Sharded] {
            let tier = start_tier(policy, queue_mode, 4);
            let requests = 200;
            let client = run_client(
                tier.local_addr(),
                &ClientWorkload::Count {
                    ops: 64,
                    size: 4096,
                },
                &NetClientConfig {
                    connections: 2,
                    requests,
                    mode: LoadMode::Open {
                        rate_tx_per_sec: 50_000.0,
                    },
                    ..NetClientConfig::default()
                },
            );
            let report = tier.finish();
            assert_clean_run(&client, &report, requests);
            match policy {
                AdmissionPolicy::Reject => assert_eq!(client.shed_accepted, 0),
                AdmissionPolicy::ShedOldest => assert_eq!(client.rejected, 0),
                AdmissionPolicy::Block => unreachable!(),
            }
        }
    }
}

#[test]
fn oversized_transactions_are_refused_not_executed() {
    let server = Server::start(ServerConfig {
        workers: 1,
        static_bytes: 1 << 16,
        ..ServerConfig::default()
    });
    let tier = NetServer::bind(
        server,
        "127.0.0.1:0",
        NetServerConfig {
            handlers: 1,
            max_tx_bytes: 1 << 20,
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback");
    // Each transaction asks for 256 MiB — far over the 1 MiB cap; a
    // worker heap would abort on this, so the front door must refuse it.
    let client = run_client(
        tier.local_addr(),
        &ClientWorkload::Count {
            ops: 64,
            size: 4 << 20,
        },
        &NetClientConfig {
            connections: 1,
            requests: 5,
            ..NetClientConfig::default()
        },
    );
    let report = tier.finish();
    assert_eq!(client.too_large, 5);
    assert_eq!(report.oversized, 5);
    assert_eq!(report.server.submitted, 0, "nothing may reach the queue");
    assert!(report.reconciles());
}

#[test]
fn net_metrics_flow_into_telemetry_samples() {
    let server = Server::start(ServerConfig {
        workers: 2,
        static_bytes: 1 << 16,
        obs: Some(ObsConfig {
            interval: Duration::from_millis(1),
            run: "net-loopback".into(),
            ..ObsConfig::default()
        }),
        ..ServerConfig::default()
    });
    let tier = NetServer::bind(
        server,
        "127.0.0.1:0",
        NetServerConfig {
            handlers: 2,
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback");
    let requests = 40;
    let client = run_client(
        tier.local_addr(),
        &ClientWorkload::Count { ops: 16, size: 128 },
        &NetClientConfig {
            connections: 2,
            requests,
            ..NetClientConfig::default()
        },
    );
    let (report, samples) = tier.finish_with_obs();
    assert_clean_run(&client, &report, requests);
    assert!(!samples.is_empty());
    let last = samples.last().expect("at least one sample");
    let metric = |name: &str| {
        last.counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("metric {name} missing from samples"))
            .value
    };
    // The final sample is taken at drain, after all traffic: cumulative
    // counters must agree exactly with the tier's report.
    assert_eq!(metric("net_requests"), report.requests);
    assert_eq!(metric("net_conns_accepted"), report.net.conns_accepted);
    assert_eq!(metric("net_bytes_in"), report.net.bytes_in);
    assert_eq!(metric("net_bytes_out"), report.net.bytes_out);
    assert_eq!(metric("net_protocol_errors"), 0);
}
