//! Property tests for the wire protocol.
//!
//! The decoder sits on the trust boundary: everything on the other side
//! of the socket is adversarial. These properties pin down its contract
//! from both sides —
//!
//! * **total on valid input**: any encodable frame round-trips exactly,
//!   whole streams of frames survive arbitrary re-chunking, and a
//!   1-byte-at-a-time split-read torture yields `Ok(None)` at every
//!   prefix and the frame at the end;
//! * **total on hostile input**: arbitrary bytes, truncated bodies with
//!   lying length prefixes, and oversized announcements all come back as
//!   typed [`FrameError`]s — the decoder never panics and never
//!   allocates proportionally to an unvalidated length field.

use proptest::prelude::*;
use webmm_net::frame::HEADER_LEN;
use webmm_net::{encode, Decoder, Frame, FrameError, Status, TxBody};
use webmm_workload::WorkOp;

fn work_op() -> impl Strategy<Value = WorkOp> {
    prop_oneof![
        (any::<u64>(), 0u64..(1 << 32)).prop_map(|(id, size)| WorkOp::Malloc { id, size }),
        any::<u64>().prop_map(|id| WorkOp::Free { id }),
        (any::<u64>(), 0u64..(1 << 32)).prop_map(|(id, new_size)| WorkOp::Realloc { id, new_size }),
        (any::<u64>(), any::<bool>()).prop_map(|(id, write)| WorkOp::Touch { id, write }),
        any::<u64>().prop_map(|instr| WorkOp::Compute { instr }),
        (any::<u64>(), any::<u64>()).prop_map(|(offset, len)| WorkOp::StaticTouch { offset, len }),
        Just(WorkOp::EndTx),
    ]
}

fn tx_body() -> impl Strategy<Value = TxBody> {
    prop_oneof![
        (any::<u32>(), any::<u32>()).prop_map(|(ops, size)| TxBody::Count { ops, size }),
        collection::vec(work_op(), 0..40).prop_map(TxBody::Ops),
    ]
}

fn submit() -> impl Strategy<Value = Frame> {
    (any::<u64>(), any::<bool>(), any::<u64>(), tx_body()).prop_map(
        |(request_id, has_affinity, key, body)| Frame::Submit {
            request_id,
            affinity: has_affinity.then_some(key),
            body,
        },
    )
}

fn frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        4 => submit(),
        1 => Just(Frame::Ping),
        1 => Just(Frame::Goodbye),
        2 => (any::<u64>(), 0u8..5u8).prop_map(|(request_id, code)| Frame::Status {
            request_id,
            status: Status::from_code(code).expect("codes 0..5 are valid"),
        }),
        1 => Just(Frame::Pong),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// encode → decode is the identity, and decode consumes exactly the
    /// encoded bytes.
    #[test]
    fn any_frame_round_trips(f in frame()) {
        let mut buf = Vec::new();
        encode(&f, &mut buf);
        let (back, used) = Decoder::new()
            .decode(&buf)
            .expect("valid encoding decodes")
            .expect("complete frame decodes");
        prop_assert_eq!(back, f);
        prop_assert_eq!(used, buf.len());
    }

    /// Split-read torture: arriving one byte at a time, every proper
    /// prefix is `Ok(None)` ("need more") and the full buffer yields the
    /// frame — no prefix is ever an error, because a partial read is not
    /// a protocol violation.
    #[test]
    fn one_byte_at_a_time_is_need_more_until_complete(f in frame()) {
        let mut wire = Vec::new();
        encode(&f, &mut wire);
        let d = Decoder::new();
        let mut rbuf = Vec::new();
        for (i, b) in wire.iter().enumerate() {
            rbuf.push(*b);
            let step = d.decode(&rbuf).expect("prefixes of valid frames never error");
            if i + 1 < wire.len() {
                prop_assert_eq!(step, None, "premature decode at byte {}", i);
            } else {
                let (back, used) = step.expect("complete at the last byte");
                prop_assert_eq!(back, f);
                prop_assert_eq!(used, wire.len());
            }
        }
    }

    /// A whole stream of frames survives arbitrary re-chunking: however
    /// the bytes are sliced, the reassembly loop recovers exactly the
    /// original frame sequence.
    #[test]
    fn frame_streams_survive_rechunking(
        frames in collection::vec(frame(), 1..8),
        chunks in collection::vec(1usize..9, 1..64),
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            encode(f, &mut wire);
        }
        let d = Decoder::new();
        let mut rbuf: Vec<u8> = Vec::new();
        let mut out = Vec::new();
        let mut fed = 0;
        let mut chunk_iter = chunks.iter().cycle();
        while fed < wire.len() {
            let n = (*chunk_iter.next().expect("cycle")).min(wire.len() - fed);
            rbuf.extend_from_slice(&wire[fed..fed + n]);
            fed += n;
            while let Some((f, used)) = d.decode(&rbuf).expect("valid stream") {
                out.push(f);
                rbuf.drain(..used);
            }
        }
        prop_assert!(rbuf.is_empty(), "no bytes may be left over");
        prop_assert_eq!(out, frames);
    }

    /// Truncation *inside* the length-delimited body — a lying length
    /// prefix claiming a shorter body over real frame bytes — is a typed
    /// error, never a success and never a panic.
    #[test]
    fn truncated_bodies_are_typed_errors(f in submit(), cut_seed in any::<u64>()) {
        let mut wire = Vec::new();
        encode(&f, &mut wire);
        let body_len = wire.len() - HEADER_LEN;
        // Submit bodies are always at least 2 bytes (tag + fields).
        prop_assert!(body_len >= 2);
        let cut = 1 + (cut_seed as usize) % (body_len - 1); // 1..body_len
        wire[..HEADER_LEN].copy_from_slice(&(cut as u32).to_le_bytes());
        let got = Decoder::new().decode(&wire[..HEADER_LEN + cut]);
        prop_assert!(got.is_err(), "cut at {} of {} must not decode: {:?}", cut, body_len, got);
    }

    /// Arbitrary bytes never panic the decoder, and whatever it claims
    /// to consume actually exists in the buffer.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in collection::vec(any::<u8>(), 0..512)) {
        if let Ok(Some((_, used))) = Decoder::new().decode(&bytes) {
            prop_assert!(used <= bytes.len());
            prop_assert!(used >= HEADER_LEN);
        }
    }

    /// A length prefix above the configured cap is refused as
    /// `Oversized` before any body byte is examined or buffered,
    /// whatever follows it.
    #[test]
    fn oversized_announcements_are_refused_up_front(
        extra in 1u32..1000,
        junk in collection::vec(any::<u8>(), 0..32),
    ) {
        let max = 1024usize;
        let mut wire = (max as u32 + extra).to_le_bytes().to_vec();
        wire.extend_from_slice(&junk);
        let got = Decoder::new().with_max_frame(max).decode(&wire);
        prop_assert_eq!(
            got,
            Err(FrameError::Oversized { len: max + extra as usize, max })
        );
    }
}
