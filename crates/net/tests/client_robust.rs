//! Client failure-mode tests against misbehaving servers.
//!
//! The load generator must *observe* failure, never hang on it or paper
//! over it: a silent server is a counted timeout, a mid-request
//! disconnect is a counted loss (and explicitly not a retry — the
//! server may have admitted the transaction before the connection died,
//! and a retry would double-submit), and an unreachable server exhausts
//! the bounded backoff schedule and is given up on. Each test stands up
//! a deliberately broken server on loopback and asserts the client both
//! returns promptly and books the failure under the right counter.

use std::io::Read;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use webmm_net::{run_client, ClientWorkload, NetClientConfig};

fn quick_config(requests: u64) -> NetClientConfig {
    NetClientConfig {
        connections: 1,
        requests,
        request_timeout: Duration::from_millis(200),
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(5),
        max_attempts: 3,
        ..NetClientConfig::default()
    }
}

const WORKLOAD: ClientWorkload = ClientWorkload::Count { ops: 4, size: 64 };

/// A server that accepts and then never says anything. The client must
/// time each request out, not hang.
#[test]
fn accept_then_silence_times_out_each_request() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Keep accepted sockets alive (dropping them would turn the
            // scenario into a disconnect) but never write a byte.
            let mut held = Vec::new();
            while !stop.load(Ordering::Acquire) {
                listener.set_nonblocking(true).expect("nonblocking");
                if let Ok((s, _)) = listener.accept() {
                    held.push(s);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let started = Instant::now();
    let report = run_client(addr, &WORKLOAD, &quick_config(3));
    stop.store(true, Ordering::Release);
    server.join().expect("silent server thread");

    assert_eq!(report.sent, 3, "requests are written before the silence");
    assert_eq!(report.timeouts, 3, "every request must be booked a timeout");
    assert_eq!(report.responses, 0);
    assert_eq!(report.disconnects, 0);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeouts must be bounded by the configured deadline"
    );
}

/// A server that accepts, reads the request, and slams the connection
/// shut. The client books a disconnect (not a retry, not a hang) and
/// moves on to the next request over a fresh connection.
#[test]
fn mid_request_disconnect_is_counted_not_retried() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let server = std::thread::spawn(move || {
        // Serve exactly 2 connections: read a bit, then hang up.
        for _ in 0..2 {
            let (mut s, _) = listener.accept().expect("accept");
            let mut buf = [0u8; 64];
            let _ = s.read(&mut buf);
            drop(s); // RST/FIN mid-request
        }
    });

    let report = run_client(addr, &WORKLOAD, &quick_config(2));
    server.join().expect("slamming server thread");

    assert_eq!(report.sent, 2);
    assert_eq!(report.responses, 0);
    assert_eq!(report.disconnects, 2, "each loss must be booked once");
    assert_eq!(
        report.net.conns_accepted, 2,
        "each request must have used a fresh connection — no retry on a dead one"
    );
}

/// Nobody listening at all: the bounded backoff schedule runs dry, the
/// request is given up, and the client returns instead of spinning.
#[test]
fn unreachable_server_exhausts_backoff_and_gives_up() {
    // Bind to learn a free port, then close it so connects are refused.
    let addr: SocketAddr = {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("local addr")
    };

    let started = Instant::now();
    let report = run_client(addr, &WORKLOAD, &quick_config(4));

    assert_eq!(report.sent, 0);
    assert_eq!(report.gave_up, 1, "the thread gives up once, then retires");
    assert!(report.reconnects >= 2, "backoff retries must have happened");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "giving up must be prompt under a small backoff bound"
    );
}
