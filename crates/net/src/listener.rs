//! The connection front-end: acceptor, handler pool, graceful drain.
//!
//! [`NetServer::bind`] puts a real TCP face on a running
//! [`Server`]: one acceptor thread hands accepted sockets to a fixed
//! pool of connection-handler threads through a bounded hand-off queue
//! (connections beyond the backlog cap are refused, counted, and
//! closed — admission control applies to *connections* before it ever
//! applies to transactions). Each handler serves one keep-alive
//! connection at a time with reused buffers (see `conn.rs`).
//!
//! The bound address is exported ([`NetServer::local_addr`]) so callers
//! can bind `127.0.0.1:0` and let the OS pick a free port — parallel
//! tests never collide.
//!
//! **Graceful drain** ([`NetServer::finish`]): set the draining flag,
//! stop the acceptor (a loopback self-connect unblocks `accept`), close
//! the hand-off queue (still-queued sockets are dropped and counted),
//! shut down the *read* side of every in-flight connection — handlers
//! wake from `read` with EOF, flush any responses they owe, and exit —
//! then drain the inner server. The accounting identity
//! `submitted == completed + shed` is asserted by the inner server, and
//! [`NetReport::reconciles`] extends it across the wire: every response
//! status the front-end issued is reconciled against the queue's
//! admission counters.
//!
//! With telemetry attached to the inner server, the front-end registers
//! the [`net_metric`](webmm_obs::net_metric) family in the same
//! [`MetricsRegistry`](webmm_obs::MetricsRegistry) the workers use, so
//! connection churn, byte traffic and protocol errors appear in every
//! live `ObsSample` without new sampler machinery.

use crate::conn::{serve_conn, ConnBuffers, ConnShared, ConnTallies};
use crate::frame::{Decoder, DEFAULT_MAX_FRAME, DEFAULT_MAX_OPS};
use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use webmm_obs::{net_metric, MetricHandle, MetricKind, MetricsRegistry, NetCounters};
use webmm_server::{ObsSample, Server, ServerReport};

/// Configuration of the TCP front-end.
#[derive(Clone, Copy, Debug)]
pub struct NetServerConfig {
    /// Connection-handler threads. Each serves one connection at a time,
    /// so persistent-connection clients need `handlers >= connections`
    /// to avoid parking whole connections in the backlog.
    pub handlers: usize,
    /// Accepted-but-unserved connections held for a free handler;
    /// beyond this the acceptor refuses (closes) new sockets.
    pub backlog: usize,
    /// Keep-alive connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// Cap on one frame's body length, bytes.
    pub max_frame: usize,
    /// Cap on ops carried by one submit frame.
    pub max_ops: usize,
    /// Cap on heap bytes one transaction may request; larger requests
    /// are refused with `TooLarge` before admission.
    pub max_tx_bytes: u64,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            handlers: 4,
            backlog: 64,
            idle_timeout: Duration::from_secs(5),
            max_frame: DEFAULT_MAX_FRAME,
            max_ops: DEFAULT_MAX_OPS,
            max_tx_bytes: 64 << 20,
        }
    }
}

/// Pre-resolved registry handles for the front-end's metrics (see
/// [`net_metric`]). One set per handler thread on that handler's shard;
/// the `conns_open` gauge is a single shard-0 handle shared by everyone
/// and driven from one atomic, so concurrent handlers can't clobber
/// each other's contribution.
pub(crate) struct NetMetrics {
    pub conns_open: MetricHandle,
    pub conns_accepted: MetricHandle,
    pub conns_dropped: MetricHandle,
    pub bytes_in: MetricHandle,
    pub bytes_out: MetricHandle,
    pub requests: MetricHandle,
    pub protocol_errors: MetricHandle,
}

impl NetMetrics {
    fn new(registry: &MetricsRegistry, shard: usize) -> Self {
        let shard = shard % registry.shards();
        NetMetrics {
            conns_open: registry.handle(net_metric::CONNS_OPEN, MetricKind::Gauge, 0),
            conns_accepted: registry.handle(net_metric::CONNS_ACCEPTED, MetricKind::Counter, shard),
            conns_dropped: registry.handle(net_metric::CONNS_DROPPED, MetricKind::Counter, shard),
            bytes_in: registry.handle(net_metric::BYTES_IN, MetricKind::Counter, shard),
            bytes_out: registry.handle(net_metric::BYTES_OUT, MetricKind::Counter, shard),
            requests: registry.handle(net_metric::REQUESTS, MetricKind::Counter, shard),
            protocol_errors: registry.handle(net_metric::PROTOCOL_ERRORS, MetricKind::Counter, 0),
        }
    }
}

/// The accepted-socket hand-off between acceptor and handlers.
struct Pending {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

/// State shared by acceptor and handlers.
struct Shared {
    ctx: ConnShared,
    pending: Mutex<Pending>,
    available: Condvar,
    backlog: usize,
    /// A read-shutdown clone of each handler's current socket, indexed
    /// by handler — drain uses it to wake handlers parked in `read`.
    active: Vec<Mutex<Option<TcpStream>>>,
    /// Connections currently being served (drives the open-conns gauge).
    open: AtomicU64,
}

/// A TCP serving tier wrapped around a running [`Server`].
pub struct NetServer {
    server: Server,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<ConnTallies>,
    handlers: Vec<JoinHandle<ConnTallies>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
    /// starts serving the wire protocol in front of `server`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    ///
    /// # Panics
    ///
    /// Panics if `config.handlers` or `config.backlog` is zero.
    pub fn bind<A: ToSocketAddrs>(
        server: Server,
        addr: A,
        config: NetServerConfig,
    ) -> io::Result<NetServer> {
        assert!(config.handlers > 0, "front-end needs at least one handler");
        assert!(config.backlog > 0, "backlog must be nonzero");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let pool = server.buffer_pool();
        let decoder = Decoder::new()
            .with_max_frame(config.max_frame)
            .with_max_ops(config.max_ops)
            .with_pool(Arc::clone(&pool));
        let shared = Arc::new(Shared {
            ctx: ConnShared {
                ingress: server.ingress(),
                pool,
                decoder,
                next_tx_id: AtomicU64::new(0),
                draining: AtomicBool::new(false),
                idle_timeout: config.idle_timeout,
                max_tx_bytes: config.max_tx_bytes,
            },
            pending: Mutex::new(Pending {
                conns: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            backlog: config.backlog,
            active: (0..config.handlers).map(|_| Mutex::new(None)).collect(),
            open: AtomicU64::new(0),
        });
        let registry = server.telemetry().map(|t| &t.registry);
        let handlers = (0..config.handlers)
            .map(|h| {
                let shared = Arc::clone(&shared);
                let metrics = registry.map(|r| NetMetrics::new(r, h));
                std::thread::Builder::new()
                    .name(format!("webmm-net-conn-{h}"))
                    .spawn(move || handler_loop(h, &shared, metrics.as_ref()))
                    .expect("spawn net handler")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            let metrics = registry.map(|r| NetMetrics::new(r, 0));
            std::thread::Builder::new()
                .name("webmm-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared, metrics.as_ref()))
                .expect("spawn net acceptor")
        };
        Ok(NetServer {
            server,
            local_addr,
            shared,
            acceptor,
            handlers,
        })
    }

    /// The address the listener actually bound — hand this to clients
    /// when the bind address used port 0.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The inner transaction server (e.g. for queue depth or telemetry).
    #[must_use]
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Gracefully drains the whole tier and returns the merged report:
    /// stop accepting, wake and retire every connection handler (owed
    /// responses are flushed), then drain the inner server. See the
    /// module docs for the exact sequence.
    ///
    /// # Panics
    ///
    /// Panics if a front-end thread panicked, or if the inner server's
    /// accounting identity fails (see `Server::finish`).
    #[must_use]
    pub fn finish(self) -> NetReport {
        self.finish_with_obs().0
    }

    /// Like [`NetServer::finish`], but also returns the telemetry time
    /// series (empty without telemetry on the inner server).
    ///
    /// # Panics
    ///
    /// Same conditions as [`NetServer::finish`].
    #[must_use]
    pub fn finish_with_obs(self) -> (NetReport, Vec<ObsSample>) {
        self.shared.ctx.draining.store(true, Ordering::Release);
        let mut tallies = ConnTallies::default();
        {
            let mut pending = self.shared.pending.lock().expect("pending lock");
            pending.closed = true;
            // Accepted but never served: counted dropped, sockets closed.
            tallies.net.conns_dropped += pending.conns.len() as u64;
            pending.conns.clear();
        }
        self.shared.available.notify_all();
        // Unblock the acceptor's blocking accept() with a self-connect.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        tallies.merge(&self.acceptor.join().expect("net acceptor panicked"));
        // Wake handlers parked in read(): EOF their read side; they
        // flush what they owe and exit.
        for slot in &self.shared.active {
            if let Some(stream) = slot.lock().expect("active slot lock").as_ref() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        for h in self.handlers {
            tallies.merge(&h.join().expect("net handler panicked"));
        }
        let (server, samples) = self.server.finish_with_obs();
        let report = NetReport {
            net: tallies.net,
            requests: tallies.requests,
            pings: tallies.pings,
            oversized: tallies.oversized,
            accepted: tallies.accepted,
            shed_accepted: tallies.shed_accepted,
            rejected: tallies.rejected,
            draining: tallies.draining,
            server,
        };
        (report, samples)
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Shared,
    metrics: Option<&NetMetrics>,
) -> ConnTallies {
    let mut t = ConnTallies::default();
    loop {
        if let Ok((stream, _)) = listener.accept() {
            if shared.ctx.draining.load(Ordering::Acquire) {
                // The drain self-connect, or a late arrival racing it.
                drop(stream);
                break;
            }
            t.net.conns_accepted += 1;
            if let Some(m) = metrics {
                m.conns_accepted.add(1);
            }
            let mut pending = shared.pending.lock().expect("pending lock");
            if pending.closed || pending.conns.len() >= shared.backlog {
                drop(pending);
                t.net.conns_dropped += 1;
                if let Some(m) = metrics {
                    m.conns_dropped.add(1);
                }
                drop(stream);
            } else {
                pending.conns.push_back(stream);
                drop(pending);
                shared.available.notify_one();
            }
        } else {
            if shared.ctx.draining.load(Ordering::Acquire) {
                break;
            }
            // Transient accept errors (per-connection resets) are not
            // fatal to the acceptor.
            t.net.conns_dropped += 1;
        }
    }
    t
}

fn handler_loop(handler: usize, shared: &Shared, metrics: Option<&NetMetrics>) -> ConnTallies {
    let mut t = ConnTallies::default();
    let mut bufs = ConnBuffers::new();
    loop {
        let stream = {
            let mut pending = shared.pending.lock().expect("pending lock");
            loop {
                if let Some(s) = pending.conns.pop_front() {
                    break Some(s);
                }
                if pending.closed {
                    break None;
                }
                pending = shared.available.wait(pending).expect("pending lock");
            }
        };
        let Some(stream) = stream else { break };
        // Register a clone so drain can EOF our read side mid-read.
        *shared.active[handler].lock().expect("active slot lock") = stream.try_clone().ok();
        let open = shared.open.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(m) = &metrics {
            m.conns_open.set(open);
        }
        serve_conn(stream, &shared.ctx, &mut bufs, &mut t, metrics);
        let open = shared.open.fetch_sub(1, Ordering::Relaxed) - 1;
        if let Some(m) = &metrics {
            m.conns_open.set(open);
        }
        *shared.active[handler].lock().expect("active slot lock") = None;
    }
    t
}

/// Everything the TCP tier and the server behind it produced,
/// JSON-serializable.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct NetReport {
    /// Front-end traffic counters.
    pub net: NetCounters,
    /// Submit requests answered.
    pub requests: u64,
    /// Pings answered.
    pub pings: u64,
    /// Requests refused with `TooLarge` (never offered to the queue).
    pub oversized: u64,
    /// `Accepted` responses issued.
    pub accepted: u64,
    /// `AcceptedSheddingOldest` responses issued.
    pub shed_accepted: u64,
    /// `Rejected` responses issued.
    pub rejected: u64,
    /// `Draining` responses issued (never offered to the queue).
    pub draining: u64,
    /// The inner server's report (accounting identity already checked).
    pub server: ServerReport,
}

impl NetReport {
    /// The cross-tier accounting identity: every response status issued
    /// over the wire reconciles exactly with the ingress queue's
    /// admission counters —
    /// `accepted + shed_accepted + rejected == submitted`,
    /// `shed == rejected + shed_accepted`, and therefore
    /// `completed == accepted` (every shed-oldest victim was an earlier
    /// `Accepted` response). `Draining`/`TooLarge` refusals never reach
    /// the queue, so they appear in neither side of the identity.
    #[must_use]
    pub fn reconciles(&self) -> bool {
        self.accepted + self.shed_accepted + self.rejected == self.server.submitted
            && self.server.shed == self.rejected + self.shed_accepted
            && self.server.submitted == self.server.completed + self.server.shed
    }

    /// Pretty-printed JSON rendering.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot for this type).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("NetReport serializes")
    }
}
