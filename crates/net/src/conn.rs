//! The per-connection serving loop.
//!
//! Each accepted socket is served by one handler thread at a time:
//! read a chunk, decode every complete frame in the reassembly buffer
//! (partial frames wait for the next chunk — the decoder is built for
//! split reads), answer each request into a write buffer, flush once per
//! chunk. The read and write buffers belong to the handler and are
//! reused across requests *and* across connections, and decoded op
//! vectors come from the server's [`TxBufferPool`] — the network path
//! rides the same recycled-buffer loop as the in-process generators.
//!
//! Back-pressure falls out of the blocking design: under the `Block`
//! admission policy a full ingress queue stalls the handler inside
//! `submit`, the handler stops reading, the kernel's receive window
//! fills, and the client's `write` eventually blocks — TCP flow control
//! carries the queue's back-pressure all the way to the load generator.
//! Under `Reject`/`ShedOldest` the refusal travels back explicitly as a
//! [`Status`] response instead.
//!
//! Nothing a peer sends can panic this loop: malformed frames are typed
//! [`FrameError`](crate::FrameError)s that drop the connection (counted,
//! never resynchronized), and well-formed transactions whose requested
//! bytes exceed the configured cap are refused with
//! [`Status::TooLarge`] *before* admission, so a hostile `Malloc` can
//! not drive a worker heap into its out-of-memory panic.

use crate::frame::{encode, Decoder, Frame, Status, TxBody};
use crate::listener::NetMetrics;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use webmm_obs::NetCounters;
use webmm_server::{Ingress, Transaction, TxBufferPool};
use webmm_workload::WorkOp;

/// State shared by every connection handler of one [`NetServer`]
/// (`crate::NetServer`).
pub(crate) struct ConnShared {
    /// Submission handle into the inner server.
    pub ingress: Ingress,
    /// The inner server's op-buffer pool (decoded and expanded
    /// transactions draw from it; refused ones return to it).
    pub pool: Arc<TxBufferPool>,
    /// Frame decoder with the configured limits, pool attached.
    pub decoder: Decoder,
    /// Server-side transaction id source (load-generator role).
    pub next_tx_id: AtomicU64,
    /// Set by drain: stop taking new requests, close connections.
    pub draining: AtomicBool,
    /// Keep-alive idle limit per connection.
    pub idle_timeout: Duration,
    /// Cap on heap bytes one transaction may request.
    pub max_tx_bytes: u64,
}

/// Per-handler counters, merged into the `NetReport` at drain.
#[derive(Clone, Debug, Default)]
pub(crate) struct ConnTallies {
    /// Traffic counters (shared schema with the client side).
    pub net: NetCounters,
    /// Submit requests answered.
    pub requests: u64,
    /// Pings answered.
    pub pings: u64,
    /// Responses by status.
    pub accepted: u64,
    pub shed_accepted: u64,
    pub rejected: u64,
    pub draining: u64,
    pub oversized: u64,
}

impl ConnTallies {
    pub(crate) fn merge(&mut self, o: &ConnTallies) {
        self.net.merge(&o.net);
        self.requests += o.requests;
        self.pings += o.pings;
        self.accepted += o.accepted;
        self.shed_accepted += o.shed_accepted;
        self.rejected += o.rejected;
        self.draining += o.draining;
        self.oversized += o.oversized;
    }

    fn count_status(&mut self, status: Status) {
        match status {
            Status::Accepted => self.accepted += 1,
            Status::AcceptedSheddingOldest => self.shed_accepted += 1,
            Status::Rejected => self.rejected += 1,
            Status::Draining => self.draining += 1,
            Status::TooLarge => self.oversized += 1,
        }
    }
}

/// What the connection loop should do after a frame was handled.
enum Flow {
    Continue,
    /// Orderly close (Goodbye).
    CloseClean,
    /// Peer violated the protocol; drop the connection.
    CloseError,
}

/// Reusable per-handler buffers, kept across connections so a busy
/// front-end allocates nothing per request in steady state.
pub(crate) struct ConnBuffers {
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    chunk: Box<[u8; 16 * 1024]>,
}

impl ConnBuffers {
    pub(crate) fn new() -> Self {
        ConnBuffers {
            rbuf: Vec::with_capacity(16 * 1024),
            wbuf: Vec::with_capacity(4 * 1024),
            chunk: Box::new([0u8; 16 * 1024]),
        }
    }
}

/// Serves one connection to completion: keep-alive request/response
/// until the peer says goodbye, goes quiet past the idle timeout,
/// misbehaves, or the server drains.
pub(crate) fn serve_conn(
    mut stream: TcpStream,
    ctx: &ConnShared,
    bufs: &mut ConnBuffers,
    t: &mut ConnTallies,
    metrics: Option<&NetMetrics>,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(ctx.idle_timeout)).is_err() {
        t.net.conns_dropped += 1;
        return;
    }
    bufs.rbuf.clear();
    bufs.wbuf.clear();
    loop {
        if ctx.draining.load(Ordering::Acquire) {
            // Every response owed so far was flushed after its chunk;
            // drain just stops reading new requests.
            break;
        }
        let n = match stream.read(&mut bufs.chunk[..]) {
            Ok(0) => break, // peer closed, or drain shut our read side
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                break; // keep-alive idle timeout
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                t.net.conns_dropped += 1;
                if let Some(m) = metrics {
                    m.conns_dropped.add(1);
                }
                return;
            }
        };
        t.net.bytes_in += n as u64;
        if let Some(m) = metrics {
            m.bytes_in.add(n as u64);
        }
        bufs.rbuf.extend_from_slice(&bufs.chunk[..n]);
        let mut consumed = 0usize;
        let mut flow = Flow::Continue;
        loop {
            match ctx.decoder.decode(&bufs.rbuf[consumed..]) {
                Ok(Some((frame, used))) => {
                    consumed += used;
                    t.net.frames_in += 1;
                    flow = handle_frame(frame, ctx, t, metrics, &mut bufs.wbuf);
                    if !matches!(flow, Flow::Continue) {
                        break;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    t.net.protocol_errors += 1;
                    if let Some(m) = metrics {
                        m.protocol_errors.add(1);
                    }
                    flow = Flow::CloseError;
                    break;
                }
            }
        }
        bufs.rbuf.drain(..consumed);
        // Flush what we owe even on a close path, so in-flight responses
        // are never lost to a later protocol error in the same chunk.
        if !flush(&mut stream, &mut bufs.wbuf, t, metrics) {
            t.net.conns_dropped += 1;
            if let Some(m) = metrics {
                m.conns_dropped.add(1);
            }
            return;
        }
        match flow {
            Flow::Continue => {}
            Flow::CloseClean => break,
            Flow::CloseError => {
                t.net.conns_dropped += 1;
                if let Some(m) = metrics {
                    m.conns_dropped.add(1);
                }
                return;
            }
        }
    }
    t.net.conns_closed += 1;
}

/// Writes the pending responses out; `false` on I/O failure.
fn flush(
    stream: &mut TcpStream,
    wbuf: &mut Vec<u8>,
    t: &mut ConnTallies,
    metrics: Option<&NetMetrics>,
) -> bool {
    if wbuf.is_empty() {
        return true;
    }
    let ok = stream.write_all(wbuf).is_ok();
    if ok {
        t.net.bytes_out += wbuf.len() as u64;
        if let Some(m) = metrics {
            m.bytes_out.add(wbuf.len() as u64);
        }
    }
    wbuf.clear();
    ok
}

fn handle_frame(
    frame: Frame,
    ctx: &ConnShared,
    t: &mut ConnTallies,
    metrics: Option<&NetMetrics>,
    wbuf: &mut Vec<u8>,
) -> Flow {
    match frame {
        Frame::Submit {
            request_id,
            affinity,
            body,
        } => {
            t.requests += 1;
            if let Some(m) = metrics {
                m.requests.add(1);
            }
            let status = submit(ctx, affinity, body);
            t.count_status(status);
            encode(&Frame::Status { request_id, status }, wbuf);
            t.net.frames_out += 1;
            Flow::Continue
        }
        Frame::Ping => {
            t.pings += 1;
            encode(&Frame::Pong, wbuf);
            t.net.frames_out += 1;
            Flow::Continue
        }
        Frame::Goodbye => Flow::CloseClean,
        // Response frames arriving at the server are a protocol error.
        Frame::Status { .. } | Frame::Pong => {
            t.net.protocol_errors += 1;
            if let Some(m) = metrics {
                m.protocol_errors.add(1);
            }
            Flow::CloseError
        }
    }
}

/// Turns one submit body into an admission outcome, enforcing the size
/// cap and the drain state before the ingress queue sees anything.
fn submit(ctx: &ConnShared, affinity: Option<u64>, body: TxBody) -> Status {
    if body.requested_bytes() > ctx.max_tx_bytes {
        recycle(ctx, body);
        return Status::TooLarge;
    }
    if ctx.draining.load(Ordering::Acquire) || ctx.ingress.is_closed() {
        recycle(ctx, body);
        return Status::Draining;
    }
    let ops = match body {
        TxBody::Count { ops: n, size } => {
            let mut v = ctx.pool.get();
            v.reserve(n as usize + 1);
            for i in 0..n {
                v.push(WorkOp::Malloc {
                    id: u64::from(i),
                    size: u64::from(size),
                });
            }
            v.push(WorkOp::EndTx);
            v
        }
        TxBody::Ops(v) => v,
    };
    let tx = Transaction {
        id: ctx.next_tx_id.fetch_add(1, Ordering::Relaxed),
        ops,
    };
    let admission = match affinity {
        Some(key) => ctx.ingress.submit_affinity(key, tx),
        None => ctx.ingress.submit(tx),
    };
    Status::from_admission(admission)
}

/// Returns a refused body's op buffer to the pool (front-door refusals
/// recycle exactly like completions and sheds do).
fn recycle(ctx: &ConnShared, body: TxBody) {
    if let TxBody::Ops(ops) = body {
        ctx.pool.put(ops);
    }
}
