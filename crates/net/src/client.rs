//! The network load generator.
//!
//! [`run_client`] drives a [`NetServer`](crate::NetServer) (or anything
//! speaking the wire protocol) over `connections` persistent TCP
//! connections, one thread per connection, sharing one global request
//! sequence — the network analogue of the in-process drivers in
//! `webmm_server::loadgen`:
//!
//! * **closed loop** ([`LoadMode::Closed`]) — each connection submits
//!   its next request only after the previous response arrived; offered
//!   load self-limits to what the server admits.
//! * **open loop** ([`LoadMode::Open`]) — request *k* is due at
//!   `start + k/rate` regardless of completions, the web-facing arrival
//!   model; pair the server with `Reject`/`ShedOldest` to study
//!   overload behind a real socket.
//!
//! The client is built to observe failure, not hang on it: every read
//! carries the request timeout, a dead or misbehaving connection is
//! dropped and re-established under bounded exponential backoff
//! ([`backoff_delay`]), and a request that fails mid-flight is *never
//! retried* — the server may have admitted it before the connection
//! died, and a retry would double-submit and break the end-to-end
//! accounting. Failed requests are counted (`timeouts`, `disconnects`,
//! `gave_up`) and the sequence moves on.
//!
//! Latency is recorded client-side into the same log2 histogram the
//! server workers use ([`LatencyHistogram`]), so client-observed and
//! server-observed distributions are directly comparable.

use crate::frame::{encode, Decoder, Frame, Status, TxBody, DEFAULT_MAX_FRAME};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use webmm_obs::{LatencyHistogram, LatencySummary, NetCounters};
use webmm_workload::{TxStream, WorkOp, WorkloadSpec};

/// How arrivals are scheduled across the connection pool.
#[derive(Clone, Copy, Debug)]
pub enum LoadMode {
    /// Submit the next request only after the previous response.
    Closed,
    /// Fixed schedule: request `k` is due at `start + k/rate`,
    /// independent of completions.
    Open {
        /// Aggregate arrival rate across all connections.
        rate_tx_per_sec: f64,
    },
}

/// What each submit request carries.
#[derive(Clone, Debug)]
pub enum ClientWorkload {
    /// Compact `Count` bodies: the server synthesizes `ops` mallocs of
    /// `size` bytes per transaction. Minimal wire traffic; exercises
    /// the serving tier, not the workload model.
    Count {
        /// Mallocs per transaction.
        ops: u32,
        /// Bytes per malloc.
        size: u32,
    },
    /// Inline op payloads drawn from the deterministic workload
    /// generator — the paper's workload model shipped over the wire.
    /// All connections share one stream, so the union of sent ops is
    /// exactly the stream's first `requests` transactions and a trace
    /// regenerated from the same `(spec, scale, seed)` replays the run.
    Stream {
        /// Workload shape (e.g. `webmm_workload::phpbb()`).
        spec: WorkloadSpec,
        /// Size scale passed to [`TxStream::new`].
        scale: u32,
        /// Stream seed.
        seed: u64,
    },
}

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct NetClientConfig {
    /// Persistent connections (one thread each). The server's handler
    /// pool must be at least this large or whole connections park in
    /// its accept backlog.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: u64,
    /// Arrival schedule.
    pub mode: LoadMode,
    /// Per-request response deadline; on expiry the connection is
    /// dropped and the request counted in `timeouts`.
    pub request_timeout: Duration,
    /// First reconnect backoff delay.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Consecutive failed connects before a connection thread gives up.
    pub max_attempts: u32,
    /// Tag each request with an affinity key (the connection index), so
    /// a sharded ingress queue keeps each connection's transactions on
    /// one shard — session affinity over the wire.
    pub affinity: bool,
    /// Decoder frame cap for responses.
    pub max_frame: usize,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        NetClientConfig {
            connections: 2,
            requests: 100,
            mode: LoadMode::Closed,
            request_timeout: Duration::from_secs(5),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            max_attempts: 6,
            affinity: false,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// What one [`run_client`] run observed, JSON-serializable.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ClientReport {
    /// Traffic counters (client perspective: `conns_accepted` counts
    /// successful connects, `conns_dropped` connections abandoned on
    /// error or timeout).
    pub net: NetCounters,
    /// Requests fully written to a socket.
    pub sent: u64,
    /// Responses received and matched to their request.
    pub responses: u64,
    /// `Accepted` responses.
    pub accepted: u64,
    /// `AcceptedSheddingOldest` responses.
    pub shed_accepted: u64,
    /// `Rejected` responses.
    pub rejected: u64,
    /// `Draining` responses.
    pub draining: u64,
    /// `TooLarge` responses.
    pub too_large: u64,
    /// Requests whose response missed the deadline (never retried).
    pub timeouts: u64,
    /// Requests cut off by a connection failure mid-flight.
    pub disconnects: u64,
    /// Connections re-established after a failure.
    pub reconnects: u64,
    /// Requests abandoned because reconnecting failed `max_attempts`
    /// times in a row (that connection thread then retires).
    pub gave_up: u64,
    /// Client-observed request→response latency.
    pub latency: LatencySummary,
}

/// Bounded exponential backoff: `base * 2^attempt`, saturating at
/// `max`. Pure so the schedule is unit-testable without sockets.
#[must_use]
pub fn backoff_delay(attempt: u32, base: Duration, max: Duration) -> Duration {
    let factor = if attempt >= 32 {
        u32::MAX
    } else {
        1u32 << attempt
    };
    match base.checked_mul(factor) {
        Some(d) => d.min(max),
        None => max,
    }
}

/// Per-thread tallies, merged into the [`ClientReport`].
#[derive(Default)]
struct Tallies {
    net: NetCounters,
    sent: u64,
    responses: u64,
    accepted: u64,
    shed_accepted: u64,
    rejected: u64,
    draining: u64,
    too_large: u64,
    timeouts: u64,
    disconnects: u64,
    reconnects: u64,
    gave_up: u64,
}

impl Tallies {
    fn merge(&mut self, o: &Tallies) {
        self.net.merge(&o.net);
        self.sent += o.sent;
        self.responses += o.responses;
        self.accepted += o.accepted;
        self.shed_accepted += o.shed_accepted;
        self.rejected += o.rejected;
        self.draining += o.draining;
        self.too_large += o.too_large;
        self.timeouts += o.timeouts;
        self.disconnects += o.disconnects;
        self.reconnects += o.reconnects;
        self.gave_up += o.gave_up;
    }

    fn count_status(&mut self, status: Status) {
        match status {
            Status::Accepted => self.accepted += 1,
            Status::AcceptedSheddingOldest => self.shed_accepted += 1,
            Status::Rejected => self.rejected += 1,
            Status::Draining => self.draining += 1,
            Status::TooLarge => self.too_large += 1,
        }
    }
}

/// State shared by all connection threads.
struct SharedLoad {
    next_seq: AtomicU64,
    /// One stream for everyone (`ClientWorkload::Stream`): the union of
    /// sent ops is a prefix of the deterministic stream.
    stream: Option<Mutex<TxStream>>,
    start: Instant,
}

/// Drives `config.requests` requests at `addr` and reports what came
/// back. Returns when every request was answered, timed out, or given
/// up — it does not hang on a dead or silent server.
///
/// # Panics
///
/// Panics if `config.connections` is zero or an internal lock poisons.
#[must_use]
pub fn run_client(
    addr: SocketAddr,
    workload: &ClientWorkload,
    config: &NetClientConfig,
) -> ClientReport {
    assert!(
        config.connections > 0,
        "client needs at least one connection"
    );
    let shared = SharedLoad {
        next_seq: AtomicU64::new(0),
        stream: match workload {
            ClientWorkload::Stream { spec, scale, seed } => {
                Some(Mutex::new(TxStream::new(spec.clone(), *scale, *seed)))
            }
            ClientWorkload::Count { .. } => None,
        },
        start: Instant::now(),
    };
    let mut tallies = Tallies::default();
    let mut hist = LatencyHistogram::new();
    std::thread::scope(|scope| {
        let threads: Vec<_> = (0..config.connections)
            .map(|c| {
                let shared = &shared;
                scope.spawn(move || connection_thread(c as u64, addr, workload, config, shared))
            })
            .collect();
        for t in threads {
            let (tt, th) = t.join().expect("client connection thread panicked");
            tallies.merge(&tt);
            hist.merge(&th);
        }
    });
    ClientReport {
        net: tallies.net,
        sent: tallies.sent,
        responses: tallies.responses,
        accepted: tallies.accepted,
        shed_accepted: tallies.shed_accepted,
        rejected: tallies.rejected,
        draining: tallies.draining,
        too_large: tallies.too_large,
        timeouts: tallies.timeouts,
        disconnects: tallies.disconnects,
        reconnects: tallies.reconnects,
        gave_up: tallies.gave_up,
        latency: hist.summary(),
    }
}

/// One persistent connection worked by one thread.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
}

fn connection_thread(
    conn_id: u64,
    addr: SocketAddr,
    workload: &ClientWorkload,
    config: &NetClientConfig,
    shared: &SharedLoad,
) -> (Tallies, LatencyHistogram) {
    let mut t = Tallies::default();
    let mut hist = LatencyHistogram::new();
    let decoder = Decoder::new().with_max_frame(config.max_frame);
    let mut conn: Option<Conn> = None;
    let mut wbuf = Vec::with_capacity(1024);
    loop {
        let seq = {
            let cur = shared.next_seq.fetch_add(1, Ordering::Relaxed);
            if cur >= config.requests {
                break;
            }
            cur
        };
        if let LoadMode::Open { rate_tx_per_sec } = config.mode {
            let due = shared.start + Duration::from_secs_f64(seq as f64 / rate_tx_per_sec);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        // (Re)connect under bounded backoff. Never retry a *request* —
        // only the connection is retried, and only between requests.
        if conn.is_none() {
            conn = reconnect(addr, config, &mut t);
            if conn.is_none() {
                t.gave_up += 1;
                break; // server unreachable after max_attempts; retire
            }
        }
        let c = conn.as_mut().expect("connection just established");
        wbuf.clear();
        encode(
            &Frame::Submit {
                request_id: seq,
                affinity: config.affinity.then_some(conn_id),
                body: make_body(workload, shared),
            },
            &mut wbuf,
        );
        let sent_at = Instant::now();
        if c.stream.write_all(&wbuf).is_err() {
            t.disconnects += 1;
            t.net.conns_dropped += 1;
            conn = None;
            continue; // next seq; this request is lost, not retried
        }
        t.sent += 1;
        t.net.bytes_out += wbuf.len() as u64;
        t.net.frames_out += 1;
        if let Some(status) =
            await_status(c, &decoder, seq, sent_at, config.request_timeout, &mut t)
        {
            hist.record(sent_at.elapsed().as_nanos() as u64);
            t.responses += 1;
            t.count_status(status);
        } else {
            // Timeout, disconnect or protocol violation: already
            // counted by await_status; drop the connection.
            t.net.conns_dropped += 1;
            conn = None;
        }
    }
    if let Some(mut c) = conn {
        // Orderly close: best-effort Goodbye so the server logs a clean
        // close instead of a drop.
        wbuf.clear();
        encode(&Frame::Goodbye, &mut wbuf);
        if c.stream.write_all(&wbuf).is_ok() {
            t.net.bytes_out += wbuf.len() as u64;
            t.net.frames_out += 1;
        }
        t.net.conns_closed += 1;
    }
    (t, hist)
}

/// Builds the next request body.
fn make_body(workload: &ClientWorkload, shared: &SharedLoad) -> TxBody {
    match workload {
        ClientWorkload::Count { ops, size } => TxBody::Count {
            ops: *ops,
            size: *size,
        },
        ClientWorkload::Stream { .. } => {
            let mut stream = shared
                .stream
                .as_ref()
                .expect("stream workload has a stream")
                .lock()
                .expect("stream lock");
            let mut ops = Vec::new();
            loop {
                let op = stream.next_op();
                ops.push(op);
                if op == WorkOp::EndTx {
                    break;
                }
            }
            TxBody::Ops(ops)
        }
    }
}

/// Connects with exponential backoff; `None` after `max_attempts`
/// consecutive failures.
fn reconnect(addr: SocketAddr, config: &NetClientConfig, t: &mut Tallies) -> Option<Conn> {
    for attempt in 0..config.max_attempts {
        if attempt > 0 {
            std::thread::sleep(backoff_delay(
                attempt - 1,
                config.backoff_base,
                config.backoff_max,
            ));
            t.reconnects += 1;
        }
        if let Ok(stream) = TcpStream::connect_timeout(&addr, config.request_timeout) {
            if stream
                .set_read_timeout(Some(config.request_timeout))
                .is_ok()
            {
                let _ = stream.set_nodelay(true);
                t.net.conns_accepted += 1;
                return Some(Conn {
                    stream,
                    rbuf: Vec::with_capacity(256),
                });
            }
        }
    }
    None
}

/// Reads until the status for `seq` arrives, the deadline passes, or
/// the connection fails. `None` means the request is lost (the cause is
/// already tallied); the caller must drop the connection.
fn await_status(
    c: &mut Conn,
    decoder: &Decoder,
    seq: u64,
    sent_at: Instant,
    timeout: Duration,
    t: &mut Tallies,
) -> Option<Status> {
    let mut chunk = [0u8; 1024];
    loop {
        // Decode anything already buffered first.
        match decoder.decode(&c.rbuf) {
            Ok(Some((frame, used))) => {
                c.rbuf.drain(..used);
                t.net.frames_in += 1;
                match frame {
                    Frame::Status { request_id, status } if request_id == seq => {
                        return Some(status);
                    }
                    // We never pipeline, so any other frame here —
                    // stale status, pong, or a request frame — is a
                    // protocol violation by the server.
                    _ => {
                        t.net.protocol_errors += 1;
                        return None;
                    }
                }
            }
            Ok(None) => {}
            Err(_) => {
                t.net.protocol_errors += 1;
                return None;
            }
        }
        if sent_at.elapsed() >= timeout {
            t.timeouts += 1;
            return None;
        }
        match c.stream.read(&mut chunk) {
            Ok(0) => {
                // Mid-request disconnect: an answer we will never get.
                t.disconnects += 1;
                return None;
            }
            Ok(n) => {
                t.net.bytes_in += n as u64;
                c.rbuf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                t.timeouts += 1;
                return None;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                t.disconnects += 1;
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_from_base() {
        let base = Duration::from_millis(10);
        let max = Duration::from_secs(1);
        assert_eq!(backoff_delay(0, base, max), Duration::from_millis(10));
        assert_eq!(backoff_delay(1, base, max), Duration::from_millis(20));
        assert_eq!(backoff_delay(2, base, max), Duration::from_millis(40));
        assert_eq!(backoff_delay(3, base, max), Duration::from_millis(80));
    }

    #[test]
    fn backoff_caps_at_max() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(100);
        assert_eq!(backoff_delay(4, base, max), max); // 160ms capped
        assert_eq!(backoff_delay(31, base, max), max);
        assert_eq!(backoff_delay(32, base, max), max); // shift saturates
        assert_eq!(backoff_delay(u32::MAX, base, max), max);
    }

    #[test]
    fn backoff_zero_base_stays_zero() {
        let z = Duration::ZERO;
        assert_eq!(backoff_delay(5, z, Duration::from_secs(1)), z);
    }
}
