//! The wire protocol: compact length-prefixed binary frames.
//!
//! Every frame on the wire is a little-endian `u32` *body length*
//! followed by exactly that many body bytes; the first body byte is a
//! type tag. Requests carry a client-assigned `request_id` that the
//! server echoes in the response, so a client can detect desync after a
//! timeout or reconnect. Transaction payloads travel either as an
//! explicit [`WorkOp`] sequence (fixed-width binary encoding, one tag
//! byte plus LE fields per op) or as a compact `Count` body the server
//! expands itself — the cheap way to generate pure admission-control
//! load without shipping op streams.
//!
//! Decoding is **incremental and total**: [`Decoder::decode`] looks at
//! the front of a byte buffer and returns `Ok(None)` ("need more
//! bytes"), `Ok(Some((frame, consumed)))`, or a typed [`FrameError`] —
//! never a panic, whatever the bytes. A complete body that runs out of
//! bytes mid-field is *corrupt* (the length prefix delimits it), which
//! is how truncation inside a frame is told apart from a partial read.
//! Op counts are validated against the body length before any buffer is
//! sized, so a hostile length field cannot force an allocation.
//!
//! When a [`TxBufferPool`] is attached, decoded op vectors are drawn
//! from it — the network path joins the same recycled-buffer loop the
//! in-process load generators use.

use std::fmt;
use std::sync::Arc;
use webmm_server::{Admission, TxBufferPool};
use webmm_workload::WorkOp;

/// Bytes of the length prefix in front of every frame body.
pub const HEADER_LEN: usize = 4;

/// Default cap on one frame's body length.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Default cap on ops carried by one `Submit` frame.
pub const DEFAULT_MAX_OPS: usize = 1 << 16;

// Frame type tags. Requests have the high bit clear, responses set.
const TAG_SUBMIT: u8 = 0x01;
const TAG_PING: u8 = 0x02;
const TAG_GOODBYE: u8 = 0x03;
const TAG_STATUS: u8 = 0x81;
const TAG_PONG: u8 = 0x82;

// WorkOp tags.
const OP_MALLOC: u8 = 0;
const OP_FREE: u8 = 1;
const OP_REALLOC: u8 = 2;
const OP_TOUCH: u8 = 3;
const OP_COMPUTE: u8 = 4;
const OP_STATIC_TOUCH: u8 = 5;
const OP_END_TX: u8 = 6;

/// Protocol status code carried by a [`Frame::Status`] response — the
/// admission outcomes of the ingress queue, plus the two refusals the
/// network tier itself issues (`Draining`, `TooLarge`). `Rejected` and
/// `Draining` are this protocol's HTTP-429/503 equivalents.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Status {
    /// The transaction was admitted and will be served.
    Accepted,
    /// Admitted, displacing the oldest queued transaction
    /// ([`Admission::AcceptedSheddingOldest`]).
    AcceptedSheddingOldest,
    /// Turned away by admission control (queue full under the reject
    /// policy, or the ingress queue already closed).
    Rejected,
    /// The server is draining: the request was never offered to the
    /// ingress queue and does not appear in its `submitted` count.
    Draining,
    /// The request's transaction exceeds the server's size limits and
    /// was refused at the front door, before admission.
    TooLarge,
}

impl Status {
    /// The wire code.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Status::Accepted => 0,
            Status::AcceptedSheddingOldest => 1,
            Status::Rejected => 2,
            Status::Draining => 3,
            Status::TooLarge => 4,
        }
    }

    /// Parses a wire code.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Status> {
        match code {
            0 => Some(Status::Accepted),
            1 => Some(Status::AcceptedSheddingOldest),
            2 => Some(Status::Rejected),
            3 => Some(Status::Draining),
            4 => Some(Status::TooLarge),
            _ => None,
        }
    }

    /// Maps an ingress [`Admission`] outcome onto its wire status.
    #[must_use]
    pub fn from_admission(admission: Admission) -> Status {
        match admission {
            Admission::Accepted => Status::Accepted,
            Admission::AcceptedSheddingOldest => Status::AcceptedSheddingOldest,
            Admission::Rejected => Status::Rejected,
        }
    }
}

/// The transaction payload of a [`Frame::Submit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxBody {
    /// `ops` allocations of `size` bytes each, expanded server-side
    /// (each allocation is touched, and the transaction ends with the
    /// usual `EndTx` bulk free).
    Count {
        /// Number of allocations.
        ops: u32,
        /// Bytes per allocation.
        size: u32,
    },
    /// An explicit op sequence, executed verbatim.
    Ops(Vec<WorkOp>),
}

impl TxBody {
    /// Total heap bytes this body will request from a worker
    /// (malloc plus realloc sizes) — the quantity the server's
    /// `max_tx_bytes` limit is checked against.
    #[must_use]
    pub fn requested_bytes(&self) -> u64 {
        match self {
            TxBody::Count { ops, size } => u64::from(*ops) * u64::from(*size),
            TxBody::Ops(ops) => ops
                .iter()
                .map(|op| match *op {
                    WorkOp::Malloc { size, .. } => size,
                    WorkOp::Realloc { new_size, .. } => new_size,
                    _ => 0,
                })
                .sum(),
        }
    }
}

/// One protocol frame, either direction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: offer one transaction.
    Submit {
        /// Client-assigned id echoed by the response.
        request_id: u64,
        /// Optional affinity key: transactions with the same key land on
        /// the same ingress shard (same worker heap).
        affinity: Option<u64>,
        /// The transaction payload.
        body: TxBody,
    },
    /// Client → server: keep-alive / health probe.
    Ping,
    /// Client → server: clean close announcement.
    Goodbye,
    /// Server → client: admission outcome for `request_id`.
    Status {
        /// Echo of the request's id.
        request_id: u64,
        /// Admission outcome.
        status: Status,
    },
    /// Server → client: reply to [`Frame::Ping`].
    Pong,
}

/// Typed decoding failure. Every variant is a protocol violation by the
/// peer; none of them panics the decoder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix announces a body larger than the cap.
    Oversized {
        /// Announced body length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// Zero-length body (every frame needs at least a type tag).
    EmptyFrame,
    /// Unknown frame type tag.
    BadTag(u8),
    /// Unknown status code in a `Status` frame.
    BadStatus(u8),
    /// Unknown op tag inside a `Submit` body.
    BadOpTag(u8),
    /// A boolean field held something other than 0 or 1.
    BadBool(u8),
    /// A complete body ended mid-field — truncation *inside* the
    /// length-delimited frame, i.e. corruption (a partial read is
    /// `Ok(None)`, not this).
    Corrupt {
        /// Bytes the next field needed.
        need: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// The body declared more ops than it can possibly hold (or more
    /// than the configured cap) — rejected before sizing any buffer.
    TooManyOps {
        /// Declared op count.
        ops: usize,
        /// Maximum admissible here.
        max: usize,
    },
    /// Decoding finished with unconsumed bytes inside the body.
    TrailingBytes {
        /// Leftover byte count.
        extra: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "frame body of {len} bytes exceeds cap of {max}")
            }
            FrameError::EmptyFrame => write!(f, "zero-length frame body"),
            FrameError::BadTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            FrameError::BadStatus(s) => write!(f, "unknown status code {s}"),
            FrameError::BadOpTag(t) => write!(f, "unknown op tag {t}"),
            FrameError::BadBool(b) => write!(f, "boolean field holds {b}"),
            FrameError::Corrupt { need, have } => {
                write!(f, "corrupt frame: field needs {need} bytes, {have} left")
            }
            FrameError::TooManyOps { ops, max } => {
                write!(f, "frame declares {ops} ops, at most {max} admissible")
            }
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame body")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends `frame`'s wire encoding (length prefix plus body) to `out`.
pub fn encode(frame: &Frame, out: &mut Vec<u8>) {
    let at = out.len();
    out.extend_from_slice(&[0u8; HEADER_LEN]); // length backpatched below
    match frame {
        Frame::Submit {
            request_id,
            affinity,
            body,
        } => {
            out.push(TAG_SUBMIT);
            out.extend_from_slice(&request_id.to_le_bytes());
            match affinity {
                Some(key) => {
                    out.push(1);
                    out.extend_from_slice(&key.to_le_bytes());
                }
                None => out.push(0),
            }
            match body {
                TxBody::Count { ops, size } => {
                    out.push(0);
                    out.extend_from_slice(&ops.to_le_bytes());
                    out.extend_from_slice(&size.to_le_bytes());
                }
                TxBody::Ops(ops) => {
                    out.push(1);
                    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
                    for op in ops {
                        encode_op(*op, out);
                    }
                }
            }
        }
        Frame::Ping => out.push(TAG_PING),
        Frame::Goodbye => out.push(TAG_GOODBYE),
        Frame::Status { request_id, status } => {
            out.push(TAG_STATUS);
            out.extend_from_slice(&request_id.to_le_bytes());
            out.push(status.code());
        }
        Frame::Pong => out.push(TAG_PONG),
    }
    let body_len = (out.len() - at - HEADER_LEN) as u32;
    out[at..at + HEADER_LEN].copy_from_slice(&body_len.to_le_bytes());
}

fn encode_op(op: WorkOp, out: &mut Vec<u8>) {
    match op {
        WorkOp::Malloc { id, size } => {
            out.push(OP_MALLOC);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&size.to_le_bytes());
        }
        WorkOp::Free { id } => {
            out.push(OP_FREE);
            out.extend_from_slice(&id.to_le_bytes());
        }
        WorkOp::Realloc { id, new_size } => {
            out.push(OP_REALLOC);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&new_size.to_le_bytes());
        }
        WorkOp::Touch { id, write } => {
            out.push(OP_TOUCH);
            out.extend_from_slice(&id.to_le_bytes());
            out.push(u8::from(write));
        }
        WorkOp::Compute { instr } => {
            out.push(OP_COMPUTE);
            out.extend_from_slice(&instr.to_le_bytes());
        }
        WorkOp::StaticTouch { offset, len } => {
            out.push(OP_STATIC_TOUCH);
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        WorkOp::EndTx => out.push(OP_END_TX),
    }
}

/// Bounds-checked reader over one frame body.
struct Body<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Body<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let have = self.buf.len() - self.at;
        if have < n {
            return Err(FrameError::Corrupt { need: n, have });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn bool(&mut self) -> Result<bool, FrameError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(FrameError::BadBool(b)),
        }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }
}

/// Incremental frame decoder with configurable limits and an optional
/// buffer pool for decoded op vectors.
#[derive(Clone, Default)]
pub struct Decoder {
    max_frame: Option<usize>,
    max_ops: Option<usize>,
    pool: Option<Arc<TxBufferPool>>,
}

impl Decoder {
    /// A decoder with the default limits ([`DEFAULT_MAX_FRAME`],
    /// [`DEFAULT_MAX_OPS`]) and no pool.
    #[must_use]
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Caps the admissible body length.
    #[must_use]
    pub fn with_max_frame(mut self, max: usize) -> Self {
        self.max_frame = Some(max);
        self
    }

    /// Caps the ops one `Submit` may carry.
    #[must_use]
    pub fn with_max_ops(mut self, max: usize) -> Self {
        self.max_ops = Some(max);
        self
    }

    /// Draws decoded op vectors from `pool` instead of allocating.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<TxBufferPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    fn max_frame(&self) -> usize {
        self.max_frame.unwrap_or(DEFAULT_MAX_FRAME)
    }

    /// Tries to decode one frame from the front of `buf`.
    ///
    /// Returns `Ok(None)` when `buf` holds only part of a frame (read
    /// more and retry), `Ok(Some((frame, consumed)))` on success — the
    /// caller drains `consumed` bytes — and a [`FrameError`] when the
    /// peer violated the protocol (the connection should be dropped;
    /// resynchronization is not attempted).
    ///
    /// # Errors
    ///
    /// Every [`FrameError`] variant; never panics, for any input.
    pub fn decode(&self, buf: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if len == 0 {
            return Err(FrameError::EmptyFrame);
        }
        if len > self.max_frame() {
            return Err(FrameError::Oversized {
                len,
                max: self.max_frame(),
            });
        }
        if buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let mut body = Body {
            buf: &buf[HEADER_LEN..HEADER_LEN + len],
            at: 0,
        };
        let frame = self.decode_body(&mut body)?;
        if body.remaining() > 0 {
            return Err(FrameError::TrailingBytes {
                extra: body.remaining(),
            });
        }
        Ok(Some((frame, HEADER_LEN + len)))
    }

    fn decode_body(&self, body: &mut Body<'_>) -> Result<Frame, FrameError> {
        match body.u8()? {
            TAG_SUBMIT => {
                let request_id = body.u64()?;
                let affinity = if body.bool()? {
                    Some(body.u64()?)
                } else {
                    None
                };
                let tx_body = match body.u8()? {
                    0 => TxBody::Count {
                        ops: body.u32()?,
                        size: body.u32()?,
                    },
                    1 => {
                        let count = body.u32()? as usize;
                        // Every op costs at least one tag byte, so a count
                        // beyond the remaining body is a lie — reject it
                        // before sizing any buffer from it.
                        let max = self.max_ops.unwrap_or(DEFAULT_MAX_OPS);
                        if count > body.remaining() || count > max {
                            return Err(FrameError::TooManyOps {
                                ops: count,
                                max: max.min(body.remaining()),
                            });
                        }
                        let mut ops = match &self.pool {
                            Some(pool) => pool.get(),
                            None => Vec::new(),
                        };
                        ops.reserve(count);
                        for _ in 0..count {
                            ops.push(decode_op(body)?);
                        }
                        TxBody::Ops(ops)
                    }
                    t => return Err(FrameError::BadTag(t)),
                };
                Ok(Frame::Submit {
                    request_id,
                    affinity,
                    body: tx_body,
                })
            }
            TAG_PING => Ok(Frame::Ping),
            TAG_GOODBYE => Ok(Frame::Goodbye),
            TAG_STATUS => {
                let request_id = body.u64()?;
                let code = body.u8()?;
                let status = Status::from_code(code).ok_or(FrameError::BadStatus(code))?;
                Ok(Frame::Status { request_id, status })
            }
            TAG_PONG => Ok(Frame::Pong),
            t => Err(FrameError::BadTag(t)),
        }
    }
}

fn decode_op(body: &mut Body<'_>) -> Result<WorkOp, FrameError> {
    match body.u8()? {
        OP_MALLOC => Ok(WorkOp::Malloc {
            id: body.u64()?,
            size: body.u64()?,
        }),
        OP_FREE => Ok(WorkOp::Free { id: body.u64()? }),
        OP_REALLOC => Ok(WorkOp::Realloc {
            id: body.u64()?,
            new_size: body.u64()?,
        }),
        OP_TOUCH => Ok(WorkOp::Touch {
            id: body.u64()?,
            write: body.bool()?,
        }),
        OP_COMPUTE => Ok(WorkOp::Compute { instr: body.u64()? }),
        OP_STATIC_TOUCH => Ok(WorkOp::StaticTouch {
            offset: body.u64()?,
            len: body.u64()?,
        }),
        OP_END_TX => Ok(WorkOp::EndTx),
        t => Err(FrameError::BadOpTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: &Frame) {
        let mut buf = Vec::new();
        encode(frame, &mut buf);
        let (back, used) = Decoder::new().decode(&buf).unwrap().unwrap();
        assert_eq!(back, *frame);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn all_frame_shapes_round_trip() {
        round_trip(&Frame::Ping);
        round_trip(&Frame::Pong);
        round_trip(&Frame::Goodbye);
        round_trip(&Frame::Status {
            request_id: u64::MAX,
            status: Status::Draining,
        });
        round_trip(&Frame::Submit {
            request_id: 7,
            affinity: None,
            body: TxBody::Count { ops: 12, size: 64 },
        });
        round_trip(&Frame::Submit {
            request_id: 8,
            affinity: Some(0xDEAD),
            body: TxBody::Ops(vec![
                WorkOp::Malloc { id: 1, size: 64 },
                WorkOp::Touch { id: 1, write: true },
                WorkOp::Realloc {
                    id: 1,
                    new_size: 128,
                },
                WorkOp::Free { id: 1 },
                WorkOp::Compute { instr: 900 },
                WorkOp::StaticTouch {
                    offset: 16,
                    len: 32,
                },
                WorkOp::EndTx,
            ]),
        });
    }

    #[test]
    fn partial_reads_ask_for_more() {
        let mut buf = Vec::new();
        encode(
            &Frame::Status {
                request_id: 3,
                status: Status::Accepted,
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            assert_eq!(Decoder::new().decode(&buf[..cut]).unwrap(), None, "{cut}");
        }
    }

    #[test]
    fn two_frames_back_to_back_decode_in_order() {
        let mut buf = Vec::new();
        encode(&Frame::Ping, &mut buf);
        encode(&Frame::Goodbye, &mut buf);
        let d = Decoder::new();
        let (f1, used) = d.decode(&buf).unwrap().unwrap();
        assert_eq!(f1, Frame::Ping);
        let (f2, used2) = d.decode(&buf[used..]).unwrap().unwrap();
        assert_eq!(f2, Frame::Goodbye);
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn oversized_announcement_is_rejected_before_buffering() {
        let mut buf = (8u32 << 20).to_le_bytes().to_vec();
        buf.push(TAG_PING);
        assert!(matches!(
            Decoder::new().decode(&buf),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn lying_op_count_is_rejected_before_allocation() {
        // Announce u32::MAX ops with a near-empty body.
        let mut body = vec![TAG_SUBMIT];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(0); // no affinity
        body.push(1); // inline ops
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&body);
        assert!(matches!(
            Decoder::new().decode(&buf),
            Err(FrameError::TooManyOps { .. })
        ));
    }

    #[test]
    fn zero_length_and_bad_tags_are_typed_errors() {
        let buf = 0u32.to_le_bytes().to_vec();
        assert_eq!(Decoder::new().decode(&buf), Err(FrameError::EmptyFrame));
        let mut buf = 1u32.to_le_bytes().to_vec();
        buf.push(0x77);
        assert_eq!(Decoder::new().decode(&buf), Err(FrameError::BadTag(0x77)));
    }

    #[test]
    fn trailing_bytes_inside_a_frame_are_rejected() {
        let mut body = vec![TAG_PING, 0xAB];
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.append(&mut body);
        assert_eq!(
            Decoder::new().decode(&buf),
            Err(FrameError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn requested_bytes_sums_malloc_and_realloc() {
        let body = TxBody::Ops(vec![
            WorkOp::Malloc { id: 1, size: 100 },
            WorkOp::Realloc {
                id: 1,
                new_size: 50,
            },
            WorkOp::Free { id: 1 },
            WorkOp::EndTx,
        ]);
        assert_eq!(body.requested_bytes(), 150);
        assert_eq!(TxBody::Count { ops: 4, size: 32 }.requested_bytes(), 128);
    }
}
