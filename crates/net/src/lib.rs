//! Real TCP serving tier for the webmm native harness.
//!
//! The in-process harness (`webmm-server`) measures the paper's
//! allocator families with generators calling straight into the ingress
//! queue. This crate puts an actual network between load and service —
//! the deployment shape the paper studies (web/PHP front-ends feeding
//! multicore servers) — without changing what is measured behind the
//! queue:
//!
//! * [`frame`] — a compact length-prefixed binary wire protocol:
//!   submit/ping/goodbye requests, typed status responses mapping the
//!   queue's [`Admission`](webmm_server::Admission) outcomes (the
//!   429-equivalent back-pressure signal), and an incremental decoder
//!   that treats every malformed input as a typed error, never a panic.
//! * [`listener`] ([`NetServer`]) — acceptor + fixed handler pool with
//!   keep-alive, idle timeouts, per-connection buffer reuse, and a
//!   graceful drain that preserves `submitted == completed + shed`
//!   end-to-end ([`NetReport::reconciles`]).
//! * [`client`] ([`run_client`]) — a load generator speaking the same
//!   protocol: N persistent connections, closed- and open-loop
//!   schedules, request timeouts, bounded-backoff reconnect, and
//!   client-side log2 latency histograms.
//!
//! Everything is `std`-only blocking I/O: under the `Block` admission
//! policy, queue back-pressure propagates to clients through TCP flow
//! control itself; under `Reject`/`ShedOldest` it travels back as an
//! explicit [`Status`] response.
//!
//! # Quick start
//!
//! ```
//! use webmm_net::{run_client, ClientWorkload, NetClientConfig, NetServer, NetServerConfig};
//! use webmm_server::{Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig {
//!     workers: 2,
//!     static_bytes: 1 << 16,
//!     ..ServerConfig::default()
//! });
//! let net = NetServer::bind(server, "127.0.0.1:0", NetServerConfig::default())?;
//! let report = run_client(
//!     net.local_addr(),
//!     &ClientWorkload::Count { ops: 32, size: 256 },
//!     &NetClientConfig {
//!         connections: 2,
//!         requests: 50,
//!         ..NetClientConfig::default()
//!     },
//! );
//! assert_eq!(report.accepted, 50);
//! let tier = net.finish();
//! assert!(tier.reconciles());
//! assert_eq!(tier.server.completed, report.accepted);
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::module_name_repetitions,
    clippy::cast_possible_truncation,
    // Rates and latency summaries: u64 counters into f64 is intended.
    clippy::cast_precision_loss
)]

pub mod client;
mod conn;
pub mod frame;
pub mod listener;

pub use client::{
    backoff_delay, run_client, ClientReport, ClientWorkload, LoadMode, NetClientConfig,
};
pub use frame::{encode, Decoder, Frame, FrameError, Status, TxBody};
pub use listener::{NetReport, NetServer, NetServerConfig};
