//! Property tests for transaction-buffer recycling.
//!
//! The buffer pool closes an ownership loop — generator → queue → worker
//! → pool → generator — and admission control adds side exits (rejected
//! and shed transactions return their buffers from the queue, not a
//! worker). These properties pin down the two things that loop must
//! never get wrong, across queue modes, admission policies, worker
//! counts, and load levels:
//!
//! * **accounting stays exact**: `submitted == completed + shed` holds,
//!   every generated buffer comes back (`returned == submitted` once the
//!   run drains, since every transaction either completes or is shed),
//!   and every buffer the generators took is counted
//!   (`recycled + fresh == submitted`);
//! * **recycled buffers never alias live transactions and arrive
//!   cleared**: a buffer handed out by `get` is empty, and two
//!   simultaneously-outstanding buffers are always distinct allocations.

use proptest::prelude::*;
use webmm_server::{
    drive_closed, AdmissionPolicy, QueueMode, Server, ServerConfig, TxBufferPool, TxFactory,
};
use webmm_workload::{phpbb, WorkOp};

fn queue_mode() -> impl Strategy<Value = QueueMode> {
    prop_oneof![Just(QueueMode::Global), Just(QueueMode::Sharded)]
}

fn policy() -> impl Strategy<Value = AdmissionPolicy> {
    prop_oneof![
        Just(AdmissionPolicy::Block),
        Just(AdmissionPolicy::Reject),
        Just(AdmissionPolicy::ShedOldest),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// End-to-end: whatever the interleaving of completions, rejections,
    /// and shed-oldest victims, the pool's books and the server's books
    /// agree with each other and with the number of transactions
    /// generated.
    #[test]
    fn recycling_accounting_is_exact_under_any_admission_outcome(
        mode in queue_mode(),
        policy in policy(),
        workers in 1usize..4,
        txs in 1u64..150,
        capacity in 2usize..24,
    ) {
        let server = Server::start(ServerConfig {
            workers,
            queue_capacity: capacity,
            policy,
            queue_mode: mode,
            batch: 8,
            static_bytes: 1 << 16,
            ..ServerConfig::default()
        });
        let pool = server.buffer_pool();
        drive_closed(&server, TxFactory::new(phpbb(), 1024, 5), txs, 2);
        let report = server.finish();

        prop_assert_eq!(report.submitted, txs);
        prop_assert_eq!(report.completed + report.shed, report.submitted,
            "identity must hold in {} mode under {:?}", report.queue_mode, policy);

        let stats = pool.stats();
        // Every transaction's buffer is taken from the pool exactly once…
        prop_assert_eq!(stats.recycled + stats.fresh, txs,
            "gets must equal generated transactions");
        // …and comes back exactly once: from a worker if it completed,
        // from the queue's admission path if it was rejected or shed.
        prop_assert_eq!(stats.returned, txs,
            "returns must equal generated transactions \
             ({} completed + {} shed)", report.completed, report.shed);
        prop_assert!(stats.dropped <= stats.returned);
        // Conservation: every buffer successfully stacked was either
        // recycled back out by a later get or is still available.
        prop_assert_eq!(
            pool.available() as u64,
            stats.returned - stats.dropped - stats.recycled
        );
    }

    /// Buffers handed out by `get` are empty regardless of what was in
    /// them when they were returned, and simultaneously-outstanding
    /// buffers are distinct allocations (no aliasing).
    #[test]
    fn recycled_buffers_arrive_cleared_and_never_alias(
        shards in 1usize..5,
        fills in collection::vec(1usize..64, 1..16),
    ) {
        let pool = TxBufferPool::new(shards, 64);
        for &n in &fills {
            let mut buf = Vec::with_capacity(n);
            for _ in 0..n {
                buf.push(WorkOp::EndTx);
            }
            pool.put(buf);
        }
        prop_assert_eq!(pool.available(), fills.len());

        // Draw every buffer back out while they are all live at once.
        let outstanding: Vec<Vec<WorkOp>> = (0..fills.len()).map(|_| pool.get()).collect();
        prop_assert_eq!(pool.stats().recycled, fills.len() as u64);
        let mut ptrs = Vec::new();
        for buf in &outstanding {
            prop_assert!(buf.is_empty(), "recycled buffer must arrive cleared");
            prop_assert!(buf.capacity() > 0, "recycling keeps the allocation");
            ptrs.push(buf.as_ptr());
        }
        ptrs.sort_unstable();
        ptrs.dedup();
        prop_assert_eq!(ptrs.len(), outstanding.len(),
            "live buffers must be distinct allocations");
    }
}
