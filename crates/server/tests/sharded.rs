//! End-to-end tests for the sharded work-stealing ingress.
//!
//! Two properties the unit tests cannot establish at full scale:
//!
//! * **Loss-free accounting under churn** — with many submitter threads
//!   spraying affinity keys across shards at random (so every shard is
//!   hot and every worker both drains and steals), a shed-oldest queue
//!   at punishingly small capacity still satisfies
//!   `submitted == completed + shed` exactly;
//! * **No starvation** — a worker whose own shard never receives a
//!   transaction still makes progress by stealing.

use rand::{Rng, SeedableRng};
use webmm_alloc::AllocatorKind;
use webmm_server::{AdmissionPolicy, QueueMode, Server, ServerConfig, Transaction};
use webmm_workload::WorkOp;

fn tiny_tx(id: u64) -> Transaction {
    Transaction {
        id,
        ops: vec![
            WorkOp::Malloc { id: 1, size: 64 },
            WorkOp::Touch { id: 1, write: true },
            WorkOp::Compute { instr: 200 },
            WorkOp::EndTx,
        ],
    }
}

fn sharded_config(workers: usize, capacity: usize, policy: AdmissionPolicy) -> ServerConfig {
    ServerConfig {
        kind: AllocatorKind::DdMalloc,
        workers,
        queue_capacity: capacity,
        policy,
        queue_mode: QueueMode::Sharded,
        batch: 4,
        static_bytes: 1 << 16,
        obs: None,
    }
}

/// Randomized submit / steal / shed churn: 4 submitter threads, random
/// affinity keys (random shard targeting → random steal victims), a
/// 8-slot shed-oldest queue under 4 workers. Every transaction must be
/// accounted as completed or shed, with nothing lost or double-counted
/// across steals.
#[test]
fn accounting_is_exact_under_concurrent_submit_steal_shed() {
    const SUBMITTERS: u64 = 4;
    const PER_SUBMITTER: u64 = 500;
    let server = Server::start(sharded_config(4, 8, AdmissionPolicy::ShedOldest));
    let done: Vec<_> = (0..SUBMITTERS)
        .map(|s| {
            let ingress = server.ingress();
            std::thread::spawn(move || {
                let mut rng = rand::rngs::SmallRng::seed_from_u64(0xC0FFEE + s);
                for i in 0..PER_SUBMITTER {
                    let key: u64 = rng.gen_range(0..64);
                    ingress.submit_affinity(key, tiny_tx(s * PER_SUBMITTER + i));
                }
            })
        })
        .collect();
    for h in done {
        h.join().expect("submitter panicked");
    }
    let report = server.finish();
    assert_eq!(report.submitted, SUBMITTERS * PER_SUBMITTER);
    assert_eq!(
        report.completed + report.shed,
        report.submitted,
        "lost or double-counted transactions across steals/sheds"
    );
    let per_worker: u64 = report.per_worker.iter().map(|w| w.completed).sum();
    assert_eq!(per_worker, report.completed, "per-worker counts disagree");
}

/// Same churn under the blocking policy: nothing may shed, so every
/// single submission must complete.
#[test]
fn blocking_policy_completes_everything_under_random_affinity() {
    const TOTAL: u64 = 600;
    let server = Server::start(sharded_config(3, 6, AdmissionPolicy::Block));
    let ingress = server.ingress();
    let submitter = std::thread::spawn(move || {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        for i in 0..TOTAL {
            let key: u64 = rng.gen_range(0..32);
            ingress.submit_affinity(key, tiny_tx(i));
        }
    });
    submitter.join().expect("submitter panicked");
    let report = server.finish();
    assert_eq!(report.submitted, TOTAL);
    assert_eq!(report.completed, TOTAL, "Block policy never sheds");
    assert_eq!(report.shed, 0);
}

/// All traffic pinned to shard 0 of a two-worker server: worker 1's own
/// shard stays empty for the whole run, so any progress it makes comes
/// through stealing — and it must make some, or half the pool is idle
/// while work queues.
#[test]
fn idle_worker_steals_instead_of_starving() {
    const TOTAL: u64 = 512;
    let server = Server::start(sharded_config(2, 8, AdmissionPolicy::Block));
    for i in 0..TOTAL {
        // Affinity key 0 always lands in shard 0.
        server.submit_affinity(0, tiny_tx(i));
    }
    let report = server.finish();
    assert_eq!(report.completed, TOTAL);
    assert!(
        report.steals > 0,
        "worker 1 never stole despite an empty shard and a loaded neighbour"
    );
    let starved = &report.per_worker[1];
    assert!(
        starved.completed > 0,
        "worker 1 completed nothing: starvation"
    );
    assert_eq!(
        starved.completed, starved.steals,
        "everything worker 1 served must have been stolen"
    );
}
