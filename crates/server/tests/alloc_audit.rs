//! Allocation audit: the steady-state transaction path performs **zero**
//! Rust-heap allocations.
//!
//! A counting `#[global_allocator]` wrapper tallies every allocation made
//! while a thread-local tracking flag is set. The audit drives the exact
//! worker hot path — take a recycled op buffer from the [`TxBufferPool`],
//! fill it with a transaction's ops, execute it on a [`TxExecutor`],
//! return the buffer — first untracked to warm every lazily-grown
//! structure (allocator arenas, the object table, buffer capacity), then
//! tracked, asserting the tracked phase allocated nothing for every
//! allocator family in the paper's PHP study.
//!
//! The workload *generator* (`TxStream`) is deliberately outside the
//! audit: it runs on client threads, not workers, and its cross-
//! transaction lifetime bookkeeping (a `BTreeMap` of pending deaths) is
//! inherently allocating. The claim under test is about the serving hot
//! path: everything between a transaction leaving the queue and its
//! buffer returning to the pool.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use webmm_alloc::AllocatorKind;
use webmm_server::{TxBufferPool, TxExecutor, TxFactory};
use webmm_workload::{phpbb, WorkOp};

/// Allocations observed while the current thread had tracking on.
static TRACKED_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Serializes the tests: both reset the shared counter, so concurrent
/// runs could mask a regression.
static AUDIT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

thread_local! {
    /// Only the audit thread flips this, so the harness's other test
    /// threads never pollute the count. `const` init keeps the TLS
    /// access itself allocation-free.
    static TRACK: Cell<bool> = const { Cell::new(false) };
}

struct CountingAllocator;

fn note_alloc() {
    if TRACK.with(Cell::get) {
        TRACKED_ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

// SAFETY: delegates every operation to `System` unchanged; the count is
// a side effect only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `rounds` transactions through the pool → executor → pool cycle,
/// cycling over pre-generated op templates.
fn serve_rounds(
    exec: &mut TxExecutor,
    pool: &TxBufferPool,
    templates: &[Vec<WorkOp>],
    rounds: usize,
) {
    for i in 0..rounds {
        let mut buf = pool.get();
        buf.extend_from_slice(&templates[i % templates.len()]);
        exec.execute(&buf);
        pool.put(buf);
    }
}

/// Tracked allocations during a steady-state serving phase for `kind`.
fn steady_state_allocations(kind: AllocatorKind) -> u64 {
    // Template transactions are generated up front (the generator is
    // allowed to allocate; see module docs).
    let mut factory = TxFactory::new(phpbb(), 1024, 7);
    let templates: Vec<Vec<WorkOp>> = (0..8).map(|_| factory.next_tx().ops).collect();

    let pool = TxBufferPool::new(1, 4);
    let mut exec = TxExecutor::new(0, kind, 1 << 20);

    // Warm-up: arenas grow, the object table settles, the pooled buffer
    // reaches the largest template's capacity.
    serve_rounds(&mut exec, &pool, &templates, 64);

    TRACKED_ALLOCS.store(0, Ordering::Relaxed);
    TRACK.with(|t| t.set(true));
    serve_rounds(&mut exec, &pool, &templates, 256);
    TRACK.with(|t| t.set(false));
    TRACKED_ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_serving_is_allocation_free_for_all_study_allocators() {
    let _guard = AUDIT_LOCK.lock().unwrap();
    for kind in AllocatorKind::PHP_STUDY {
        let allocs = steady_state_allocations(kind);
        assert_eq!(
            allocs, 0,
            "{kind}: steady-state transactions must not touch the Rust heap \
             ({allocs} allocations in 256 warmed transactions)"
        );
    }
}

#[test]
fn counting_allocator_actually_counts() {
    // Guard against the audit passing vacuously because tracking broke.
    let _guard = AUDIT_LOCK.lock().unwrap();
    TRACKED_ALLOCS.store(0, Ordering::Relaxed);
    TRACK.with(|t| t.set(true));
    let v: Vec<u64> = Vec::with_capacity(32);
    TRACK.with(|t| t.set(false));
    drop(v);
    assert!(
        TRACKED_ALLOCS.load(Ordering::Relaxed) > 0,
        "a tracked Vec allocation must be counted"
    );
}
