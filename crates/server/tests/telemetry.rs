//! Live-telemetry integration tests for the native serving harness.
//!
//! The acceptance properties: attaching the observer must not change
//! what the server *does* (same-seed accounting identical with telemetry
//! on and off), and what the observer *says* must be well-formed (the
//! JSONL stream parses back into samples carrying queue depth, window
//! quantiles and per-worker size-class occupancy).

use std::time::Duration;
use webmm_alloc::AllocatorKind;
use webmm_server::{
    drive_closed, AdmissionPolicy, ObsConfig, ObsSample, Server, ServerConfig, ServerReport,
    TxFactory,
};
use webmm_workload::phpbb;

const SEED: u64 = 0xC0FFEE;
const WORKERS: usize = 4;
const TOTAL_TX: u64 = 48;

fn serve(kind: AllocatorKind, obs: Option<ObsConfig>) -> (ServerReport, Vec<ObsSample>) {
    let server = Server::start(ServerConfig {
        kind,
        workers: WORKERS,
        queue_capacity: 16,
        policy: AdmissionPolicy::Block,
        static_bytes: 1 << 20,
        obs,
        ..ServerConfig::default()
    });
    drive_closed(&server, TxFactory::new(phpbb(), 1024, SEED), TOTAL_TX, 2);
    server.finish_with_obs()
}

fn fast_obs() -> ObsConfig {
    ObsConfig {
        interval: Duration::from_millis(2),
        ..ObsConfig::default()
    }
}

#[test]
fn telemetry_does_not_change_accounting() {
    for kind in AllocatorKind::PHP_STUDY {
        let (off, no_samples) = serve(kind, None);
        let (on, samples) = serve(kind, Some(fast_obs()));
        assert!(no_samples.is_empty(), "{kind}: no observer, no samples");
        assert!(!samples.is_empty(), "{kind}: observer must sample");
        assert_eq!(off.submitted, on.submitted, "{kind}");
        assert_eq!(off.completed, on.completed, "{kind}");
        assert_eq!(off.shed, on.shed, "{kind}");
        let bytes = |r: &ServerReport| r.per_worker.iter().map(|w| w.bytes_touched).sum::<u64>();
        assert_eq!(bytes(&off), bytes(&on), "{kind}: same op mix either way");
    }
}

#[test]
fn final_sample_reflects_settled_server() {
    let (report, samples) = serve(AllocatorKind::DdMalloc, Some(fast_obs()));
    let last = samples.last().expect("at least the closing sample");
    // The sampler takes its closing sample after the workers have joined,
    // so the last sample must agree with the final report.
    assert_eq!(last.queue_depth, 0);
    assert_eq!(last.submitted, report.submitted);
    assert_eq!(last.completed, report.completed);
    assert_eq!(last.shed, report.shed);
    // Every worker published a heap snapshot, and freeAll emptied them.
    assert_eq!(last.workers.len(), WORKERS);
    for w in &last.workers {
        assert_eq!(w.heap.tx_live_bytes, 0, "worker {}", w.worker);
        assert!(w.heap.free_all_count > 0, "worker {}", w.worker);
        assert!(!w.heap.classes.is_empty(), "worker {}", w.worker);
    }
    // Mid-run samples saw the sliding window populated.
    assert!(
        samples.iter().any(|s| s.window.count > 0),
        "some sample caught in-flight latency"
    );
}

#[test]
fn jsonl_export_parses_round_trip() {
    let path = std::env::temp_dir().join(format!("webmm_obs_test_{}.jsonl", std::process::id()));
    let obs = ObsConfig {
        interval: Duration::from_millis(2),
        out: Some(path.clone()),
        run: "test-run".to_string(),
        ..ObsConfig::default()
    };
    let (_, samples) = serve(AllocatorKind::DdMalloc, Some(obs));
    let body = std::fs::read_to_string(&path).expect("sampler wrote the JSONL file");
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), samples.len(), "one line per sample");
    assert!(!lines.is_empty());
    for (line, sample) in lines.iter().zip(&samples) {
        let parsed: ObsSample = serde_json::from_str(line).expect("line parses as ObsSample");
        assert_eq!(parsed.run, "test-run");
        assert_eq!(parsed.t_ns, sample.t_ns);
        assert_eq!(parsed.queue_depth, sample.queue_depth);
        assert_eq!(parsed.completed, sample.completed);
        assert_eq!(parsed.workers.len(), sample.workers.len());
    }
}

#[test]
fn tx_spans_cover_completions_and_sheds() {
    let server = Server::start(ServerConfig {
        kind: AllocatorKind::DdMalloc,
        workers: 2,
        queue_capacity: 2,
        policy: AdmissionPolicy::Reject,
        static_bytes: 1 << 20,
        obs: Some(fast_obs()),
        ..ServerConfig::default()
    });
    drive_closed(&server, TxFactory::new(phpbb(), 1024, SEED), 32, 8);
    let spans = server.dump_spans();
    let report = server.finish();
    assert_eq!(report.completed + report.shed, report.submitted);
    let completed_spans = spans.iter().filter(|s| !s.shed).count() as u64;
    let shed_spans = spans.iter().filter(|s| s.shed).count() as u64;
    // Rings are fixed-capacity: they hold the most recent spans, never
    // more than the true counts.
    assert!(completed_spans > 0);
    assert!(completed_spans <= report.completed);
    assert!(
        shed_spans <= report.shed,
        "never more shed spans than sheds"
    );
    for s in &spans {
        assert!(s.enqueue_ns <= s.dequeue_ns, "span {s:?}");
        assert!(s.dequeue_ns <= s.complete_ns, "span {s:?}");
    }
}
