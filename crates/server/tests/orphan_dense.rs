//! Regression: the dense generation-stamped object table counts orphan
//! ops *identically* to the `HashMap` it replaced.
//!
//! Orphan ops — frees, reallocs, and touches naming an object the worker
//! never allocated (or that expired at a transaction boundary) — are the
//! paper's cross-transaction lifetime signal, and the workload's
//! open-lifetime rails produce them on purpose. The dense table detects
//! them by an id+generation mismatch instead of hash-map absence; this
//! test replays identical transaction sequences through a [`TxExecutor`]
//! and through a literal `HashMap` reference model and demands the same
//! orphan count op for op, both single-worker and with transactions
//! round-robined over several workers (which turns *more* cross-
//! transaction references into orphans, since the allocating worker
//! differs from the freeing one).

use std::collections::HashMap;
use webmm_alloc::AllocatorKind;
use webmm_server::{TxExecutor, TxFactory};
use webmm_workload::{rails, WorkOp};

/// The pre-rework semantics, verbatim: a `HashMap` of live ids cleared at
/// every `EndTx`; any op naming an absent id is an orphan.
#[derive(Default)]
struct ReferenceWorker {
    live: HashMap<u64, ()>,
    orphans: u64,
}

impl ReferenceWorker {
    fn execute(&mut self, ops: &[WorkOp]) {
        for op in ops {
            match *op {
                WorkOp::Malloc { id, .. } => {
                    self.live.insert(id, ());
                }
                WorkOp::Free { id } => {
                    if self.live.remove(&id).is_none() {
                        self.orphans += 1;
                    }
                }
                WorkOp::Realloc { id, .. } | WorkOp::Touch { id, .. } => {
                    if !self.live.contains_key(&id) {
                        self.orphans += 1;
                    }
                }
                WorkOp::EndTx => self.live.clear(),
                WorkOp::Compute { .. } | WorkOp::StaticTouch { .. } => {}
            }
        }
    }
}

fn generate(txs: u64, seed: u64) -> Vec<Vec<WorkOp>> {
    // Rails is the paper's open-lifetime workload: ~6% of per-object-freed
    // objects outlive their transaction, so their eventual frees (and the
    // touches leading up to them) land after the boundary cleanup — the
    // orphan source this test needs.
    let mut factory = TxFactory::new(rails(), 1024, seed);
    (0..txs).map(|_| factory.next_tx().ops).collect()
}

/// Replays `txs` round-robin over `workers` dense-table executors and
/// `workers` reference workers; returns (dense orphans, reference
/// orphans) summed over workers.
fn replay(txs: &[Vec<WorkOp>], workers: usize, kind: AllocatorKind) -> (u64, u64) {
    let mut dense: Vec<TxExecutor> = (0..workers)
        .map(|w| TxExecutor::new(w as u64, kind, 1 << 20))
        .collect();
    let mut reference: Vec<ReferenceWorker> =
        (0..workers).map(|_| ReferenceWorker::default()).collect();
    for (i, ops) in txs.iter().enumerate() {
        dense[i % workers].execute(ops);
        reference[i % workers].execute(ops);
    }
    (
        dense.iter().map(|e| e.report().orphan_ops).sum(),
        reference.iter().map(|r| r.orphans).sum(),
    )
}

#[test]
fn single_worker_orphans_match_hashmap_reference() {
    let txs = generate(300, 11);
    for kind in AllocatorKind::PHP_STUDY {
        let (dense, reference) = replay(&txs, 1, kind);
        assert_eq!(
            dense, reference,
            "{kind}: dense table must count exactly the orphans the map did"
        );
        assert!(
            dense > 0,
            "{kind}: open-lifetime rails must actually produce orphans \
             (vacuous comparison otherwise)"
        );
    }
}

#[test]
fn multi_worker_round_robin_orphans_match() {
    // Spreading transactions over workers makes cross-transaction
    // references cross-*worker* references: strictly more orphans, and
    // the counts must still agree exactly.
    let txs = generate(300, 23);
    let (dense_1, reference_1) = replay(&txs, 1, AllocatorKind::DdMalloc);
    let (dense_3, reference_3) = replay(&txs, 3, AllocatorKind::DdMalloc);
    assert_eq!(dense_3, reference_3);
    assert_eq!(dense_1, reference_1);
    assert!(
        dense_3 >= dense_1,
        "splitting lifetimes across workers cannot reduce orphans \
         ({dense_3} @ 3 workers vs {dense_1} @ 1)"
    );
}

#[test]
fn orphan_counts_are_seed_stable_across_table_growth() {
    // A table that grew (collision rehash) must not change detection:
    // replay the same sequence into an executor whose table starts tiny
    // (forced growth) — counts must match the reference regardless.
    let txs = generate(200, 31);
    let (dense, reference) = replay(&txs, 2, AllocatorKind::Region);
    assert_eq!(dense, reference);
}
