//! Deterministic end-to-end smoke test of the native serving harness.
//!
//! Fixed seed, at least four workers, all three PHP-study allocator
//! families. Asserts the issue's acceptance properties:
//!
//! * every submitted transaction is completed or accounted for by the
//!   shed policy (`submitted == completed + shed`);
//! * `freeAll` leaves every worker heap empty between transactions
//!   (`max_live_after_tx == 0` on every worker);
//! * accounting is identical across repeated same-seed runs.

use webmm_alloc::AllocatorKind;
use webmm_server::{
    drive_closed, drive_open, AdmissionPolicy, Server, ServerConfig, ServerReport, TxFactory,
};
use webmm_workload::phpbb;

const SEED: u64 = 0xC0FFEE;
const WORKERS: usize = 4;
const TOTAL_TX: u64 = 48;

fn serve(kind: AllocatorKind) -> ServerReport {
    let server = Server::start(ServerConfig {
        kind,
        workers: WORKERS,
        queue_capacity: 16,
        policy: AdmissionPolicy::Block,
        static_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    drive_closed(&server, TxFactory::new(phpbb(), 1024, SEED), TOTAL_TX, 2);
    server.finish()
}

#[test]
fn all_three_families_serve_and_account_every_tx() {
    for kind in AllocatorKind::PHP_STUDY {
        let report = serve(kind);
        assert_eq!(report.allocator, kind.id());
        assert_eq!(report.workers, WORKERS as u64);
        assert_eq!(report.submitted, TOTAL_TX, "{kind}");
        assert_eq!(
            report.completed + report.shed,
            report.submitted,
            "{kind}: every tx completed or accounted by shed policy"
        );
        assert_eq!(report.shed, 0, "{kind}: Block policy sheds nothing");
        assert_eq!(report.latency.count, report.completed, "{kind}");
        assert!(report.latency.p50_ns <= report.latency.p99_ns, "{kind}");
        // Work actually spread over the pool: with 48 tx, 4 workers and a
        // blocking 16-deep queue, no worker can have served everything.
        let busiest = report.per_worker.iter().map(|w| w.completed).max().unwrap();
        assert!(
            busiest < TOTAL_TX,
            "{kind}: one worker served all transactions"
        );
        let by_worker: u64 = report.per_worker.iter().map(|w| w.completed).sum();
        assert_eq!(by_worker, report.completed, "{kind}");
    }
}

#[test]
fn free_all_leaves_every_worker_heap_empty_between_transactions() {
    for kind in AllocatorKind::PHP_STUDY {
        let report = serve(kind);
        for w in &report.per_worker {
            assert_eq!(
                w.max_live_after_tx, 0,
                "{kind}: worker {} finished a transaction with live objects",
                w.worker
            );
        }
        // phpBB transactions close every object lifetime within the
        // transaction, so nothing should ever be orphaned either.
        let orphans: u64 = report.per_worker.iter().map(|w| w.orphan_ops).sum();
        assert_eq!(orphans, 0, "{kind}");
    }
}

#[test]
fn same_seed_runs_account_identically() {
    for kind in AllocatorKind::PHP_STUDY {
        let a = serve(kind);
        let b = serve(kind);
        assert_eq!(a.submitted, b.submitted, "{kind}");
        assert_eq!(a.completed, b.completed, "{kind}");
        assert_eq!(a.shed, b.shed, "{kind}");
        // The total op mix is identical too: same bytes touched and the
        // same orphan count across the pool (scheduling may distribute
        // them differently between workers, so compare pool-wide sums).
        let bytes = |r: &ServerReport| r.per_worker.iter().map(|w| w.bytes_touched).sum::<u64>();
        assert_eq!(bytes(&a), bytes(&b), "{kind}");
    }
}

#[test]
fn overloaded_open_loop_still_accounts_every_tx() {
    let server = Server::start(ServerConfig {
        kind: AllocatorKind::DdMalloc,
        workers: WORKERS,
        queue_capacity: 4,
        policy: AdmissionPolicy::ShedOldest,
        static_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    drive_open(
        &server.ingress(),
        TxFactory::new(phpbb(), 256, SEED),
        64,
        1e6,
    );
    let report = server.finish();
    assert_eq!(report.submitted, 64);
    assert_eq!(report.completed + report.shed, 64);
    for w in &report.per_worker {
        assert_eq!(w.max_live_after_tx, 0);
    }
}
