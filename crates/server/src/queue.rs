//! Bounded MPMC ingress queue with configurable admission control.
//!
//! The paper's serving story is a web server fanning transactions out to a
//! pool of PHP workers; the piece the simulator never modelled is what
//! happens at the front door when offered load exceeds capacity. This
//! queue makes that explicit: a fixed-capacity buffer plus an
//! [`AdmissionPolicy`] deciding whether an arriving transaction waits
//! (closed-loop clients), bounces (fail-fast), or displaces the oldest
//! queued transaction (freshness under overload).
//!
//! Every admission outcome is counted, so the server can prove the
//! accounting identity `submitted == completed + shed` after drain.

use crate::pool::TxBufferPool;
use crate::telemetry::ServerTelemetry;
use crate::Transaction;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use webmm_obs::{ShardSample, TxSpan};

/// Which ingress implementation a server runs behind.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum QueueMode {
    /// One shared [`TxQueue`]: every submitter and every worker contends
    /// on the same lock. The baseline the paper's bus-contention argument
    /// predicts will stop scaling.
    Global,
    /// One shard per worker with batched drain and work stealing (see
    /// [`ShardedTxQueue`](crate::ShardedTxQueue)): submissions spread
    /// round-robin (or by affinity key) over per-worker queues, workers
    /// drain their own shard in batches under one lock acquisition and
    /// steal half a victim's backlog when theirs runs dry.
    #[default]
    Sharded,
}

impl QueueMode {
    /// Stable identifier for CLI arguments and JSON output.
    pub fn id(self) -> &'static str {
        match self {
            QueueMode::Global => "global",
            QueueMode::Sharded => "sharded",
        }
    }

    /// Parses an id produced by [`QueueMode::id`].
    pub fn from_id(id: &str) -> Option<Self> {
        [QueueMode::Global, QueueMode::Sharded]
            .into_iter()
            .find(|m| m.id() == id)
    }
}

/// What the queue does when a transaction arrives and the buffer is full.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Make the submitter wait for space — the backpressure a closed-loop
    /// client population experiences.
    Block,
    /// Turn the new arrival away immediately (counted as shed).
    Reject,
    /// Admit the new arrival and drop the *oldest* queued transaction
    /// (counted as shed): under overload, freshest work first.
    ShedOldest,
}

impl AdmissionPolicy {
    /// Stable identifier for CLI arguments and JSON output.
    pub fn id(self) -> &'static str {
        match self {
            AdmissionPolicy::Block => "block",
            AdmissionPolicy::Reject => "reject",
            AdmissionPolicy::ShedOldest => "shed-oldest",
        }
    }

    /// Parses an id produced by [`AdmissionPolicy::id`].
    pub fn from_id(id: &str) -> Option<Self> {
        [
            AdmissionPolicy::Block,
            AdmissionPolicy::Reject,
            AdmissionPolicy::ShedOldest,
        ]
        .into_iter()
        .find(|p| p.id() == id)
    }
}

/// Outcome of one [`TxQueue::submit`] call.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The transaction was enqueued (possibly after blocking).
    Accepted,
    /// The transaction was turned away ([`AdmissionPolicy::Reject`], or
    /// any submission after [`TxQueue::close`]).
    Rejected,
    /// The transaction was enqueued and the oldest queued transaction was
    /// dropped to make room ([`AdmissionPolicy::ShedOldest`]).
    AcceptedSheddingOldest,
}

/// A transaction with its admission timestamp (latency measurement starts
/// at the front door, so queueing delay is part of service latency).
pub(crate) struct QueuedTx {
    pub tx: Transaction,
    pub enqueued: Instant,
}

/// Monotonic counters maintained by the queue.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueCounters {
    /// `submit` calls observed.
    pub submitted: u64,
    /// Transactions dropped by admission control (rejections plus
    /// shed-oldest victims).
    pub shed: u64,
    /// Deepest the queue has been. For sharded queues this is the deepest
    /// any single shard has been (depths at different shards peak at
    /// different instants, so summing them would overstate backlog).
    pub max_depth: u64,
}

/// A coherent point-in-time view of a queue: depth and counters read
/// under one lock acquisition per shard, instead of callers taking the
/// lock once for [`TxQueue::depth`] and again for [`TxQueue::counters`].
#[derive(Clone, Debug, Default)]
pub struct QueueSnapshot {
    /// Transactions queued across all shards at snapshot time.
    pub depth: u64,
    /// Admission counters summed across shards.
    pub counters: QueueCounters,
    /// Per-shard breakdown; empty for the global queue.
    pub shards: Vec<ShardSample>,
}

/// Records a shed span for transaction `tx_id` into `telemetry`'s shed
/// lane (shared between the global and sharded queues — sheds happen on
/// submitter threads, not worker threads). `queued_for` is how long a
/// shed-oldest victim sat in the queue (`None` for rejections at the
/// front door).
pub(crate) fn trace_shed(
    telemetry: &Option<Arc<ServerTelemetry>>,
    tx_id: u64,
    queued_for: Option<std::time::Duration>,
) {
    if let Some(t) = telemetry {
        let now = t.tracer.now_ns();
        let waited = queued_for.map_or(0, |d| d.as_nanos().min(u128::from(u64::MAX)) as u64);
        t.tracer.record_shed(TxSpan {
            tx_id,
            enqueue_ns: now.saturating_sub(waited),
            complete_ns: now,
            ..TxSpan::default()
        });
    }
}

/// Returns a dead transaction's op buffer to `pool` (no-op without one).
/// Called wherever admission control kills a transaction — rejections and
/// shed-oldest victims — so those paths recycle exactly like completions.
pub(crate) fn recycle(pool: &Option<Arc<TxBufferPool>>, tx: Transaction) {
    if let Some(p) = pool {
        p.put(tx.ops);
    }
}

struct QueueState {
    buf: VecDeque<QueuedTx>,
    closed: bool,
    counters: QueueCounters,
}

/// Bounded multi-producer multi-consumer transaction queue.
pub struct TxQueue {
    state: Mutex<QueueState>,
    /// Signalled when a transaction is enqueued or the queue closes.
    not_empty: Condvar,
    /// Signalled when a transaction is dequeued (Block-policy waiters).
    not_full: Condvar,
    capacity: usize,
    policy: AdmissionPolicy,
    /// When present, shed transactions leave spans in the tracer's shed
    /// lane (sheds happen on submitter threads, not worker threads).
    telemetry: Option<Arc<ServerTelemetry>>,
    /// When present, rejected and shed transactions return their op
    /// buffers here instead of dropping them.
    pool: Option<Arc<TxBufferPool>>,
}

impl TxQueue {
    /// Creates a queue holding at most `capacity` transactions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: AdmissionPolicy) -> Self {
        assert!(capacity > 0, "queue capacity must be nonzero");
        TxQueue {
            state: Mutex::new(QueueState {
                buf: VecDeque::with_capacity(capacity),
                closed: false,
                counters: QueueCounters::default(),
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            policy,
            telemetry: None,
            pool: None,
        }
    }

    /// Routes shed spans into `telemetry`'s tracer. Called by the server
    /// before the queue is shared.
    pub(crate) fn install_telemetry(&mut self, telemetry: Arc<ServerTelemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Routes dead transactions' op buffers into `pool`. Called by the
    /// server before the queue is shared.
    pub(crate) fn install_pool(&mut self, pool: Arc<TxBufferPool>) {
        self.pool = Some(pool);
    }

    /// Records a shed span for transaction `tx_id`. `queued_for` is how
    /// long a shed-oldest victim sat in the queue (zero for rejections at
    /// the front door).
    fn trace_shed(&self, tx_id: u64, queued_for: Option<std::time::Duration>) {
        trace_shed(&self.telemetry, tx_id, queued_for);
    }

    /// The configured admission policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers a transaction to the queue; the admission outcome depends on
    /// the policy. Every call increments `submitted`, and every outcome
    /// other than enqueueing increments `shed`, so
    /// `submitted == completed + shed` holds after a drain.
    pub fn submit(&self, tx: Transaction) -> Admission {
        let mut st = self.state.lock().expect("queue lock");
        st.counters.submitted += 1;
        if st.closed {
            st.counters.shed += 1;
            drop(st);
            self.trace_shed(tx.id, None);
            recycle(&self.pool, tx);
            return Admission::Rejected;
        }
        if st.buf.len() >= self.capacity {
            match self.policy {
                AdmissionPolicy::Block => {
                    while st.buf.len() >= self.capacity && !st.closed {
                        st = self.not_full.wait(st).expect("queue lock");
                    }
                    if st.closed {
                        st.counters.shed += 1;
                        drop(st);
                        self.trace_shed(tx.id, None);
                        recycle(&self.pool, tx);
                        return Admission::Rejected;
                    }
                }
                AdmissionPolicy::Reject => {
                    st.counters.shed += 1;
                    drop(st);
                    self.trace_shed(tx.id, None);
                    recycle(&self.pool, tx);
                    return Admission::Rejected;
                }
                AdmissionPolicy::ShedOldest => {
                    let victim = st.buf.pop_front();
                    st.counters.shed += 1;
                    st.buf.push_back(QueuedTx {
                        tx,
                        enqueued: Instant::now(),
                    });
                    self.not_empty.notify_one();
                    drop(st);
                    if let Some(v) = victim {
                        self.trace_shed(v.tx.id, Some(v.enqueued.elapsed()));
                        recycle(&self.pool, v.tx);
                    }
                    return Admission::AcceptedSheddingOldest;
                }
            }
        }
        st.buf.push_back(QueuedTx {
            tx,
            enqueued: Instant::now(),
        });
        let depth = st.buf.len() as u64;
        st.counters.max_depth = st.counters.max_depth.max(depth);
        self.not_empty.notify_one();
        Admission::Accepted
    }

    /// Takes the next transaction, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed *and* drained — the
    /// worker's signal to exit.
    pub(crate) fn pop(&self) -> Option<QueuedTx> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if let Some(q) = st.buf.pop_front() {
                self.not_full.notify_one();
                return Some(q);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue lock");
        }
    }

    /// Closes the front door: subsequent submissions are rejected, queued
    /// transactions still drain, blocked submitters and idle workers wake.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("queue lock");
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`TxQueue::close`] has been called — submissions are
    /// being rejected and the queue is draining. Network front-ends use
    /// this to answer `Draining` instead of offering doomed work.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// Transactions currently queued (a gauge; racy by nature).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").buf.len()
    }

    /// Snapshot of the admission counters.
    pub fn counters(&self) -> QueueCounters {
        self.state.lock().expect("queue lock").counters
    }

    /// Depth and counters under a single lock acquisition — what the
    /// telemetry sampler wants, instead of paying (and racing) two
    /// separate [`TxQueue::depth`] / [`TxQueue::counters`] locks.
    pub fn snapshot(&self) -> QueueSnapshot {
        let st = self.state.lock().expect("queue lock");
        QueueSnapshot {
            depth: st.buf.len() as u64,
            counters: st.counters,
            shards: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(id: u64) -> Transaction {
        Transaction {
            id,
            ops: Vec::new(),
        }
    }

    #[test]
    fn fifo_order_within_capacity() {
        let q = TxQueue::new(8, AdmissionPolicy::Reject);
        for i in 0..5 {
            assert_eq!(q.submit(tx(i)), Admission::Accepted);
        }
        for i in 0..5 {
            assert_eq!(q.pop().unwrap().tx.id, i);
        }
        assert_eq!(q.counters().max_depth, 5);
    }

    #[test]
    fn reject_policy_bounces_when_full() {
        let q = TxQueue::new(2, AdmissionPolicy::Reject);
        assert_eq!(q.submit(tx(0)), Admission::Accepted);
        assert_eq!(q.submit(tx(1)), Admission::Accepted);
        assert_eq!(q.submit(tx(2)), Admission::Rejected);
        let c = q.counters();
        assert_eq!((c.submitted, c.shed), (3, 1));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn shed_oldest_keeps_freshest() {
        let q = TxQueue::new(2, AdmissionPolicy::ShedOldest);
        q.submit(tx(0));
        q.submit(tx(1));
        assert_eq!(q.submit(tx(2)), Admission::AcceptedSheddingOldest);
        assert_eq!(q.pop().unwrap().tx.id, 1);
        assert_eq!(q.pop().unwrap().tx.id, 2);
        assert_eq!(q.counters().shed, 1);
    }

    #[test]
    fn close_rejects_submissions_but_drains() {
        let q = TxQueue::new(4, AdmissionPolicy::Block);
        q.submit(tx(0));
        q.close();
        assert_eq!(q.submit(tx(1)), Admission::Rejected);
        assert_eq!(q.pop().unwrap().tx.id, 0);
        assert!(q.pop().is_none());
        let c = q.counters();
        assert_eq!(c.submitted, 2);
        assert_eq!(c.shed, 1);
    }

    #[test]
    fn block_policy_waits_for_space() {
        use std::sync::Arc;
        let q = Arc::new(TxQueue::new(1, AdmissionPolicy::Block));
        q.submit(tx(0));
        let q2 = Arc::clone(&q);
        let submitter = std::thread::spawn(move || q2.submit(tx(1)));
        // Give the submitter time to block, then free a slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop().unwrap().tx.id, 0);
        assert_eq!(submitter.join().unwrap(), Admission::Accepted);
        assert_eq!(q.pop().unwrap().tx.id, 1);
        assert_eq!(q.counters().shed, 0);
    }

    #[test]
    fn close_releases_blocked_submitters() {
        use std::sync::Arc;
        let q = Arc::new(TxQueue::new(1, AdmissionPolicy::Block));
        q.submit(tx(0));
        let q2 = Arc::clone(&q);
        let submitter = std::thread::spawn(move || q2.submit(tx(1)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(submitter.join().unwrap(), Admission::Rejected);
    }

    #[test]
    fn pop_blocks_until_work_arrives() {
        use std::sync::Arc;
        let q = Arc::new(TxQueue::new(4, AdmissionPolicy::Block));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop().map(|q| q.tx.id));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.submit(tx(9));
        assert_eq!(popper.join().unwrap(), Some(9));
    }
}
