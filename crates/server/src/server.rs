//! Server lifecycle: spawn, serve, drain, report.
//!
//! [`Server::start`] brings up the worker pool against a bounded ingress
//! queue; transactions go in through [`Server::submit`] (or a cloneable
//! [`Ingress`] handle for multi-threaded load generators);
//! [`Server::finish`] closes the front door, lets every queued transaction
//! drain, joins the workers, and folds their counters and histograms into
//! a [`ServerReport`] whose accounting identity
//! `submitted == completed + shed` is checked before it is returned.

use crate::ingress::IngressQueue;
use crate::pool::{PoolStats, TxBufferPool};
use crate::queue::{Admission, AdmissionPolicy, QueueMode};
use crate::telemetry::{ObsConfig, ObsSample, Sampler, ServerTelemetry};
use crate::worker::{self, WorkerReport};
use crate::Transaction;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use webmm_alloc::AllocatorKind;
use webmm_obs::{LatencyHistogram, LatencySummary, TxSpan};

/// Configuration of a native serving run.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Allocator family every worker builds a private heap from.
    pub kind: AllocatorKind,
    /// Worker threads (one heap each).
    pub workers: usize,
    /// Ingress queue capacity (total across shards in sharded mode).
    pub queue_capacity: usize,
    /// What happens to arrivals when the queue is full.
    pub policy: AdmissionPolicy,
    /// Ingress implementation: the single global queue, or one shard per
    /// worker with batched drain and stealing (the default).
    pub queue_mode: QueueMode,
    /// Maximum transactions a worker takes from its shard per lock
    /// acquisition (sharded mode only; the global queue hands over one at
    /// a time).
    pub batch: usize,
    /// Per-worker static data area (interpreter tables etc.), bytes.
    pub static_bytes: u64,
    /// Live telemetry (`None`: zero observation machinery is built).
    pub obs: Option<ObsConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            kind: AllocatorKind::DdMalloc,
            workers: 4,
            queue_capacity: 128,
            policy: AdmissionPolicy::Block,
            queue_mode: QueueMode::Sharded,
            batch: 32,
            static_bytes: 2 << 20,
            obs: None,
        }
    }
}

/// A running pool of allocator workers behind a bounded queue.
pub struct Server {
    queue: Arc<IngressQueue>,
    pool: Arc<TxBufferPool>,
    handles: Vec<JoinHandle<(WorkerReport, LatencyHistogram)>>,
    kind: AllocatorKind,
    started: Instant,
    telemetry: Option<Arc<ServerTelemetry>>,
    sampler: Option<Sampler>,
}

impl Server {
    /// Spawns the worker pool and opens the ingress queue.
    ///
    /// # Panics
    ///
    /// Panics if `workers`, `queue_capacity`, or `batch` is zero.
    pub fn start(config: ServerConfig) -> Self {
        assert!(config.workers > 0, "server needs at least one worker");
        let telemetry = config
            .obs
            .as_ref()
            .map(|obs| Arc::new(ServerTelemetry::new(obs, config.workers)));
        let mut queue = IngressQueue::new(
            config.queue_mode,
            config.workers,
            config.queue_capacity,
            config.policy,
            config.batch,
        );
        if let Some(t) = &telemetry {
            queue.install_telemetry(Arc::clone(t));
        }
        // One pool shard per worker; retention sized so that every buffer
        // that can be in flight at once (the queue's backlog plus one
        // drained batch per worker, plus slack for buffers in generator
        // hands) fits without drops in steady state.
        let pool = Arc::new(TxBufferPool::new(
            config.workers,
            config.queue_capacity.div_ceil(config.workers) + config.batch + 8,
        ));
        queue.install_pool(Arc::clone(&pool));
        let queue = Arc::new(queue);
        let handles = (0..config.workers)
            .map(|w| {
                let queue = Arc::clone(&queue);
                let pool = Arc::clone(&pool);
                let kind = config.kind;
                let static_bytes = config.static_bytes;
                let telemetry = telemetry.clone();
                std::thread::Builder::new()
                    .name(format!("webmm-worker-{w}"))
                    .spawn(move || {
                        worker::run(w as u64, kind, static_bytes, queue, pool, telemetry)
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        let sampler = match (&telemetry, &config.obs) {
            (Some(t), Some(obs)) => Some(Sampler::spawn(Arc::clone(t), Arc::clone(&queue), obs)),
            _ => None,
        };
        Server {
            queue,
            pool,
            handles,
            kind: config.kind,
            started: Instant::now(),
            telemetry,
            sampler,
        }
    }

    /// The transaction-buffer pool completed workers recycle into. Load
    /// generators draw from it so steady-state transactions reuse op
    /// buffers instead of allocating; [`TxFactory`](crate::TxFactory)
    /// attaches to it automatically via [`drive_closed`](crate::drive_closed)
    /// / [`drive_open`](crate::drive_open).
    pub fn buffer_pool(&self) -> Arc<TxBufferPool> {
        Arc::clone(&self.pool)
    }

    /// Offers one transaction to the ingress queue.
    pub fn submit(&self, tx: Transaction) -> Admission {
        self.queue.submit(tx)
    }

    /// Offers one transaction pinned to the shard `key` hashes to —
    /// affinity-keyed submission (same session, same tenant → same
    /// worker heap). The global queue accepts and ignores the key.
    pub fn submit_affinity(&self, key: u64, tx: Transaction) -> Admission {
        self.queue.submit_affinity(key, tx)
    }

    /// A cloneable submission handle for client threads.
    pub fn ingress(&self) -> Ingress {
        Ingress {
            queue: Arc::clone(&self.queue),
            pool: Arc::clone(&self.pool),
        }
    }

    /// Transactions currently queued (gauge).
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Whether the ingress queue has been closed for draining. Front-end
    /// tiers (e.g. `webmm-net`) check this to refuse new work with a
    /// drain status instead of submitting transactions that would only
    /// be counted as shed.
    pub fn is_closed(&self) -> bool {
        self.queue.is_closed()
    }

    /// The live telemetry plane, when the config asked for one.
    pub fn telemetry(&self) -> Option<&Arc<ServerTelemetry>> {
        self.telemetry.as_ref()
    }

    /// All transaction spans currently retained in the trace rings
    /// (completions per worker plus the shed lane), sorted by completion
    /// time. Empty without telemetry.
    pub fn dump_spans(&self) -> Vec<TxSpan> {
        self.telemetry
            .as_ref()
            .map(|t| t.dump_spans())
            .unwrap_or_default()
    }

    /// Closes the ingress queue, drains it, joins every worker, and
    /// returns the merged report.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked, or if the admission accounting
    /// identity `submitted == completed + shed` does not hold.
    pub fn finish(self) -> ServerReport {
        self.finish_with_obs().0
    }

    /// Like [`Server::finish`], but also returns the telemetry time
    /// series the sampler collected (empty without telemetry). The
    /// sampler takes one final sample after the workers drain, so the
    /// series always ends with the settled state.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Server::finish`].
    pub fn finish_with_obs(self) -> (ServerReport, Vec<ObsSample>) {
        self.queue.close();
        let mut latencies = LatencyHistogram::new();
        let mut per_worker = Vec::with_capacity(self.handles.len());
        for h in self.handles {
            let (report, hist) = h.join().expect("worker thread panicked");
            latencies.merge(&hist);
            per_worker.push(report);
        }
        let samples = self.sampler.map(Sampler::stop).unwrap_or_default();
        let wall_ns = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let counters = self.queue.counters();
        let completed: u64 = per_worker.iter().map(|w| w.completed).sum();
        let steals: u64 = per_worker.iter().map(|w| w.steals).sum();
        assert_eq!(
            counters.submitted,
            completed + counters.shed,
            "admission accounting broken: {} submitted != {} completed + {} shed",
            counters.submitted,
            completed,
            counters.shed,
        );
        let secs = wall_ns as f64 / 1e9;
        let pool = self.pool.stats();
        let report = ServerReport {
            allocator: self.kind.id().to_string(),
            workers: per_worker.len() as u64,
            queue_capacity: self.queue.capacity() as u64,
            policy: self.queue.policy().id().to_string(),
            queue_mode: self.queue.mode().id().to_string(),
            submitted: counters.submitted,
            completed,
            shed: counters.shed,
            steals,
            max_queue_depth: counters.max_depth,
            wall_ns,
            tx_per_sec: if secs > 0.0 {
                completed as f64 / secs
            } else {
                0.0
            },
            latency: latencies.summary(),
            pool,
            per_worker,
        };
        (report, samples)
    }
}

/// Cloneable handle submitting transactions to a running [`Server`].
#[derive(Clone)]
pub struct Ingress {
    queue: Arc<IngressQueue>,
    pool: Arc<TxBufferPool>,
}

impl Ingress {
    /// Offers one transaction to the ingress queue.
    pub fn submit(&self, tx: Transaction) -> Admission {
        self.queue.submit(tx)
    }

    /// Offers one transaction pinned to the shard `key` hashes to (see
    /// [`Server::submit_affinity`]).
    pub fn submit_affinity(&self, key: u64, tx: Transaction) -> Admission {
        self.queue.submit_affinity(key, tx)
    }

    /// The server's transaction-buffer pool (see [`Server::buffer_pool`]).
    pub fn pool(&self) -> Arc<TxBufferPool> {
        Arc::clone(&self.pool)
    }

    /// Whether the ingress queue has been closed for draining (see
    /// [`Server::is_closed`]).
    pub fn is_closed(&self) -> bool {
        self.queue.is_closed()
    }
}

/// Everything a serving run produced, JSON-serializable.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ServerReport {
    /// Allocator family id (e.g. `ddmalloc`).
    pub allocator: String,
    /// Worker threads that served.
    pub workers: u64,
    /// Ingress queue capacity.
    pub queue_capacity: u64,
    /// Admission policy id.
    pub policy: String,
    /// Ingress implementation id (`global` or `sharded`).
    pub queue_mode: String,
    /// Transactions offered.
    pub submitted: u64,
    /// Transactions fully executed.
    pub completed: u64,
    /// Transactions dropped by admission control.
    pub shed: u64,
    /// Transactions served by a worker other than the one whose shard
    /// admitted them (work stealing; 0 in global mode).
    pub steals: u64,
    /// Deepest the ingress queue got (deepest single shard in sharded
    /// mode).
    pub max_queue_depth: u64,
    /// Wall-clock duration of the run (start to drain), nanoseconds.
    pub wall_ns: u64,
    /// Completed transactions per wall-clock second.
    pub tx_per_sec: f64,
    /// Service latency quantiles (admission to completion).
    pub latency: LatencySummary,
    /// Transaction-buffer pool traffic (recycled vs fresh buffers).
    pub pool: PoolStats,
    /// Per-worker counters.
    pub per_worker: Vec<WorkerReport>,
}

impl ServerReport {
    /// Pretty-printed JSON rendering.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot for this type).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ServerReport serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webmm_workload::WorkOp;

    fn tiny_tx(id: u64) -> Transaction {
        Transaction {
            id,
            ops: vec![
                WorkOp::Malloc { id: 1, size: 64 },
                WorkOp::Touch {
                    id: 1,
                    write: false,
                },
                WorkOp::EndTx,
            ],
        }
    }

    #[test]
    fn serve_drain_report_accounts_every_tx() {
        let server = Server::start(ServerConfig {
            kind: AllocatorKind::DdMalloc,
            workers: 2,
            queue_capacity: 16,
            policy: AdmissionPolicy::Block,
            static_bytes: 1 << 16,
            ..ServerConfig::default()
        });
        for i in 0..50 {
            server.submit(tiny_tx(i));
        }
        let report = server.finish();
        assert_eq!(report.submitted, 50);
        assert_eq!(report.completed + report.shed, 50);
        assert_eq!(report.shed, 0, "Block policy never sheds");
        assert_eq!(report.latency.count, report.completed);
        assert_eq!(report.per_worker.len(), 2);
        assert!(report.tx_per_sec > 0.0);
    }

    #[test]
    fn report_json_roundtrips() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 4,
            ..ServerConfig::default()
        });
        server.submit(tiny_tx(0));
        let report = server.finish();
        let json = report.to_json();
        let back: ServerReport = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(back.completed, report.completed);
        assert_eq!(back.allocator, report.allocator);
        assert_eq!(back.latency.count, report.latency.count);
        assert_eq!(back.per_worker.len(), report.per_worker.len());
    }

    #[test]
    fn finish_with_no_traffic_is_clean() {
        let server = Server::start(ServerConfig::default());
        let report = server.finish();
        assert_eq!(report.submitted, 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.latency.count, 0);
    }
}
