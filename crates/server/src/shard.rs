//! Sharded work-stealing ingress: per-worker queues, batched drain,
//! steal-half balancing.
//!
//! The paper's thesis is that per-transaction memory management must stay
//! off the shared bottleneck; the serving harness's original single
//! `Mutex`+`Condvar` ingress queue re-created exactly such a bottleneck
//! in software — every submitter and every worker serialized on one lock,
//! so adding workers mostly added lock handoffs. This module applies the
//! same cure multicore allocators use (Hoard's per-processor heaps,
//! scalloc's per-core spans): **per-worker structures with stealing for
//! balance**.
//!
//! * Submitters spread transactions over one shard per worker, round-robin
//!   by default or keyed by an affinity value ([`ShardedTxQueue::submit_affinity`]).
//! * Workers drain *their own* shard in batches of up to `batch`
//!   transactions under a single lock acquisition, amortizing the lock
//!   and the condvar signalling across the whole batch.
//! * A worker whose shard runs dry steals the **older half** of a victim
//!   shard's backlog (oldest-first keeps the latency tail honest), so an
//!   idle worker always makes progress while any shard holds work.
//!
//! Admission control ([`AdmissionPolicy`]) applies at the *shard* level:
//! the configured capacity is divided evenly across shards, and a full
//! shard blocks / rejects / sheds its own oldest exactly as the global
//! queue would. Shard-level shed preserves the paper's drop semantics —
//! under overload the freshest work in each shard survives — while
//! keeping the shed decision on the submitter's lock, never a global one.
//!
//! Accounting stays exact across steals: `submitted` and `shed` are
//! counted at the shard where the event happened, and a steal merely
//! moves an already-admitted transaction from a shard buffer into the
//! thief's private batch, where it is completed. The server's identity
//! `submitted == completed + shed` therefore holds for any interleaving
//! of submits, steals, and sheds (stress-tested in
//! `tests/sharded.rs`).

use crate::pool::TxBufferPool;
use crate::queue::{
    recycle, trace_shed, Admission, AdmissionPolicy, QueueCounters, QueueSnapshot, QueuedTx,
};
use crate::telemetry::ServerTelemetry;
use crate::Transaction;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use webmm_obs::ShardSample;

/// How a batch of transactions reached a worker.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum Fill {
    /// `n` transactions drained from the worker's own shard (or, for the
    /// global queue, popped from the shared buffer).
    Own(usize),
    /// `n` transactions stolen from another worker's shard.
    Stolen(usize),
    /// The queue is closed and every shard has drained: the worker's
    /// signal to exit.
    Closed,
}

struct ShardState {
    buf: VecDeque<QueuedTx>,
    counters: QueueCounters,
    /// Transactions other workers stole from this shard.
    stolen: u64,
}

struct Shard {
    state: Mutex<ShardState>,
    /// Signalled when a transaction lands in this shard or the queue
    /// closes.
    not_empty: Condvar,
    /// Signalled when this shard is drained or stolen from
    /// (Block-policy waiters).
    not_full: Condvar,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            state: Mutex::new(ShardState {
                buf: VecDeque::with_capacity(capacity),
                counters: QueueCounters::default(),
                stolen: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }
}

/// Bounded multi-producer ingress queue sharded one-per-worker, with
/// batched drain and work stealing between shards.
pub struct ShardedTxQueue {
    shards: Vec<Shard>,
    /// Per-shard buffer bound (total capacity divided evenly, rounded up).
    shard_capacity: usize,
    /// The capacity the queue was configured with (for reporting).
    configured_capacity: usize,
    policy: AdmissionPolicy,
    /// Maximum transactions a worker takes per lock acquisition.
    batch: usize,
    closed: AtomicBool,
    /// Round-robin submission cursor.
    rr: AtomicUsize,
    telemetry: Option<Arc<ServerTelemetry>>,
    /// When present, rejected and shed transactions return their op
    /// buffers here instead of dropping them.
    pool: Option<Arc<TxBufferPool>>,
}

impl ShardedTxQueue {
    /// Creates a queue of `shards` shards holding `capacity` transactions
    /// in total (divided evenly, rounded up so every shard can hold at
    /// least one), draining in batches of up to `batch`.
    ///
    /// # Panics
    ///
    /// Panics if `shards`, `capacity`, or `batch` is zero.
    pub fn new(shards: usize, capacity: usize, policy: AdmissionPolicy, batch: usize) -> Self {
        assert!(shards > 0, "sharded queue needs at least one shard");
        assert!(capacity > 0, "queue capacity must be nonzero");
        assert!(batch > 0, "drain batch must be nonzero");
        let shard_capacity = capacity.div_ceil(shards).max(1);
        ShardedTxQueue {
            shards: (0..shards).map(|_| Shard::new(shard_capacity)).collect(),
            shard_capacity,
            configured_capacity: capacity,
            policy,
            batch,
            closed: AtomicBool::new(false),
            rr: AtomicUsize::new(0),
            telemetry: None,
            pool: None,
        }
    }

    /// Routes shed spans into `telemetry`'s tracer. Called by the server
    /// before the queue is shared.
    pub(crate) fn install_telemetry(&mut self, telemetry: Arc<ServerTelemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Routes dead transactions' op buffers into `pool`. Called by the
    /// server before the queue is shared.
    pub(crate) fn install_pool(&mut self, pool: Arc<TxBufferPool>) {
        self.pool = Some(pool);
    }

    /// The configured admission policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// The capacity the queue was configured with. The effective bound is
    /// `shards() × shard_capacity()`, which rounds this up to a multiple
    /// of the shard count.
    pub fn capacity(&self) -> usize {
        self.configured_capacity
    }

    /// Number of shards (one per worker).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard buffer bound.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Offers a transaction to the next shard in round-robin order. Same
    /// admission semantics as [`TxQueue::submit`](crate::TxQueue::submit),
    /// applied at the chosen shard.
    pub fn submit(&self, tx: Transaction) -> Admission {
        let shard = self.rr.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.submit_to(shard, tx)
    }

    /// Offers a transaction to the shard `key` hashes to — affinity-keyed
    /// submission for clients that want related transactions (same
    /// session, same tenant) served by the same worker's heap.
    pub fn submit_affinity(&self, key: u64, tx: Transaction) -> Admission {
        let shard = (key % self.shards.len() as u64) as usize;
        self.submit_to(shard, tx)
    }

    /// Offers a transaction to shard `shard` directly. Every call
    /// increments that shard's `submitted`, and every outcome other than
    /// enqueueing increments its `shed`, so the identity
    /// `submitted == completed + shed` holds across shards after a drain.
    fn submit_to(&self, shard: usize, tx: Transaction) -> Admission {
        let s = &self.shards[shard];
        let mut st = s.state.lock().expect("shard lock");
        st.counters.submitted += 1;
        if self.closed.load(Ordering::Acquire) {
            st.counters.shed += 1;
            drop(st);
            trace_shed(&self.telemetry, tx.id, None);
            recycle(&self.pool, tx);
            return Admission::Rejected;
        }
        if st.buf.len() >= self.shard_capacity {
            match self.policy {
                AdmissionPolicy::Block => {
                    while st.buf.len() >= self.shard_capacity
                        && !self.closed.load(Ordering::Acquire)
                    {
                        st = s.not_full.wait(st).expect("shard lock");
                    }
                    if self.closed.load(Ordering::Acquire) {
                        st.counters.shed += 1;
                        drop(st);
                        trace_shed(&self.telemetry, tx.id, None);
                        recycle(&self.pool, tx);
                        return Admission::Rejected;
                    }
                }
                AdmissionPolicy::Reject => {
                    st.counters.shed += 1;
                    drop(st);
                    trace_shed(&self.telemetry, tx.id, None);
                    recycle(&self.pool, tx);
                    return Admission::Rejected;
                }
                AdmissionPolicy::ShedOldest => {
                    let victim = st.buf.pop_front();
                    st.counters.shed += 1;
                    st.buf.push_back(QueuedTx {
                        tx,
                        enqueued: Instant::now(),
                    });
                    s.not_empty.notify_one();
                    drop(st);
                    if let Some(v) = victim {
                        trace_shed(&self.telemetry, v.tx.id, Some(v.enqueued.elapsed()));
                        recycle(&self.pool, v.tx);
                    }
                    return Admission::AcceptedSheddingOldest;
                }
            }
        }
        st.buf.push_back(QueuedTx {
            tx,
            enqueued: Instant::now(),
        });
        let depth = st.buf.len() as u64;
        st.counters.max_depth = st.counters.max_depth.max(depth);
        s.not_empty.notify_one();
        Admission::Accepted
    }

    /// Fills `out` with worker `worker`'s next batch: up to `batch`
    /// transactions drained from its own shard under one lock, or — when
    /// the shard is dry — the older half of the first non-empty victim
    /// shard's backlog (capped at `batch`). Blocks (with a steal-retry
    /// timeout, since work may arrive only at *other* shards under
    /// affinity keying) while the queue is open and everything is empty.
    /// Returns [`Fill::Closed`] once the queue is closed *and* every
    /// shard has drained.
    pub(crate) fn pop_batch(&self, worker: usize, out: &mut VecDeque<QueuedTx>) -> Fill {
        let n = self.shards.len();
        loop {
            // Read the flag *before* scanning: if it was set before the
            // scan began, no shard can refill afterwards (submissions are
            // rejected and steals only remove), so an all-empty scan
            // proves the queue is drained. A close racing the scan just
            // causes one more loop iteration.
            let was_closed = self.closed.load(Ordering::Acquire);

            // Own shard first: one lock, whole batch.
            {
                let s = &self.shards[worker];
                let mut st = s.state.lock().expect("shard lock");
                let take = self.batch.min(st.buf.len());
                if take > 0 {
                    out.extend(st.buf.drain(..take));
                    drop(st);
                    // A batch frees `take` slots: wake every blocked
                    // submitter that can now fit.
                    s.not_full.notify_all();
                    return Fill::Own(take);
                }
            }

            // Steal scan: victims in rotating order starting after us.
            for off in 1..n {
                let victim = (worker + off) % n;
                let s = &self.shards[victim];
                let mut st = s.state.lock().expect("shard lock");
                let backlog = st.buf.len();
                if backlog > 0 {
                    // Half the backlog, oldest first: the victim keeps
                    // its fresher half, the thief retires the transactions
                    // that have waited longest.
                    let take = backlog.div_ceil(2).min(self.batch);
                    out.extend(st.buf.drain(..take));
                    st.stolen += take as u64;
                    drop(st);
                    s.not_full.notify_all();
                    return Fill::Stolen(take);
                }
            }

            if was_closed {
                return Fill::Closed;
            }

            // Everything empty, queue open: wait for an arrival on the
            // home shard. Timed, because under affinity keying new work
            // may only ever land on other shards and nobody signals ours.
            let s = &self.shards[worker];
            let st = s.state.lock().expect("shard lock");
            if st.buf.is_empty() && !self.closed.load(Ordering::Acquire) {
                let _ = s
                    .not_empty
                    .wait_timeout(st, Duration::from_micros(500))
                    .expect("shard lock");
            }
        }
    }

    /// Closes the front door on every shard: subsequent submissions are
    /// rejected, queued transactions still drain (by their own worker or
    /// by thieves), blocked submitters and idle workers wake.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for s in &self.shards {
            // Acquire-release the shard lock so a submitter or worker
            // that checked `closed` before the store cannot be parked
            // between its check and its wait when the notification fires.
            drop(s.state.lock().expect("shard lock"));
            s.not_empty.notify_all();
            s.not_full.notify_all();
        }
    }

    /// Whether [`ShardedTxQueue::close`] has been called — submissions
    /// are being rejected and the shards are draining. Network
    /// front-ends use this to answer `Draining` instead of offering
    /// doomed work.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Transactions currently queued across all shards (a gauge; racy by
    /// nature).
    pub fn depth(&self) -> usize {
        self.snapshot().depth as usize
    }

    /// Admission counters summed across shards (`max_depth` is the
    /// deepest any single shard has been).
    pub fn counters(&self) -> QueueCounters {
        self.snapshot().counters
    }

    /// Depth, summed counters, and the per-shard breakdown, reading each
    /// shard's lock exactly once.
    pub fn snapshot(&self) -> QueueSnapshot {
        let mut snap = QueueSnapshot::default();
        for (i, s) in self.shards.iter().enumerate() {
            let st = s.state.lock().expect("shard lock");
            let depth = st.buf.len() as u64;
            snap.depth += depth;
            snap.counters.submitted += st.counters.submitted;
            snap.counters.shed += st.counters.shed;
            snap.counters.max_depth = snap.counters.max_depth.max(st.counters.max_depth);
            snap.shards.push(ShardSample {
                shard: i as u64,
                depth,
                submitted: st.counters.submitted,
                shed: st.counters.shed,
                max_depth: st.counters.max_depth,
                stolen: st.stolen,
            });
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(id: u64) -> Transaction {
        Transaction {
            id,
            ops: Vec::new(),
        }
    }

    fn drain_ids(q: &ShardedTxQueue, worker: usize) -> Vec<u64> {
        let mut out = VecDeque::new();
        let mut ids = Vec::new();
        loop {
            match q.pop_batch(worker, &mut out) {
                Fill::Closed => break,
                Fill::Own(_) | Fill::Stolen(_) => {
                    ids.extend(out.drain(..).map(|q| q.tx.id));
                }
            }
        }
        ids
    }

    #[test]
    fn batched_drain_preserves_fifo_within_a_shard() {
        let q = ShardedTxQueue::new(1, 16, AdmissionPolicy::Reject, 4);
        for i in 0..10 {
            assert_eq!(q.submit(tx(i)), Admission::Accepted);
        }
        q.close();
        let mut out = VecDeque::new();
        assert_eq!(q.pop_batch(0, &mut out), Fill::Own(4));
        assert_eq!(q.pop_batch(0, &mut out), Fill::Own(4));
        assert_eq!(q.pop_batch(0, &mut out), Fill::Own(2));
        assert_eq!(q.pop_batch(0, &mut out), Fill::Closed);
        let ids: Vec<u64> = out.iter().map(|q| q.tx.id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn round_robin_spreads_over_shards() {
        let q = ShardedTxQueue::new(4, 16, AdmissionPolicy::Reject, 8);
        for i in 0..8 {
            q.submit(tx(i));
        }
        let snap = q.snapshot();
        for s in &snap.shards {
            assert_eq!(s.depth, 2, "shard {}", s.shard);
            assert_eq!(s.submitted, 2, "shard {}", s.shard);
        }
    }

    #[test]
    fn affinity_submission_pins_a_shard() {
        let q = ShardedTxQueue::new(4, 16, AdmissionPolicy::Reject, 8);
        for i in 0..3 {
            q.submit_affinity(2, tx(i));
        }
        let snap = q.snapshot();
        assert_eq!(snap.shards[2].depth, 3);
        assert_eq!(snap.depth, 3);
    }

    #[test]
    fn steal_takes_older_half_of_victim() {
        let q = ShardedTxQueue::new(2, 16, AdmissionPolicy::Reject, 8);
        for i in 0..6 {
            q.submit_affinity(0, tx(i));
        }
        // Worker 1's shard is empty: it must steal ceil(6/2) = 3, oldest
        // first.
        let mut out = VecDeque::new();
        assert_eq!(q.pop_batch(1, &mut out), Fill::Stolen(3));
        let ids: Vec<u64> = out.iter().map(|q| q.tx.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let snap = q.snapshot();
        assert_eq!(snap.shards[0].depth, 3, "victim keeps the fresher half");
        assert_eq!(snap.shards[0].stolen, 3);
    }

    #[test]
    fn steal_is_capped_at_the_batch_size() {
        let q = ShardedTxQueue::new(2, 32, AdmissionPolicy::Reject, 4);
        for i in 0..16 {
            q.submit_affinity(0, tx(i));
        }
        let mut out = VecDeque::new();
        assert_eq!(q.pop_batch(1, &mut out), Fill::Stolen(4));
        assert_eq!(q.snapshot().shards[0].depth, 12);
    }

    #[test]
    fn shed_oldest_applies_at_the_shard_level() {
        // Capacity 4 over 2 shards: each shard holds 2.
        let q = ShardedTxQueue::new(2, 4, AdmissionPolicy::ShedOldest, 8);
        q.submit_affinity(0, tx(0));
        q.submit_affinity(0, tx(1));
        q.submit_affinity(1, tx(10));
        assert_eq!(
            q.submit_affinity(0, tx(2)),
            Admission::AcceptedSheddingOldest
        );
        let snap = q.snapshot();
        assert_eq!(snap.shards[0].shed, 1, "shard 0 shed its own oldest");
        assert_eq!(snap.shards[1].shed, 0, "shard 1 untouched");
        q.close();
        let mut ids = drain_ids(&q, 0);
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 10], "tx 0 was the displaced victim");
    }

    #[test]
    fn reject_policy_bounces_at_a_full_shard_only() {
        let q = ShardedTxQueue::new(2, 2, AdmissionPolicy::Reject, 8);
        assert_eq!(q.submit_affinity(0, tx(0)), Admission::Accepted);
        assert_eq!(q.submit_affinity(0, tx(1)), Admission::Rejected);
        // The other shard still has room.
        assert_eq!(q.submit_affinity(1, tx(2)), Admission::Accepted);
        let c = q.counters();
        assert_eq!((c.submitted, c.shed), (3, 1));
    }

    #[test]
    fn close_rejects_submissions_but_drains_all_shards() {
        let q = ShardedTxQueue::new(3, 16, AdmissionPolicy::Block, 4);
        for i in 0..7 {
            q.submit(tx(i));
        }
        q.close();
        assert_eq!(q.submit(tx(99)), Admission::Rejected);
        let mut ids = drain_ids(&q, 1);
        ids.sort_unstable();
        assert_eq!(ids, (0..7).collect::<Vec<_>>());
        let c = q.counters();
        assert_eq!(c.submitted, 8);
        assert_eq!(c.shed, 1);
    }

    #[test]
    fn block_policy_waits_for_shard_space_freed_by_steal() {
        let q = Arc::new(ShardedTxQueue::new(2, 2, AdmissionPolicy::Block, 8));
        q.submit_affinity(0, tx(0));
        let q2 = Arc::clone(&q);
        let submitter = std::thread::spawn(move || q2.submit_affinity(0, tx(1)));
        std::thread::sleep(Duration::from_millis(20));
        // Worker 1 stealing from shard 0 frees the slot the blocked
        // submitter is waiting for.
        let mut out = VecDeque::new();
        assert_eq!(q.pop_batch(1, &mut out), Fill::Stolen(1));
        assert_eq!(submitter.join().unwrap(), Admission::Accepted);
        assert_eq!(q.counters().shed, 0);
    }

    #[test]
    fn close_releases_blocked_submitters() {
        let q = Arc::new(ShardedTxQueue::new(1, 1, AdmissionPolicy::Block, 8));
        q.submit(tx(0));
        let q2 = Arc::clone(&q);
        let submitter = std::thread::spawn(move || q2.submit(tx(1)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(submitter.join().unwrap(), Admission::Rejected);
    }

    #[test]
    fn pop_batch_blocks_until_work_arrives() {
        let q = Arc::new(ShardedTxQueue::new(2, 8, AdmissionPolicy::Block, 4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || {
            let mut out = VecDeque::new();
            q2.pop_batch(0, &mut out);
            out.pop_front().map(|q| q.tx.id)
        });
        std::thread::sleep(Duration::from_millis(20));
        q.submit_affinity(0, tx(9));
        assert_eq!(popper.join().unwrap(), Some(9));
    }

    #[test]
    fn idle_worker_steals_work_submitted_to_other_shards() {
        // Nothing ever lands on worker 1's shard; it must still make
        // progress via the steal-retry timeout.
        let q = Arc::new(ShardedTxQueue::new(2, 8, AdmissionPolicy::Block, 4));
        let q2 = Arc::clone(&q);
        let thief = std::thread::spawn(move || {
            let mut out = VecDeque::new();
            matches!(q2.pop_batch(1, &mut out), Fill::Stolen(_))
        });
        std::thread::sleep(Duration::from_millis(5));
        q.submit_affinity(0, tx(1));
        assert!(thief.join().unwrap(), "idle worker stole from shard 0");
    }

    #[test]
    fn snapshot_counters_cover_all_shards_once() {
        let q = ShardedTxQueue::new(4, 8, AdmissionPolicy::Reject, 8);
        for i in 0..6 {
            q.submit(tx(i));
        }
        let snap = q.snapshot();
        assert_eq!(snap.counters.submitted, 6);
        assert_eq!(snap.depth, 6);
        assert_eq!(snap.shards.len(), 4);
        let by_shard: u64 = snap.shards.iter().map(|s| s.depth).sum();
        assert_eq!(by_shard, snap.depth);
    }
}
