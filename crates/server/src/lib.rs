//! # webmm-server: native multi-worker serving harness
//!
//! The simulator (`webmm-runtime`) reproduces the paper's measurements on
//! a modelled machine. This crate runs the same allocators on the *host*
//! machine: a pool of OS worker threads, each owning a private heap built
//! from an [`AllocatorKind`](webmm_alloc::AllocatorKind), serving whole
//! transactions pulled from a bounded ingress queue — the paper's
//! process-per-worker PHP serving model (§2.1), with the web tier's
//! admission control made explicit.
//!
//! The pieces:
//!
//! * [`TxQueue`] / [`AdmissionPolicy`] — bounded MPMC ingress with
//!   block / reject / shed-oldest backpressure, every outcome counted;
//! * [`ShardedTxQueue`] / [`QueueMode`] — the scalable ingress: one
//!   shard per worker, batched drain (up to `batch` transactions per
//!   lock acquisition), and steal-half work stealing when a worker's
//!   own shard runs dry; admission policies apply per shard, and the
//!   accounting identity holds across steals;
//! * worker threads — one [`PlainPort`](webmm_sim::PlainPort) address
//!   space and one heap each, replaying the workload's
//!   malloc/free/freeAll schedule; `freeAll` (or a survivor sweep for
//!   allocators without bulk free) empties the heap at every transaction
//!   boundary;
//! * [`TxFactory`] + [`drive_closed`] / [`drive_open`] — deterministic
//!   transaction production under closed- or open-loop arrival models;
//! * [`TxBufferPool`] — transaction op buffers recycled from completed
//!   (or shed) transactions back to the load generators, so the
//!   steady-state serving path performs no heap allocation per
//!   transaction (see [`TxExecutor`] for the hash-free object table and
//!   `tests/alloc_audit.rs` for the proof);
//! * [`LatencyHistogram`] — log2-bucketed admission-to-completion
//!   latencies with p50/p95/p99/p999 (shared with `webmm-obs`, which is
//!   also where the live sliding-window variant lives);
//! * [`ServerReport`] — JSON-serializable run outcome, carrying the
//!   checked accounting identity `submitted == completed + shed`;
//! * [`ObsConfig`] / [`ServerTelemetry`] / [`ObsSample`] — opt-in live
//!   telemetry: a sampler thread snapshots queue depth, per-worker heap
//!   occupancy and sliding-window latency quantiles at a configurable
//!   interval, streaming JSONL while the run is still serving.
//!
//! ## Example
//!
//! ```
//! use webmm_alloc::AllocatorKind;
//! use webmm_server::{drive_closed, Server, ServerConfig, TxFactory};
//!
//! let server = Server::start(ServerConfig {
//!     kind: AllocatorKind::DdMalloc,
//!     workers: 2,
//!     ..ServerConfig::default()
//! });
//! let factory = TxFactory::new(webmm_workload::phpbb(), 1024, 42);
//! drive_closed(&server, factory, 10, 2);
//! let report = server.finish();
//! assert_eq!(report.completed + report.shed, report.submitted);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod ingress;
mod loadgen;
mod pool;
mod queue;
mod server;
mod shard;
mod telemetry;
mod worker;

pub use loadgen::{drive_closed, drive_open, TxFactory};
pub use pool::{PoolStats, TxBufferPool};
pub use queue::{Admission, AdmissionPolicy, QueueCounters, QueueMode, QueueSnapshot, TxQueue};
pub use server::{Ingress, Server, ServerConfig, ServerReport};
pub use shard::ShardedTxQueue;
pub use telemetry::{render_dashboard, ObsConfig, ObsSample, ServerTelemetry, WorkerHeapSample};
// The histogram is defined in `webmm-obs` so live windows and final
// reports share one implementation; re-exported here for compatibility.
pub use webmm_obs::{LatencyHistogram, LatencySummary, ShardSample, TxSpan};
pub use worker::{TxExecutor, WorkerReport};

use webmm_workload::WorkOp;

/// One web transaction: an identity plus the allocator-visible operation
/// sequence a PHP worker would execute to serve it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    /// Submission-order identity, assigned by the load generator.
    pub id: u64,
    /// The operation schedule, normally ending with [`WorkOp::EndTx`].
    pub ops: Vec<WorkOp>,
}
