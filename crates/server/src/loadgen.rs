//! Load generation: turning workload streams into submitted transactions.
//!
//! [`TxFactory`] slices a deterministic [`TxStream`] into whole
//! transactions (everything up to and including `EndTx`). Two driver
//! shapes then push them at a server:
//!
//! * **closed loop** ([`drive_closed`]) — a fixed population of client
//!   threads, each submitting its next transaction only after the previous
//!   submission was admitted or refused. With the `Block` policy this is
//!   the classic closed system: offered load self-limits to capacity.
//! * **open loop** ([`drive_open`]) — arrivals on a fixed schedule
//!   regardless of completions, the web-facing arrival model. Pair with
//!   `Reject`/`ShedOldest` to study overload; with `Block` the schedule
//!   degrades into a closed loop whenever the queue fills.

use crate::pool::TxBufferPool;
use crate::server::{Ingress, Server};
use crate::Transaction;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use webmm_workload::trace::TraceReplay;
use webmm_workload::{TxStream, WorkOp, WorkloadSpec};

/// Where a [`TxFactory`] draws its operations from.
enum OpSource {
    /// A live deterministic generator (boxed: a `TxStream` carries its
    /// size-class tables inline and dwarfs the trace-replay variant).
    Stream(Box<TxStream>),
    /// A recorded trace (JSONL, see `webmm_workload::trace`) replayed
    /// verbatim — how a network run's op stream is re-driven through the
    /// in-process harness for apples-to-apples comparison.
    Trace(TraceReplay),
}

impl OpSource {
    fn next_op(&mut self) -> WorkOp {
        match self {
            OpSource::Stream(s) => s.next_op(),
            OpSource::Trace(t) => t.next_op(),
        }
    }
}

/// Produces self-contained transactions from a workload stream or a
/// recorded trace.
pub struct TxFactory {
    source: OpSource,
    next_id: u64,
    /// When attached, op buffers are drawn from the server's recycling
    /// pool instead of freshly allocated — completed transactions feed
    /// the generator and the steady state stops allocating.
    pool: Option<Arc<TxBufferPool>>,
}

impl TxFactory {
    /// Wraps a deterministic stream for `spec` at `scale`, seeded by
    /// `seed` (same semantics as [`TxStream::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero or leaves fewer than 16 mallocs per
    /// transaction.
    pub fn new(spec: WorkloadSpec, scale: u32, seed: u64) -> Self {
        TxFactory {
            source: OpSource::Stream(Box::new(TxStream::new(spec, scale, seed))),
            next_id: 0,
            pool: None,
        }
    }

    /// Replays a recorded op sequence (e.g. one read back with
    /// `webmm_workload::trace::read_trace`) instead of generating ops.
    /// Once the recorded ops are exhausted, every further transaction is
    /// a bare `EndTx` — drive exactly as many transactions as the trace
    /// holds ([`webmm_workload::trace::count_transactions`]).
    pub fn from_trace(ops: Vec<WorkOp>) -> Self {
        TxFactory {
            source: OpSource::Trace(TraceReplay::new(ops)),
            next_id: 0,
            pool: None,
        }
    }

    /// Draws future op buffers from `pool`. The drivers ([`drive_closed`],
    /// [`drive_open`]) attach the server's pool automatically; call this
    /// directly only when submitting by hand.
    pub fn attach_pool(&mut self, pool: Arc<TxBufferPool>) {
        self.pool = Some(pool);
    }

    /// The next whole transaction: ops up to and including `EndTx`, in a
    /// recycled buffer when a pool is attached and has one.
    pub fn next_tx(&mut self) -> Transaction {
        let mut ops = match &self.pool {
            Some(pool) => pool.get(),
            None => Vec::new(),
        };
        loop {
            let op = self.source.next_op();
            ops.push(op);
            if op == WorkOp::EndTx {
                break;
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        Transaction { id, ops }
    }
}

/// Drives `total_tx` transactions at `server` from a closed population of
/// `clients` submitter threads sharing `factory`. Returns when every
/// submission has been admitted or refused (completions are the server's
/// business; call [`Server::finish`] for the report).
///
/// # Panics
///
/// Panics if `clients` is zero.
pub fn drive_closed(server: &Server, mut factory: TxFactory, total_tx: u64, clients: usize) {
    assert!(clients > 0, "closed loop needs at least one client");
    factory.attach_pool(server.buffer_pool());
    let factory = Mutex::new(factory);
    let remaining = AtomicU64::new(total_tx);
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let ingress = server.ingress();
            let factory = &factory;
            let remaining = &remaining;
            scope.spawn(move || loop {
                // Claim a slot first so exactly total_tx are generated.
                if claim(remaining).is_none() {
                    return;
                }
                let tx = factory.lock().expect("factory lock").next_tx();
                ingress.submit(tx);
            });
        }
    });
}

/// Drives `total_tx` transactions at `ingress` on a fixed arrival
/// schedule of `rate_tx_per_sec`, independent of completions. Falls
/// behind only if transaction *generation* outpaces the schedule.
///
/// # Panics
///
/// Panics if `rate_tx_per_sec` is not positive.
pub fn drive_open(ingress: &Ingress, mut factory: TxFactory, total_tx: u64, rate_tx_per_sec: f64) {
    assert!(rate_tx_per_sec > 0.0, "open loop needs a positive rate");
    factory.attach_pool(ingress.pool());
    let interval = Duration::from_secs_f64(1.0 / rate_tx_per_sec);
    let start = Instant::now();
    for i in 0..total_tx {
        let due = start + interval.mul_f64(i as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        ingress.submit(factory.next_tx());
    }
}

/// Atomically claims one unit from `remaining`; `None` when exhausted.
fn claim(remaining: &AtomicU64) -> Option<u64> {
    let mut cur = remaining.load(Ordering::Relaxed);
    loop {
        if cur == 0 {
            return None;
        }
        match remaining.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return Some(cur - 1),
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::AdmissionPolicy;
    use crate::server::ServerConfig;
    use webmm_alloc::AllocatorKind;
    use webmm_workload::phpbb;

    #[test]
    fn factory_produces_whole_transactions() {
        let mut f = TxFactory::new(phpbb(), 1024, 11);
        for expect_id in 0..3 {
            let tx = f.next_tx();
            assert_eq!(tx.id, expect_id);
            assert_eq!(*tx.ops.last().unwrap(), WorkOp::EndTx);
            let inner_ends = tx.ops.iter().filter(|o| **o == WorkOp::EndTx).count();
            assert_eq!(inner_ends, 1, "exactly one EndTx per transaction");
            assert!(tx.ops.iter().any(|o| matches!(o, WorkOp::Malloc { .. })));
        }
    }

    #[test]
    fn factory_is_deterministic() {
        let mut a = TxFactory::new(phpbb(), 1024, 42);
        let mut b = TxFactory::new(phpbb(), 1024, 42);
        for _ in 0..3 {
            assert_eq!(a.next_tx().ops, b.next_tx().ops);
        }
    }

    #[test]
    fn closed_loop_submits_exactly_total() {
        let server = Server::start(ServerConfig {
            kind: AllocatorKind::Region,
            workers: 2,
            queue_capacity: 8,
            policy: AdmissionPolicy::Block,
            static_bytes: 1 << 16,
            ..ServerConfig::default()
        });
        drive_closed(&server, TxFactory::new(phpbb(), 1024, 3), 20, 3);
        let report = server.finish();
        assert_eq!(report.submitted, 20);
        assert_eq!(report.completed, 20);
    }

    #[test]
    fn open_loop_sheds_under_overload() {
        // One worker, tiny queue, arrivals far faster than service.
        let server = Server::start(ServerConfig {
            kind: AllocatorKind::PhpDefault,
            workers: 1,
            queue_capacity: 2,
            policy: AdmissionPolicy::ShedOldest,
            static_bytes: 1 << 16,
            ..ServerConfig::default()
        });
        drive_open(&server.ingress(), TxFactory::new(phpbb(), 64, 5), 40, 1e6);
        let report = server.finish();
        assert_eq!(report.submitted, 40);
        assert_eq!(report.completed + report.shed, 40);
        assert!(report.shed > 0, "overload must shed with a 2-deep queue");
    }
}
