//! Worker threads: one OS thread, one heap, one address space.
//!
//! Each worker mirrors a PHP worker process from the paper's serving model
//! (§2.1): it owns a private [`PlainPort`] address space and a private
//! allocator built in-place from the `Copy + Send` [`AllocatorKind`] tag,
//! and replays whole transactions against them. At every transaction
//! boundary the heap is returned to empty — by `freeAll` where the
//! allocator supports bulk free (the paper's porting recipe), by
//! per-object frees of the survivors otherwise — so transactions never
//! leak state into each other and a worker can serve forever.
//!
//! The steady-state serving loop is **allocation-free and hash-free**
//! (proven by `tests/alloc_audit.rs`): the live-object map is a dense
//! generation-stamped [`ObjectTable`] (ids index a ring directly, `EndTx`
//! cleanup is a generation bump), finished op buffers return to the
//! [`TxBufferPool`] instead of being dropped, and timing/telemetry is
//! amortized — one timestamp per drained batch on the dequeue side, one
//! per transaction at completion, and metric flushes once per batch.

use crate::ingress::IngressQueue;
use crate::pool::TxBufferPool;
use crate::shard::Fill;
use crate::telemetry::{ServerTelemetry, WorkerMetrics};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;
use webmm_alloc::{Allocator, AllocatorKind};
use webmm_obs::{LatencyHistogram, TxSpan};
use webmm_sim::{Addr, MemoryPort, PageSize, PlainPort};
use webmm_workload::{ObjectTable, WorkOp};

/// Per-worker outcome counters, serialized into the server report.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WorkerReport {
    /// Worker index (0-based).
    pub worker: u64,
    /// Transactions this worker completed.
    pub completed: u64,
    /// Payload bytes touched: malloc'd, realloc'd, re-read and static.
    pub bytes_touched: u64,
    /// Ops referencing objects this worker never allocated (cross-worker
    /// lifetimes in open-lifetime workloads); skipped, not served.
    pub orphan_ops: u64,
    /// Largest number of objects still live *after* end-of-transaction
    /// cleanup — 0 proves `freeAll` (or survivor sweep) emptied the heap
    /// between every pair of transactions.
    pub max_live_after_tx: u64,
    /// Simulated instructions retired by this worker's port (allocator
    /// metadata work plus application compute).
    pub sim_instructions: u64,
    /// Transactions this worker obtained by stealing from other workers'
    /// shards (always 0 with the global queue; counted on the thief).
    pub steals: u64,
}

/// The transaction execution engine a worker thread owns: one private
/// heap, one address space, and the dense live-object table mapping
/// workload ids to heap addresses.
///
/// Public so benches (`hotpath_bench`) and audits (`alloc_audit`) can
/// drive the exact hot loop a worker runs, without threads or queues
/// around it. Constructing it *inside* the spawned worker thread is
/// deliberate: only the `Copy + Send` kind tag crosses the spawn
/// boundary, the heap itself is born on the thread that will use it.
pub struct TxExecutor {
    heap: Box<dyn Allocator + Send>,
    port: PlainPort,
    /// Live objects: workload id → (address, current size). Ids are
    /// handed out by the load generator's monotonic counter, so the
    /// dense generation-stamped table replaces the original `HashMap`:
    /// no hashing per op, and `EndTx` cleanup is a generation bump
    /// instead of a bucket walk. Ids the table never admitted (or that
    /// expired at a transaction boundary) miss exactly where the map
    /// would, keeping orphan detection exact.
    objects: ObjectTable<(Addr, u64)>,
    static_base: Addr,
    report: WorkerReport,
}

impl TxExecutor {
    /// Builds the executor for worker `worker`: a private heap of kind
    /// `kind` and a `static_bytes` static data area.
    pub fn new(worker: u64, kind: AllocatorKind, static_bytes: u64) -> Self {
        let mut port = PlainPort::new();
        let static_base = port.os_alloc(static_bytes.max(4096), 4096, PageSize::Base);
        TxExecutor {
            heap: kind.build_send(worker as u32),
            port,
            objects: ObjectTable::with_capacity(1024),
            static_base,
            report: WorkerReport {
                worker,
                ..WorkerReport::default()
            },
        }
    }

    /// The counters accumulated so far (completion counts are maintained
    /// by the serving loop, not here).
    pub fn report(&self) -> &WorkerReport {
        &self.report
    }

    /// Objects currently live in the table (0 between transactions).
    pub fn live_objects(&self) -> u64 {
        self.objects.len() as u64
    }

    /// Total simulated instructions retired by this executor's port.
    pub fn sim_instructions(&self) -> u64 {
        self.port.instructions()
    }

    /// Cumulative bytes requested from the heap.
    pub fn bytes_requested(&self) -> u64 {
        self.heap.stats().bytes_requested
    }

    /// Replays one transaction's operations against this worker's heap.
    ///
    /// # Panics
    ///
    /// Panics on allocator out-of-memory: heaps are sized so OOM means a
    /// misconfiguration, and degrading silently would skew the histograms.
    pub fn execute(&mut self, ops: &[WorkOp]) {
        for op in ops {
            match *op {
                WorkOp::Malloc { id, size } => {
                    let addr = self
                        .heap
                        .malloc(&mut self.port, size)
                        .unwrap_or_else(|e| panic!("worker {}: {e}", self.report.worker));
                    self.port.touch(addr, size, true); // initializing write
                    self.objects.insert(id, (addr, size));
                    self.report.bytes_touched += size;
                }
                WorkOp::Free { id } => match self.objects.remove(id) {
                    Some((addr, _)) => {
                        if self.heap.alloc_traits().per_object_free {
                            self.heap.free(&mut self.port, addr);
                        }
                        // Without per-object free (region/obstack) the
                        // call is elided, per the paper's porting recipe.
                    }
                    None => self.report.orphan_ops += 1,
                },
                WorkOp::Realloc { id, new_size } => match self.objects.get(id) {
                    Some((addr, old)) => {
                        let new_addr = self
                            .heap
                            .realloc(&mut self.port, addr, old, new_size)
                            .unwrap_or_else(|e| panic!("worker {}: {e}", self.report.worker));
                        self.objects.insert(id, (new_addr, new_size));
                        self.report.bytes_touched += new_size.saturating_sub(old);
                    }
                    None => self.report.orphan_ops += 1,
                },
                WorkOp::Touch { id, write } => match self.objects.get(id) {
                    Some((addr, size)) => {
                        self.port.touch(addr, size, write);
                        self.report.bytes_touched += size;
                    }
                    None => self.report.orphan_ops += 1,
                },
                WorkOp::Compute { instr } => self.port.exec(instr),
                WorkOp::StaticTouch { offset, len } => {
                    self.port.touch(self.static_base + offset, len, false);
                    self.report.bytes_touched += len;
                }
                WorkOp::EndTx => self.end_tx(),
            }
        }
        // Transactions produced by the load generator end with EndTx; be
        // robust to hand-built ones that do not.
        if !ops.ends_with(&[WorkOp::EndTx]) {
            self.end_tx();
        }
    }

    /// End-of-transaction cleanup: the PHP runtime's `freeAll` hook where
    /// the allocator has one, a survivor sweep where it does not. Either
    /// way the object table empties in O(1) of hashing: a generation bump
    /// for bulk free, a ring sweep (no rehash, no dealloc) otherwise.
    fn end_tx(&mut self) {
        let traits = self.heap.alloc_traits();
        if traits.bulk_free {
            self.heap.free_all(&mut self.port);
            self.objects.clear();
        } else {
            let heap = &mut self.heap;
            let port = &mut self.port;
            self.objects.drain(|_, (addr, _)| {
                if traits.per_object_free {
                    heap.free(port, addr);
                }
            });
        }
        let live = self.objects.len() as u64;
        self.report.max_live_after_tx = self.report.max_live_after_tx.max(live);
    }
}

/// The worker thread body: pull transaction batches until the queue
/// closes and drains, then hand back the report and the local latency
/// histogram.
///
/// Intake is batched: the worker refills a private `pending` buffer from
/// its ingress (its own shard in one lock acquisition, or a steal from a
/// victim shard when dry — one transaction per call with the global
/// queue) and then serves the whole batch without touching any shared
/// lock. Steals are counted on the thief's report.
///
/// Timing is amortized over the batch: queue-wait is measured against a
/// single per-batch timestamp taken right after the refill, and each
/// completion takes exactly one further timestamp (instead of the two
/// per transaction the unbatched loop paid). Finished op buffers return
/// to the buffer pool for the load generators to reuse.
///
/// With telemetry attached, every completion also lands in the sliding
/// latency window (relaxed atomics) and the worker's span ring (reusing
/// the completion timestamp); counter flushes into the sharded metric
/// registry happen once per batch, and the heap snapshot slot is
/// refreshed at batch boundaries, throttled to
/// [`ServerTelemetry::publish_every`] so observation cost stays off the
/// per-transaction path.
pub(crate) fn run(
    worker: u64,
    kind: AllocatorKind,
    static_bytes: u64,
    queue: Arc<IngressQueue>,
    pool: Arc<TxBufferPool>,
    telemetry: Option<Arc<ServerTelemetry>>,
) -> (WorkerReport, LatencyHistogram) {
    let mut state = TxExecutor::new(worker, kind, static_bytes);
    let mut latencies = LatencyHistogram::new();
    let metrics = telemetry
        .as_deref()
        .map(|t| WorkerMetrics::new(t, worker as usize));
    let mut last_publish: Option<Instant> = None;
    let mut pending: VecDeque<crate::queue::QueuedTx> = VecDeque::new();
    'serve: loop {
        while pending.is_empty() {
            match queue.fill(worker as usize, &mut pending) {
                Fill::Closed => break 'serve,
                Fill::Own(_) => {}
                Fill::Stolen(n) => {
                    state.report.steals += n as u64;
                    if let Some(m) = metrics.as_ref() {
                        m.stolen.add(n as u64);
                    }
                }
            }
        }
        // One timestamp for the whole drained batch: every transaction in
        // it was enqueued before this instant, so per-tx queue wait is
        // derived by subtraction instead of a second clock read each.
        let batch_start = Instant::now();
        let mut batch_completed = 0u64;
        let mut batch_bytes = 0u64;
        while let Some(queued) = pending.pop_front() {
            let queue_wait = batch_start
                .saturating_duration_since(queued.enqueued)
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64;
            let bytes_before = state.heap.stats().bytes_requested;
            state.execute(&queued.tx.ops);
            state.report.completed += 1;
            batch_completed += 1;
            // The only per-transaction clock read: completion time, from
            // which total latency and the span timestamps all derive.
            let done = Instant::now();
            let ns = done
                .saturating_duration_since(queued.enqueued)
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64;
            latencies.record(ns);
            let tx_bytes = state
                .heap
                .stats()
                .bytes_requested
                .saturating_sub(bytes_before);
            batch_bytes += tx_bytes;
            if let Some(t) = telemetry.as_deref() {
                t.window.record(ns);
                let complete_ns = t.tracer.ns_of(done);
                let dequeue_ns = complete_ns.saturating_sub(ns.saturating_sub(queue_wait));
                t.tracer.record(
                    worker as usize,
                    TxSpan {
                        tx_id: queued.tx.id,
                        worker,
                        enqueue_ns: complete_ns.saturating_sub(ns),
                        dequeue_ns,
                        complete_ns,
                        bytes_allocated: tx_bytes,
                        shed: false,
                    },
                );
            }
            // Hand the finished op buffer back for the generators to
            // refill — the transaction's only heap allocation, recycled.
            pool.put(queued.tx.ops);
        }
        // Counter flushes and heap publication amortize over the batch.
        if let (Some(t), Some(m)) = (telemetry.as_deref(), metrics.as_ref()) {
            m.completed.add(batch_completed);
            m.bytes_requested.add(batch_bytes);
            if last_publish.is_none_or(|at| batch_start.duration_since(at) >= t.publish_every()) {
                let snap = state.heap.heap_snapshot();
                m.heap_bytes.set(snap.heap_bytes);
                m.orphan_ops.set(state.report.orphan_ops);
                t.publish_heap(worker as usize, snap);
                last_publish = Some(batch_start);
            }
        }
    }
    // Final publication so post-drain samples see the settled heap.
    if let (Some(t), Some(m)) = (telemetry.as_deref(), metrics.as_ref()) {
        let snap = state.heap.heap_snapshot();
        m.heap_bytes.set(snap.heap_bytes);
        m.orphan_ops.set(state.report.orphan_ops);
        t.publish_heap(worker as usize, snap);
    }
    state.report.sim_instructions = state.port.instructions();
    (state.report, latencies)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(kind: AllocatorKind) -> TxExecutor {
        TxExecutor::new(0, kind, 1 << 20)
    }

    #[test]
    fn malloc_free_endtx_leaves_heap_empty() {
        for kind in AllocatorKind::PHP_STUDY {
            let mut s = state(kind);
            s.execute(&[
                WorkOp::Malloc { id: 1, size: 64 },
                WorkOp::Malloc { id: 2, size: 200 },
                WorkOp::Touch {
                    id: 1,
                    write: false,
                },
                WorkOp::Free { id: 1 },
                WorkOp::EndTx,
            ]);
            assert!(s.objects.is_empty(), "{kind}");
            assert_eq!(s.report.max_live_after_tx, 0, "{kind}");
        }
    }

    #[test]
    fn survivor_sweep_covers_non_bulk_allocators() {
        // glibc-style: no freeAll — survivors must still be returned.
        let mut s = state(AllocatorKind::Dl);
        s.execute(&[WorkOp::Malloc { id: 1, size: 128 }, WorkOp::EndTx]);
        assert!(s.objects.is_empty());
        assert_eq!(s.heap.stats().frees, 1);
    }

    #[test]
    fn orphan_ops_are_counted_not_served() {
        let mut s = state(AllocatorKind::DdMalloc);
        s.execute(&[
            WorkOp::Free { id: 99 },
            WorkOp::Touch {
                id: 98,
                write: true,
            },
            WorkOp::Realloc {
                id: 97,
                new_size: 32,
            },
            WorkOp::EndTx,
        ]);
        assert_eq!(s.report.orphan_ops, 3);
        assert_eq!(s.heap.stats().frees, 0);
    }

    #[test]
    fn ids_from_previous_transactions_are_orphans() {
        // The generation bump at EndTx must expire every id exactly as
        // the map clear did: a later free of the same id is an orphan,
        // not a stale hit.
        let mut s = state(AllocatorKind::DdMalloc);
        s.execute(&[WorkOp::Malloc { id: 7, size: 64 }, WorkOp::EndTx]);
        s.execute(&[
            WorkOp::Free { id: 7 },
            WorkOp::Touch {
                id: 7,
                write: false,
            },
            WorkOp::EndTx,
        ]);
        assert_eq!(s.report.orphan_ops, 2);
    }

    #[test]
    fn missing_trailing_endtx_still_cleans_up() {
        let mut s = state(AllocatorKind::Region);
        s.execute(&[WorkOp::Malloc { id: 5, size: 400 }]);
        assert!(s.objects.is_empty());
        assert_eq!(s.heap.stats().free_alls, 1);
    }

    #[test]
    fn bytes_touched_accumulates_all_payload_traffic() {
        let mut s = state(AllocatorKind::PhpDefault);
        s.execute(&[
            WorkOp::Malloc { id: 1, size: 100 },
            WorkOp::Touch {
                id: 1,
                write: false,
            },
            WorkOp::StaticTouch { offset: 0, len: 50 },
            WorkOp::EndTx,
        ]);
        assert_eq!(s.report.bytes_touched, 250);
    }
}
