//! Live telemetry for a serving run: sampler, JSONL exporter, dashboard.
//!
//! When a [`ServerConfig`](crate::ServerConfig) carries an [`ObsConfig`],
//! the server threads a shared [`ServerTelemetry`] through the queue and
//! every worker, and a sampler thread wakes at the configured interval to
//! assemble an [`ObsSample`]: queue depth, admission counters, the
//! sliding-window latency quantiles, the sharded metric registry, and the
//! most recent heap snapshot each worker published. Samples stream to a
//! JSONL file (one JSON object per line, `serde`-compatible with the
//! `ServerReport` types), so a run can be watched — or post-processed —
//! while it is still serving.
//!
//! The instrumentation mirrors the discipline of the allocators it
//! observes: workers touch only per-worker atomic shards and their own
//! mutex-free state on the hot path, and snapshotting is done entirely by
//! the reader. See DESIGN.md ("Observability") for why this is the
//! telemetry analogue of DDmalloc's no-per-object-header rule.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use webmm_obs::{
    HeapSnapshot, LatencySummary, MetricKind, MetricSample, MetricsRegistry, ShardSample,
    SlidingWindow, TxSpan, TxTracer,
};

use crate::ingress::IngressQueue;

/// Configuration of the live-telemetry subsystem.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Sampling interval; the sliding latency window covers
    /// `window_slots × interval`.
    pub interval: Duration,
    /// JSONL time-series destination (`None`: sample in memory only).
    pub out: Option<PathBuf>,
    /// Run label stamped into every sample (e.g. `ddmalloc-w8`).
    pub run: String,
    /// Sliding-window slot count (minimum 2).
    pub window_slots: usize,
    /// Per-worker transaction-span ring capacity.
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            interval: Duration::from_millis(10),
            out: None,
            run: String::new(),
            window_slots: 8,
            trace_capacity: 256,
        }
    }
}

/// Shared telemetry state for one serving run.
pub struct ServerTelemetry {
    /// Sharded counter/gauge registry (one shard per worker).
    pub registry: MetricsRegistry,
    /// Sliding-window latency view; the sampler rotates it every interval.
    pub window: SlidingWindow,
    /// Per-worker transaction span rings plus the shed lane.
    pub tracer: TxTracer,
    /// Latest heap snapshot each worker published (snapshot-on-read: the
    /// worker overwrites its slot at transaction boundaries, the sampler
    /// clones it out; the mutex is uncontended worker-private state).
    heap_slots: Vec<Mutex<HeapSnapshot>>,
    /// Minimum wall time between two heap publications from one worker.
    publish_every: Duration,
    run: String,
}

impl ServerTelemetry {
    /// Builds the telemetry plane for `workers` worker threads.
    pub fn new(config: &ObsConfig, workers: usize) -> Self {
        ServerTelemetry {
            registry: MetricsRegistry::new(workers),
            window: SlidingWindow::new(config.window_slots),
            tracer: TxTracer::new(workers, config.trace_capacity),
            heap_slots: (0..workers)
                .map(|_| Mutex::new(HeapSnapshot::default()))
                .collect(),
            // Publishing at a quarter of the sampling interval keeps every
            // sample fresh without snapshotting on every transaction.
            publish_every: config.interval / 4,
            run: config.run.clone(),
        }
    }

    /// How often a worker should refresh its heap slot.
    pub fn publish_every(&self) -> Duration {
        self.publish_every
    }

    /// Stores `snap` as worker `worker`'s current heap state.
    pub fn publish_heap(&self, worker: usize, snap: HeapSnapshot) {
        if let Some(slot) = self.heap_slots.get(worker) {
            *slot.lock().expect("heap slot lock") = snap;
        }
    }

    /// All spans currently retained, oldest first per ring, merged and
    /// sorted by completion time.
    pub fn dump_spans(&self) -> Vec<TxSpan> {
        self.tracer.dump()
    }

    /// Assembles one time-series sample from the current state. The
    /// queue's depth, counters, and per-shard breakdown come from one
    /// coherent [`snapshot`](crate::TxQueue::snapshot) — a single lock
    /// acquisition per shard, not separate `depth()`/`counters()` locks.
    pub(crate) fn sample(&self, queue: &IngressQueue) -> ObsSample {
        let snap = queue.snapshot();
        ObsSample {
            run: self.run.clone(),
            t_ns: self.tracer.now_ns(),
            queue_depth: snap.depth,
            submitted: snap.counters.submitted,
            shed: snap.counters.shed,
            shards: snap.shards,
            completed: self.registry.value("tx_completed").unwrap_or(0),
            window: self.window.summary(),
            counters: self.registry.snapshot().samples,
            workers: self
                .heap_slots
                .iter()
                .enumerate()
                .map(|(w, slot)| WorkerHeapSample {
                    worker: w as u64,
                    heap: slot.lock().expect("heap slot lock").clone(),
                })
                .collect(),
        }
    }
}

/// Metric names the workers publish through the registry. Centralized so
/// the sampler, dashboard and tests agree on spelling.
pub(crate) mod metric {
    /// Transactions fully executed (counter, per-worker shard).
    pub const TX_COMPLETED: &str = "tx_completed";
    /// Bytes requested from the allocator (counter).
    pub const BYTES_REQUESTED: &str = "bytes_requested";
    /// Ops referencing objects the worker never allocated (gauge: each
    /// worker `set`s its cumulative count, shards sum on read).
    pub const ORPHAN_OPS: &str = "orphan_ops";
    /// Live heap bytes at the last published snapshot (gauge).
    pub const HEAP_BYTES: &str = "heap_bytes";
    /// Transactions obtained by stealing from another worker's shard
    /// (counter, charged to the thief's shard).
    pub const TX_STOLEN: &str = "tx_stolen";
}

/// One row of the exported time series.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ObsSample {
    /// Run label from [`ObsConfig::run`].
    pub run: String,
    /// Nanoseconds since the telemetry plane came up.
    pub t_ns: u64,
    /// Transactions queued at sampling time.
    pub queue_depth: u64,
    /// Cumulative submissions at sampling time.
    pub submitted: u64,
    /// Cumulative sheds at sampling time.
    pub shed: u64,
    /// Per-shard depth, admission, and steal counters (empty with the
    /// global queue).
    pub shards: Vec<ShardSample>,
    /// Cumulative completions at sampling time.
    pub completed: u64,
    /// Latency quantiles over the sliding window (not since start).
    pub window: LatencySummary,
    /// Every registered metric, summed across shards.
    pub counters: Vec<MetricSample>,
    /// Latest per-worker heap snapshots.
    pub workers: Vec<WorkerHeapSample>,
}

/// A worker's heap state within an [`ObsSample`].
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct WorkerHeapSample {
    /// Worker index.
    pub worker: u64,
    /// The snapshot the worker last published.
    pub heap: HeapSnapshot,
}

/// Plain-text dashboard rendering of one sample, built from the
/// `webmm-profiler` report primitives.
pub fn render_dashboard(sample: &ObsSample) -> String {
    use webmm_profiler::report::{bar, bytes, heading, table};
    let mut out = String::new();
    let label = if sample.run.is_empty() {
        "live telemetry"
    } else {
        &sample.run
    };
    out.push_str(&heading(&format!(
        "{label} @ {:.2}s",
        sample.t_ns as f64 / 1e9
    )));
    out.push_str(&format!(
        "queue {:>4}  submitted {:>8}  completed {:>8}  shed {:>6}\n",
        sample.queue_depth, sample.submitted, sample.completed, sample.shed
    ));
    let w = &sample.window;
    out.push_str(&format!(
        "window: {} tx  p50 {:.1}us  p95 {:.1}us  p99 {:.1}us  max {:.1}us\n",
        w.count,
        w.p50_ns as f64 / 1e3,
        w.p95_ns as f64 / 1e3,
        w.p99_ns as f64 / 1e3,
        w.max_ns as f64 / 1e3,
    ));
    let max_heap = sample
        .workers
        .iter()
        .map(|s| s.heap.heap_bytes)
        .max()
        .unwrap_or(0);
    let mut rows = vec![vec![
        "worker".to_string(),
        "allocator".to_string(),
        "heap".to_string(),
        "touched".to_string(),
        "live".to_string(),
        "free-lists".to_string(),
        "freeAlls".to_string(),
        "".to_string(),
    ]];
    for ws in &sample.workers {
        let h = &ws.heap;
        rows.push(vec![
            ws.worker.to_string(),
            h.allocator.clone(),
            bytes(h.heap_bytes),
            bytes(h.touched_bytes),
            h.live_objects().to_string(),
            h.free_list_len.to_string(),
            h.free_all_count.to_string(),
            bar(h.heap_bytes as f64, max_heap as f64, 16),
        ]);
    }
    out.push_str(&table(&rows));
    out
}

/// Handle to the sampler thread; dropped into the [`Server`](crate::Server)
/// and stopped at drain time.
pub(crate) struct Sampler {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<Vec<ObsSample>>,
}

impl Sampler {
    /// Spawns the sampler thread: every `interval` it rotates the latency
    /// window, assembles a sample, and appends it as one JSON line to the
    /// configured output. Returns the collected samples at stop.
    pub(crate) fn spawn(
        telemetry: Arc<ServerTelemetry>,
        queue: Arc<IngressQueue>,
        config: &ObsConfig,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let interval = config.interval;
        let out_path = config.out.clone();
        let handle = std::thread::Builder::new()
            .name("webmm-obs-sampler".into())
            .spawn(move || {
                let mut out = out_path.map(|p| {
                    std::io::BufWriter::new(
                        std::fs::File::create(&p)
                            .unwrap_or_else(|e| panic!("obs out {}: {e}", p.display())),
                    )
                });
                let mut samples = Vec::new();
                loop {
                    let stopping = stop2.load(Ordering::Acquire);
                    if !stopping {
                        std::thread::sleep(interval);
                    }
                    telemetry.window.advance();
                    let sample = telemetry.sample(&queue);
                    if let Some(w) = out.as_mut() {
                        let line = serde_json::to_string(&sample).expect("serialize obs sample");
                        w.write_all(line.as_bytes()).expect("write obs sample");
                        w.write_all(b"\n").expect("write obs sample");
                    }
                    samples.push(sample);
                    if stopping {
                        break;
                    }
                }
                if let Some(mut w) = out {
                    w.flush().expect("flush obs samples");
                }
                samples
            })
            .expect("spawn obs sampler");
        Sampler { stop, handle }
    }

    /// Stops the sampler after one final sample and returns the series.
    pub(crate) fn stop(self) -> Vec<ObsSample> {
        self.stop.store(true, Ordering::Release);
        self.handle.join().expect("obs sampler panicked")
    }
}

/// Pre-resolved metric handles for one worker's hot path.
pub(crate) struct WorkerMetrics {
    pub completed: webmm_obs::MetricHandle,
    pub bytes_requested: webmm_obs::MetricHandle,
    pub orphan_ops: webmm_obs::MetricHandle,
    pub heap_bytes: webmm_obs::MetricHandle,
    pub stolen: webmm_obs::MetricHandle,
}

impl WorkerMetrics {
    pub(crate) fn new(telemetry: &ServerTelemetry, worker: usize) -> Self {
        let reg = &telemetry.registry;
        WorkerMetrics {
            completed: reg.handle(metric::TX_COMPLETED, MetricKind::Counter, worker),
            bytes_requested: reg.handle(metric::BYTES_REQUESTED, MetricKind::Counter, worker),
            orphan_ops: reg.handle(metric::ORPHAN_OPS, MetricKind::Gauge, worker),
            heap_bytes: reg.handle(metric::HEAP_BYTES, MetricKind::Gauge, worker),
            stolen: reg.handle(metric::TX_STOLEN, MetricKind::Counter, worker),
        }
    }
}
