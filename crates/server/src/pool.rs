//! Transaction op-buffer recycling: completed workers feed the load
//! generators.
//!
//! Every transaction used to cost one fresh `Vec<WorkOp>` heap
//! allocation at the generator and one deallocation wherever the
//! transaction died (worker completion, shed, rejection) — malloc/free
//! traffic *around* the allocator under test, exactly the per-transaction
//! bookkeeping tax the paper says dominates short web transactions.
//! [`TxBufferPool`] closes the loop: finished op buffers return, cleared,
//! to a sharded free stack, and [`TxFactory`](crate::TxFactory) refills
//! recycled buffers instead of allocating.
//!
//! Design points:
//!
//! * **Sharded return channel.** One `Mutex<Vec<_>>` stack per worker
//!   shard; workers return to their own shard, generators pop round-robin
//!   — the same contention cure as the sharded ingress queue, and the
//!   locks are held for a push/pop only.
//! * **Ownership hand-off, no aliasing.** A buffer is always *moved*:
//!   generator → queue → worker → pool → generator. Rust's move semantics
//!   make aliasing a recycled buffer with a live transaction impossible;
//!   the pool additionally clears every buffer on return so a recycled
//!   buffer can never leak a previous transaction's ops.
//! * **Bounded retention.** A shard past its cap drops the buffer instead
//!   of stacking it, so a burst cannot pin memory forever. Every
//!   get/return outcome is counted ([`PoolStats`]), which is how tests
//!   prove recycling actually happens and accounting stays exact.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use webmm_workload::WorkOp;

/// Monotonic counters describing pool traffic, serialized into the
/// [`ServerReport`](crate::ServerReport).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PoolStats {
    /// `get` calls satisfied by a recycled buffer.
    pub recycled: u64,
    /// `get` calls that had to allocate a fresh buffer (empty pool).
    pub fresh: u64,
    /// Buffers returned to the pool (completed, shed, or rejected
    /// transactions).
    pub returned: u64,
    /// Returned buffers dropped because their shard was at capacity.
    pub dropped: u64,
}

/// Sharded free stack of cleared `Vec<WorkOp>` op buffers.
pub struct TxBufferPool {
    shards: Vec<Mutex<Vec<Vec<WorkOp>>>>,
    max_per_shard: usize,
    /// Round-robin cursors so generators and workers spread over shards.
    get_cursor: AtomicUsize,
    put_cursor: AtomicUsize,
    recycled: AtomicU64,
    fresh: AtomicU64,
    returned: AtomicU64,
    dropped: AtomicU64,
}

impl TxBufferPool {
    /// Creates a pool of `shards` stacks retaining at most
    /// `max_per_shard` buffers each.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, max_per_shard: usize) -> Self {
        assert!(shards > 0, "buffer pool needs at least one shard");
        TxBufferPool {
            shards: (0..shards)
                .map(|_| Mutex::new(Vec::with_capacity(max_per_shard.min(64))))
                .collect(),
            max_per_shard: max_per_shard.max(1),
            get_cursor: AtomicUsize::new(0),
            put_cursor: AtomicUsize::new(0),
            recycled: AtomicU64::new(0),
            fresh: AtomicU64::new(0),
            returned: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Takes a cleared op buffer: a recycled one if any shard has one,
    /// a fresh empty `Vec` otherwise.
    pub fn get(&self) -> Vec<WorkOp> {
        let n = self.shards.len();
        // With one shard the cursor is pointless; skip the atomic.
        let start = if n == 1 {
            0
        } else {
            self.get_cursor.fetch_add(1, Ordering::Relaxed)
        };
        for off in 0..n {
            let shard = &self.shards[(start + off) % n];
            if let Some(buf) = shard.lock().expect("pool shard lock").pop() {
                debug_assert!(buf.is_empty(), "pooled buffers are stored cleared");
                self.recycled.fetch_add(1, Ordering::Relaxed);
                return buf;
            }
        }
        self.fresh.fetch_add(1, Ordering::Relaxed);
        Vec::new()
    }

    /// Returns a finished buffer: clears it and stacks it on the next
    /// shard in round-robin order, dropping it if that shard is at
    /// capacity.
    pub fn put(&self, mut buf: Vec<WorkOp>) {
        if buf.capacity() == 0 {
            // Nothing worth recycling (e.g. a hand-built empty tx).
            return;
        }
        buf.clear();
        let n = self.shards.len();
        let at = if n == 1 {
            0
        } else {
            self.put_cursor.fetch_add(1, Ordering::Relaxed) % n
        };
        let shard = &self.shards[at];
        let mut stack = shard.lock().expect("pool shard lock");
        if stack.len() < self.max_per_shard {
            stack.push(buf);
            drop(stack);
            self.returned.fetch_add(1, Ordering::Relaxed);
        } else {
            drop(stack);
            self.returned.fetch_add(1, Ordering::Relaxed);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Buffers currently stacked across all shards.
    pub fn available(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("pool shard lock").len())
            .sum()
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            recycled: self.recycled.load(Ordering::Relaxed),
            fresh: self.fresh.load(Ordering::Relaxed),
            returned: self.returned.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_from_empty_pool_is_fresh() {
        let pool = TxBufferPool::new(2, 4);
        let buf = pool.get();
        assert!(buf.is_empty());
        let s = pool.stats();
        assert_eq!((s.fresh, s.recycled), (1, 0));
    }

    #[test]
    fn returned_buffers_come_back_cleared_with_capacity() {
        let pool = TxBufferPool::new(1, 4);
        let mut buf = Vec::with_capacity(32);
        buf.push(WorkOp::EndTx);
        pool.put(buf);
        let back = pool.get();
        assert!(back.is_empty(), "recycled buffer must arrive cleared");
        assert!(back.capacity() >= 32, "capacity is what recycling saves");
        let s = pool.stats();
        assert_eq!((s.recycled, s.fresh, s.returned), (1, 0, 1));
    }

    #[test]
    fn capacity_zero_buffers_are_not_pooled() {
        let pool = TxBufferPool::new(1, 4);
        pool.put(Vec::new());
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.stats().returned, 0);
    }

    #[test]
    fn shard_cap_drops_excess() {
        let pool = TxBufferPool::new(1, 2);
        for _ in 0..5 {
            pool.put(Vec::with_capacity(8));
        }
        assert_eq!(pool.available(), 2);
        let s = pool.stats();
        assert_eq!(s.returned, 5);
        assert_eq!(s.dropped, 3);
    }

    #[test]
    fn round_robin_spreads_and_finds_buffers_on_any_shard() {
        let pool = TxBufferPool::new(4, 8);
        for _ in 0..4 {
            pool.put(Vec::with_capacity(8));
        }
        // Every get must find one of them regardless of cursor position.
        for _ in 0..4 {
            assert!(pool.get().capacity() >= 8);
        }
        assert_eq!(pool.stats().recycled, 4);
        assert_eq!(pool.available(), 0);
    }
}
