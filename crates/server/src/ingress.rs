//! Ingress dispatch: one server-facing surface over both queue modes.
//!
//! The server, the workers, and the telemetry sampler all talk to an
//! [`IngressQueue`], which is either the single global [`TxQueue`]
//! (baseline: one lock everyone contends on) or the per-worker
//! [`ShardedTxQueue`] with batched drain and work stealing. Keeping both
//! behind one enum — rather than replacing the global queue outright —
//! is what lets `native_shootout --queue=global|sharded` measure the
//! sharding win on identical workloads.

use crate::queue::{Admission, AdmissionPolicy, QueueMode, QueueSnapshot, QueuedTx, TxQueue};
use crate::shard::{Fill, ShardedTxQueue};
use crate::telemetry::ServerTelemetry;
use crate::Transaction;
use std::collections::VecDeque;
use std::sync::Arc;

/// Either ingress implementation, dispatched by [`QueueMode`].
pub(crate) enum IngressQueue {
    /// The single shared queue.
    Global(TxQueue),
    /// Per-worker shards with stealing.
    Sharded(ShardedTxQueue),
}

impl IngressQueue {
    /// Builds the queue `mode` asks for: `workers` shards (sharded mode)
    /// or one shared buffer (global mode), `capacity` transactions in
    /// total either way.
    pub(crate) fn new(
        mode: QueueMode,
        workers: usize,
        capacity: usize,
        policy: AdmissionPolicy,
        batch: usize,
    ) -> Self {
        match mode {
            QueueMode::Global => IngressQueue::Global(TxQueue::new(capacity, policy)),
            QueueMode::Sharded => {
                IngressQueue::Sharded(ShardedTxQueue::new(workers, capacity, policy, batch))
            }
        }
    }

    /// Which mode this queue implements.
    pub(crate) fn mode(&self) -> QueueMode {
        match self {
            IngressQueue::Global(_) => QueueMode::Global,
            IngressQueue::Sharded(_) => QueueMode::Sharded,
        }
    }

    pub(crate) fn install_telemetry(&mut self, telemetry: Arc<ServerTelemetry>) {
        match self {
            IngressQueue::Global(q) => q.install_telemetry(telemetry),
            IngressQueue::Sharded(q) => q.install_telemetry(telemetry),
        }
    }

    pub(crate) fn install_pool(&mut self, pool: Arc<crate::pool::TxBufferPool>) {
        match self {
            IngressQueue::Global(q) => q.install_pool(pool),
            IngressQueue::Sharded(q) => q.install_pool(pool),
        }
    }

    pub(crate) fn submit(&self, tx: Transaction) -> Admission {
        match self {
            IngressQueue::Global(q) => q.submit(tx),
            IngressQueue::Sharded(q) => q.submit(tx),
        }
    }

    /// Affinity-keyed submission: pins the transaction to the shard
    /// `key` hashes to. The global queue has no shards, so the key is
    /// accepted and ignored.
    pub(crate) fn submit_affinity(&self, key: u64, tx: Transaction) -> Admission {
        match self {
            IngressQueue::Global(q) => q.submit(tx),
            IngressQueue::Sharded(q) => q.submit_affinity(key, tx),
        }
    }

    /// Worker-side intake: refills `out` with the next batch of work.
    /// The global queue hands over one transaction per call (the
    /// baseline's per-transaction lock cost is the thing being measured);
    /// the sharded queue drains or steals whole batches.
    pub(crate) fn fill(&self, worker: usize, out: &mut VecDeque<QueuedTx>) -> Fill {
        match self {
            IngressQueue::Global(q) => match q.pop() {
                Some(queued) => {
                    out.push_back(queued);
                    Fill::Own(1)
                }
                None => Fill::Closed,
            },
            IngressQueue::Sharded(q) => q.pop_batch(worker, out),
        }
    }

    pub(crate) fn close(&self) {
        match self {
            IngressQueue::Global(q) => q.close(),
            IngressQueue::Sharded(q) => q.close(),
        }
    }

    pub(crate) fn depth(&self) -> usize {
        match self {
            IngressQueue::Global(q) => q.depth(),
            IngressQueue::Sharded(q) => q.depth(),
        }
    }

    /// Whether the queue has been closed for draining.
    pub(crate) fn is_closed(&self) -> bool {
        match self {
            IngressQueue::Global(q) => q.is_closed(),
            IngressQueue::Sharded(q) => q.is_closed(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        match self {
            IngressQueue::Global(q) => q.capacity(),
            IngressQueue::Sharded(q) => q.capacity(),
        }
    }

    pub(crate) fn counters(&self) -> crate::queue::QueueCounters {
        match self {
            IngressQueue::Global(q) => q.counters(),
            IngressQueue::Sharded(q) => q.counters(),
        }
    }

    pub(crate) fn policy(&self) -> AdmissionPolicy {
        match self {
            IngressQueue::Global(q) => q.policy(),
            IngressQueue::Sharded(q) => q.policy(),
        }
    }

    /// Depth, counters, and (sharded mode) the per-shard breakdown, each
    /// shard's lock taken exactly once.
    pub(crate) fn snapshot(&self) -> QueueSnapshot {
        match self {
            IngressQueue::Global(q) => q.snapshot(),
            IngressQueue::Sharded(q) => q.snapshot(),
        }
    }
}
