//! # webmm-profiler: the paper's measurement lenses
//!
//! Turns [`RunResult`]s from [`webmm_runtime`] into the quantities the
//! paper reports:
//!
//! * CPU-time-per-transaction breakdowns into *memory management* and
//!   *others* (Figures 1, 6 and 11) — [`breakdown`];
//! * percentage changes in hardware events versus the default allocator
//!   (Figure 8) — [`event_deltas`];
//! * memory consumption under the paper's per-allocator definitions
//!   (Figure 9) — [`memory_consumption`];
//! * plain-text table and bar-chart renderers for the harness binaries —
//!   [`report`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod report;

use serde::Serialize;
use webmm_runtime::RunResult;

/// CPU cycles per transaction split the way Figures 1, 6 and 11 split
/// them: time inside `malloc`/`free`/`realloc`/`freeAll` versus everything
/// else.
#[derive(Clone, Debug, Serialize)]
pub struct Breakdown {
    /// Allocator display name.
    pub allocator: String,
    /// Cycles per transaction in memory management.
    pub mm_cycles: f64,
    /// Cycles per transaction in the rest of the program.
    pub other_cycles: f64,
}

impl Breakdown {
    /// Total cycles per transaction.
    pub fn total(&self) -> f64 {
        self.mm_cycles + self.other_cycles
    }

    /// Memory management share of CPU time (0..1).
    pub fn mm_share(&self) -> f64 {
        self.mm_cycles / self.total()
    }
}

/// Extracts the Figure 6-style breakdown from a run.
pub fn breakdown(result: &RunResult) -> Breakdown {
    Breakdown {
        allocator: result.allocator.clone(),
        mm_cycles: result.throughput.mm_cycles_per_tx,
        other_cycles: result.throughput.app_cycles_per_tx,
    }
}

/// Percentage change of each Figure 8 event, relative to a baseline run
/// (the default allocator of the PHP runtime in the paper).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct EventDeltas {
    /// Total instructions (%).
    pub instructions: f64,
    /// L1 instruction-cache misses (%).
    pub l1i_misses: f64,
    /// L1 data-cache misses (%).
    pub l1d_misses: f64,
    /// D-TLB misses (%).
    pub dtlb_misses: f64,
    /// L2 cache misses (%).
    pub l2_misses: f64,
    /// Bus transactions (%).
    pub bus_txns: f64,
}

impl EventDeltas {
    /// The Figure 8 display order: `(label, value)` pairs.
    pub fn series(&self) -> [(&'static str, f64); 6] {
        [
            ("total instructions", self.instructions),
            ("L1I cache miss", self.l1i_misses),
            ("L1D cache miss", self.l1d_misses),
            ("D-TLB miss", self.dtlb_misses),
            ("L2 cache miss", self.l2_misses),
            ("bus transaction", self.bus_txns),
        ]
    }
}

fn pct_change(ours: f64, base: f64) -> f64 {
    if base == 0.0 {
        return 0.0;
    }
    (ours / base - 1.0) * 100.0
}

/// Computes Figure 8's per-transaction event changes of `result` against
/// `baseline` (same workload, same machine, same core count).
///
/// # Panics
///
/// Panics if the two runs used different workloads or machines.
pub fn event_deltas(result: &RunResult, baseline: &RunResult) -> EventDeltas {
    assert_eq!(
        result.workload, baseline.workload,
        "delta across different workloads"
    );
    assert_eq!(
        result.machine, baseline.machine,
        "delta across different machines"
    );
    let per_tx = |r: &RunResult, f: &dyn Fn(&webmm_sim::EventCounts) -> u64| {
        let t = r.total_events().total();
        f(&t) as f64 / (r.measured_tx as f64 * r.events.len() as f64)
    };
    EventDeltas {
        instructions: pct_change(
            per_tx(result, &|e| e.instructions),
            per_tx(baseline, &|e| e.instructions),
        ),
        l1i_misses: pct_change(
            per_tx(result, &|e| e.l1i_misses),
            per_tx(baseline, &|e| e.l1i_misses),
        ),
        l1d_misses: pct_change(
            per_tx(result, &|e| e.l1d_misses),
            per_tx(baseline, &|e| e.l1d_misses),
        ),
        dtlb_misses: pct_change(
            per_tx(result, &|e| e.dtlb_misses),
            per_tx(baseline, &|e| e.dtlb_misses),
        ),
        l2_misses: pct_change(
            per_tx(result, &|e| e.l2_misses),
            per_tx(baseline, &|e| e.l2_misses),
        ),
        bus_txns: pct_change(
            per_tx(result, &|e| e.bus_txns),
            per_tx(baseline, &|e| e.bus_txns),
        ),
    }
}

/// Memory consumption under the paper's Figure 9 definitions:
///
/// * default allocator — "the amount of memory allocated from the
///   underlying memory allocator" (heap bytes from the OS);
/// * DDmalloc — "the total amount of memory used for allocated segments
///   and the metadata";
/// * region-based — "the total amount of memory allocated during a
///   transaction" (the 256 MB reservations are *not* consumption);
/// * other allocators — heap bytes from the OS, like the default.
pub fn memory_consumption(result: &RunResult) -> u64 {
    match result.allocator_id.as_str() {
        "ddmalloc" => result.footprint.heap_bytes + result.footprint.metadata_bytes,
        "region" | "obstack" => result.footprint.peak_tx_alloc_bytes,
        _ => result.footprint.heap_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webmm_alloc::AllocatorKind;
    use webmm_runtime::{run, RunConfig};
    use webmm_sim::MachineConfig;
    use webmm_workload::phpbb;

    fn quick(kind: AllocatorKind) -> RunResult {
        let machine = MachineConfig::xeon_clovertown();
        run(
            &machine,
            &RunConfig::new(kind, phpbb())
                .scale(64)
                .cores(1)
                .window(1, 2),
        )
    }

    #[test]
    fn breakdown_shares_are_sane() {
        let b = breakdown(&quick(AllocatorKind::PhpDefault));
        assert!(b.total() > 0.0);
        assert!(
            b.mm_share() > 0.02 && b.mm_share() < 0.6,
            "mm share {}",
            b.mm_share()
        );
    }

    #[test]
    fn region_reduces_mm_time_most() {
        // Figure 6: region cuts mm time ~85%, DDmalloc ~56-65%.
        let base = breakdown(&quick(AllocatorKind::PhpDefault));
        let reg = breakdown(&quick(AllocatorKind::Region));
        let dd = breakdown(&quick(AllocatorKind::DdMalloc));
        let reg_cut = 1.0 - reg.mm_cycles / base.mm_cycles;
        let dd_cut = 1.0 - dd.mm_cycles / base.mm_cycles;
        assert!(
            reg_cut > dd_cut,
            "region must cut more ({reg_cut} vs {dd_cut})"
        );
        assert!(reg_cut > 0.7, "region mm cut {reg_cut}");
        assert!((0.3..0.9).contains(&dd_cut), "dd mm cut {dd_cut}");
    }

    #[test]
    fn deltas_of_self_are_zero() {
        let r = quick(AllocatorKind::PhpDefault);
        let d = event_deltas(&r, &r);
        for (label, v) in d.series() {
            assert!(v.abs() < 1e-9, "{label} = {v}");
        }
    }

    #[test]
    fn region_moves_fewer_instructions() {
        let base = quick(AllocatorKind::PhpDefault);
        let reg = quick(AllocatorKind::Region);
        let d = event_deltas(&reg, &base);
        assert!(d.instructions < -5.0, "instructions {}", d.instructions);
    }

    #[test]
    fn memory_consumption_definitions() {
        let base = memory_consumption(&quick(AllocatorKind::PhpDefault));
        let dd = memory_consumption(&quick(AllocatorKind::DdMalloc));
        let reg = quick(AllocatorKind::Region);
        let reg_mem = memory_consumption(&reg);
        assert!(base > 0 && dd > 0 && reg_mem > 0);
        // Region's metric must be per-transaction allocation, not the
        // 256 MB chunk reservation.
        assert!(reg_mem < 256 * 1024 * 1024);
        assert_eq!(reg_mem, reg.footprint.peak_tx_alloc_bytes);
    }

    #[test]
    #[should_panic(expected = "different workloads")]
    fn deltas_reject_mismatched_workloads() {
        let machine = MachineConfig::xeon_clovertown();
        let a = run(
            &machine,
            &RunConfig::new(AllocatorKind::PhpDefault, phpbb())
                .scale(64)
                .cores(1)
                .window(0, 1),
        );
        let b = run(
            &machine,
            &RunConfig::new(AllocatorKind::PhpDefault, webmm_workload::specweb())
                .scale(64)
                .cores(1)
                .window(0, 1),
        );
        event_deltas(&a, &b);
    }
}
