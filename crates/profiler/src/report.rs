//! Plain-text renderers for the experiment harnesses.
//!
//! The paper's figures become aligned text tables and ASCII bar charts on
//! stdout — deterministic, diffable, and easy to eyeball against the
//! published numbers (recorded side by side in `EXPERIMENTS.md`).

/// Renders an aligned text table. The first row is treated as the header
/// and underlined.
///
/// # Examples
///
/// ```
/// use webmm_profiler::report::table;
/// let out = table(&[
///     vec!["workload".into(), "tx/s".into()],
///     vec!["phpBB".into(), "402.4".into()],
/// ]);
/// assert!(out.contains("phpBB"));
/// assert!(out.lines().count() >= 3);
/// ```
pub fn table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let render = |row: &[String]| -> String {
        row.iter()
            .enumerate()
            .map(|(i, cell)| format!("{:w$}", cell, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let mut out = String::new();
    out.push_str(&render(&rows[0]));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in &rows[1..] {
        out.push_str(&render(row));
        out.push('\n');
    }
    out
}

/// Renders one horizontal bar scaled so that `max_value` fills `width`
/// characters. Negative values render to the left of the axis.
///
/// # Examples
///
/// ```
/// use webmm_profiler::report::bar;
/// assert_eq!(bar(50.0, 100.0, 10), "|#####     ");
/// assert_eq!(bar(-30.0, 100.0, 10).trim(), "###|");
/// ```
pub fn bar(value: f64, max_value: f64, width: usize) -> String {
    let max_value = max_value.abs().max(f64::EPSILON);
    let filled = ((value.abs() / max_value) * width as f64).round() as usize;
    let filled = filled.min(width);
    if value >= 0.0 {
        format!("|{}{}", "#".repeat(filled), " ".repeat(width - filled))
    } else {
        format!(
            "{}{}|{}",
            " ".repeat(width - filled),
            "#".repeat(filled),
            " ".repeat(width)
        )
    }
}

/// Formats bytes using binary units.
///
/// # Examples
///
/// ```
/// use webmm_profiler::report::bytes;
/// assert_eq!(bytes(1536), "1.5 KB");
/// assert_eq!(bytes(3 * 1024 * 1024), "3.0 MB");
/// ```
pub fn bytes(n: u64) -> String {
    let n = n as f64;
    if n >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} GB", n / (1024.0 * 1024.0 * 1024.0))
    } else if n >= 1024.0 * 1024.0 {
        format!("{:.1} MB", n / (1024.0 * 1024.0))
    } else if n >= 1024.0 {
        format!("{:.1} KB", n / 1024.0)
    } else {
        format!("{n:.0} B")
    }
}

/// Formats a relative change as the paper prints it: `(+4.0%)`.
///
/// # Examples
///
/// ```
/// use webmm_profiler::report::rel;
/// assert_eq!(rel(1.04, 1.0), "(+4.0%)");
/// assert_eq!(rel(0.93, 1.0), "(-7.0%)");
/// ```
pub fn rel(value: f64, base: f64) -> String {
    format!("({:+.1}%)", (value / base - 1.0) * 100.0)
}

/// A section heading for harness output.
pub fn heading(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(&[
            vec!["a".into(), "bbbb".into()],
            vec!["cccc".into(), "d".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("---"));
        // Second column starts at the same offset in all rows.
        let off0 = lines[0].find("bbbb").unwrap();
        let off2 = lines[2].find('d').unwrap();
        assert_eq!(off0, off2);
    }

    #[test]
    fn empty_table_is_empty() {
        assert_eq!(table(&[]), "");
    }

    #[test]
    fn bars_clamp() {
        assert_eq!(bar(200.0, 100.0, 4), "|####");
        assert_eq!(bar(0.0, 100.0, 4), "|    ");
    }

    #[test]
    fn bytes_rounding() {
        assert_eq!(bytes(999), "999 B");
        assert_eq!(bytes(2 * 1024 * 1024 * 1024), "2.0 GB");
    }
}
