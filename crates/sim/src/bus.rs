//! Shared memory-bus bandwidth and queueing model.
//!
//! The paper's central multicore observation is that "the system memory
//! bandwidth tends to become a bottleneck in systems with multicore
//! processors": per-core demand that is harmless at one core saturates the
//! shared front-side bus at eight, inflating memory latency and erasing the
//! region allocator's malloc/free savings.
//!
//! We model the bus as an open queueing station. Given the offered traffic
//! (bytes per CPU cycle, aggregated over all contexts) and the bus capacity,
//! utilization is `rho = offered / capacity` and the effective memory
//! latency is
//!
//! ```text
//! L(rho) = L0 * (1 + alpha * rho / (1 - rho))      (capped at max_factor)
//! ```
//!
//! an M/D/1-flavoured delay curve: negligible below ~50% utilization,
//! steep past ~80%. The runtime's fixed-point solver (in `webmm-runtime`)
//! iterates offered traffic vs. latency until they agree.

use serde::Serialize;

/// Bus capacity and latency-curve parameters.
#[derive(Copy, Clone, Debug, PartialEq, Serialize)]
pub struct BusConfig {
    /// Sustainable bus bandwidth in bytes per CPU cycle (aggregated across
    /// all cores that share the bus).
    pub bytes_per_cycle: f64,
    /// Uncontended memory access latency in cycles.
    pub base_latency: f64,
    /// Queueing-delay weight (`alpha` above).
    pub queue_alpha: f64,
    /// Upper bound on the latency multiplier, so the fixed point always
    /// exists even past nominal saturation.
    pub max_factor: f64,
}

impl BusConfig {
    /// Latency multiplier for a given utilization `rho >= 0`.
    ///
    /// Values of `rho >= 1` (offered load beyond capacity) saturate at
    /// `max_factor`.
    pub fn latency_factor(&self, rho: f64) -> f64 {
        debug_assert!(rho >= 0.0, "utilization must be non-negative");
        if rho >= 1.0 {
            return self.max_factor;
        }
        let f = 1.0 + self.queue_alpha * rho / (1.0 - rho);
        f.min(self.max_factor)
    }

    /// Effective memory latency in cycles at utilization `rho`.
    pub fn latency(&self, rho: f64) -> f64 {
        self.base_latency * self.latency_factor(rho)
    }

    /// Utilization given offered traffic in bytes/cycle.
    pub fn utilization(&self, offered_bytes_per_cycle: f64) -> f64 {
        (offered_bytes_per_cycle / self.bytes_per_cycle).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> BusConfig {
        BusConfig {
            bytes_per_cycle: 4.0,
            base_latency: 200.0,
            queue_alpha: 0.7,
            max_factor: 8.0,
        }
    }

    #[test]
    fn idle_bus_has_base_latency() {
        let b = bus();
        assert!((b.latency(0.0) - 200.0).abs() < 1e-9);
        assert!((b.latency_factor(0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_is_monotone_in_utilization() {
        let b = bus();
        let mut prev = 0.0;
        for i in 0..100 {
            let rho = i as f64 / 100.0;
            let l = b.latency(rho);
            assert!(l >= prev, "latency must not decrease with utilization");
            prev = l;
        }
    }

    #[test]
    fn saturation_caps_at_max_factor() {
        let b = bus();
        assert!((b.latency_factor(1.0) - 8.0).abs() < 1e-9);
        assert!((b.latency_factor(5.0) - 8.0).abs() < 1e-9);
        // Very close to 1.0 also caps.
        assert!((b.latency_factor(0.9999) - 8.0).abs() < 1e-6);
    }

    #[test]
    fn moderate_load_is_cheap() {
        let b = bus();
        // At 50% utilization the factor is 1 + 0.7 = 1.7.
        assert!((b.latency_factor(0.5) - 1.7).abs() < 1e-9);
        // At 25% it's mild.
        assert!(b.latency_factor(0.25) < 1.25);
    }

    #[test]
    fn utilization_scales_with_offered_traffic() {
        let b = bus();
        assert!((b.utilization(2.0) - 0.5).abs() < 1e-9);
        assert!((b.utilization(8.0) - 2.0).abs() < 1e-9);
    }
}
