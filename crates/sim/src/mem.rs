//! Sparse simulated memory with real backing bytes.
//!
//! Allocators in this repository keep their metadata (free-list links,
//! boundary tags, size-class tables) *inside* the simulated address space,
//! so that every metadata operation produces the same memory traffic it
//! would on real hardware. [`SimMemory`] provides the backing store: a
//! sparse map of 4 KB frames materialized on first touch, plus a tiny
//! mmap-like reservation interface ([`SimMemory::os_alloc`]) standing in
//! for the operating system.

use crate::addr::Addr;
use std::collections::HashMap;

/// Backing frame granularity.
const FRAME: u64 = 4096;

/// A sparse byte-addressable memory image for one process.
///
/// Reads of never-written locations return zero, like freshly-mapped
/// anonymous pages. The image also tracks how many bytes the "OS" has
/// handed out, which the allocators' footprint accounting builds on.
///
/// # Examples
///
/// ```
/// use webmm_sim::SimMemory;
/// let mut m = SimMemory::new(0x10_0000_0000);
/// let heap = m.os_alloc(1 << 20, 4096);
/// m.write_u64(heap, 0xdead_beef);
/// assert_eq!(m.read_u64(heap), 0xdead_beef);
/// assert_eq!(m.read_u64(heap + 8), 0); // untouched → zero
/// ```
#[derive(Debug, Default)]
pub struct SimMemory {
    frames: HashMap<u64, Box<[u8; FRAME as usize]>>,
    /// Next address handed out by `os_alloc`.
    brk: u64,
    /// First address of this process's reservation window.
    base: u64,
    /// Total bytes reserved via `os_alloc`.
    reserved: u64,
}

impl SimMemory {
    /// Creates an empty memory image whose OS allocations start at `base`.
    ///
    /// Distinct processes should use distinct, widely-spaced bases so their
    /// addresses never collide in shared caches (the simulator treats the
    /// simulated address as physical).
    pub fn new(base: u64) -> Self {
        SimMemory {
            frames: HashMap::new(),
            brk: base.max(FRAME),
            base: base.max(FRAME),
            reserved: 0,
        }
    }

    /// Reserves `len` bytes aligned to `align` (power of two), like an
    /// anonymous `mmap`. Never fails: the address space is 64-bit.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or `len` is zero.
    pub fn os_alloc(&mut self, len: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(len > 0, "cannot reserve zero bytes");
        let start = Addr::new(self.brk).align_up(align);
        self.brk = start.raw() + len;
        self.reserved += len;
        start
    }

    /// Total bytes reserved through [`SimMemory::os_alloc`].
    pub fn reserved_bytes(&self) -> u64 {
        self.reserved
    }

    /// Bytes of backing frames actually materialized (touched).
    pub fn resident_bytes(&self) -> u64 {
        self.frames.len() as u64 * FRAME
    }

    /// The base of this process's reservation window.
    pub fn base(&self) -> Addr {
        Addr::new(self.base)
    }

    #[inline]
    fn frame_mut(&mut self, addr: Addr) -> (&mut [u8; FRAME as usize], usize) {
        let frame_no = addr.raw() / FRAME;
        let off = (addr.raw() % FRAME) as usize;
        let frame = self
            .frames
            .entry(frame_no)
            .or_insert_with(|| Box::new([0u8; FRAME as usize]));
        (frame, off)
    }

    /// Reads a little-endian `u64`. The access must not cross a frame
    /// boundary (allocator metadata is always 8-byte aligned).
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a 4 KB frame boundary.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        assert!(
            addr.raw() % FRAME <= FRAME - 8,
            "u64 read crosses frame boundary"
        );
        let frame_no = addr.raw() / FRAME;
        let off = (addr.raw() % FRAME) as usize;
        match self.frames.get(&frame_no) {
            Some(f) => u64::from_le_bytes(f[off..off + 8].try_into().expect("8 bytes")),
            None => 0,
        }
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a 4 KB frame boundary.
    pub fn write_u64(&mut self, addr: Addr, val: u64) {
        assert!(
            addr.raw() % FRAME <= FRAME - 8,
            "u64 write crosses frame boundary"
        );
        let (frame, off) = self.frame_mut(addr);
        frame[off..off + 8].copy_from_slice(&val.to_le_bytes());
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        let frame_no = addr.raw() / FRAME;
        let off = (addr.raw() % FRAME) as usize;
        self.frames.get(&frame_no).map_or(0, |f| f[off])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: Addr, val: u8) {
        let (frame, off) = self.frame_mut(addr);
        frame[off] = val;
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a 4 KB frame boundary.
    pub fn read_u32(&self, addr: Addr) -> u32 {
        assert!(
            addr.raw() % FRAME <= FRAME - 4,
            "u32 read crosses frame boundary"
        );
        let frame_no = addr.raw() / FRAME;
        let off = (addr.raw() % FRAME) as usize;
        match self.frames.get(&frame_no) {
            Some(f) => u32::from_le_bytes(f[off..off + 4].try_into().expect("4 bytes")),
            None => 0,
        }
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a 4 KB frame boundary.
    pub fn write_u32(&mut self, addr: Addr, val: u32) {
        assert!(
            addr.raw() % FRAME <= FRAME - 4,
            "u32 write crosses frame boundary"
        );
        let (frame, off) = self.frame_mut(addr);
        frame[off..off + 4].copy_from_slice(&val.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = SimMemory::new(1 << 32);
        assert_eq!(m.read_u64(Addr::new(0x12345678)), 0);
        assert_eq!(m.read_u8(Addr::new(99)), 0);
    }

    #[test]
    fn read_back_written_values() {
        let mut m = SimMemory::new(1 << 32);
        let a = m.os_alloc(4096, 4096);
        m.write_u64(a, u64::MAX);
        m.write_u64(a + 8, 42);
        m.write_u8(a + 16, 7);
        m.write_u32(a + 20, 0xabcd);
        assert_eq!(m.read_u64(a), u64::MAX);
        assert_eq!(m.read_u64(a + 8), 42);
        assert_eq!(m.read_u8(a + 16), 7);
        assert_eq!(m.read_u32(a + 20), 0xabcd);
    }

    #[test]
    fn os_alloc_respects_alignment_and_no_overlap() {
        let mut m = SimMemory::new(1 << 32);
        let a = m.os_alloc(100, 8);
        let b = m.os_alloc(32 * 1024, 32 * 1024);
        let c = m.os_alloc(10, 8);
        assert!(b.is_aligned(32 * 1024));
        assert!(b.raw() >= a.raw() + 100);
        assert!(c.raw() >= b.raw() + 32 * 1024);
        assert_eq!(m.reserved_bytes(), 100 + 32 * 1024 + 10);
    }

    #[test]
    fn distinct_bases_do_not_collide() {
        let mut p0 = SimMemory::new(1 << 40);
        let mut p1 = SimMemory::new(2 << 40);
        let a0 = p0.os_alloc(4096, 4096);
        let a1 = p1.os_alloc(4096, 4096);
        assert!(a1.raw() - a0.raw() >= 1 << 40);
    }

    #[test]
    fn resident_tracks_touched_frames() {
        let mut m = SimMemory::new(1 << 32);
        let a = m.os_alloc(1 << 20, 4096);
        assert_eq!(m.resident_bytes(), 0); // reservation alone is not resident
        m.write_u8(a, 1);
        m.write_u8(a + 4096 * 3, 1);
        assert_eq!(m.resident_bytes(), 2 * 4096);
    }

    #[test]
    #[should_panic(expected = "crosses frame boundary")]
    fn straddling_u64_rejected() {
        let m = SimMemory::new(1 << 32);
        m.read_u64(Addr::new(4096 - 4));
    }

    #[test]
    fn base_floor_is_nonzero() {
        // A zero base would make Addr(0) (the free-list NULL) a valid
        // allocation target; SimMemory must prevent that.
        let mut m = SimMemory::new(0);
        let a = m.os_alloc(16, 8);
        assert!(!a.is_null());
    }
}
