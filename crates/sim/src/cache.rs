//! Set-associative cache model with true-LRU replacement.
//!
//! One [`Cache`] instance models a single cache array (an L1I, an L1D, or a
//! shared L2). The memory hierarchy composes instances and handles
//! write-allocate / write-back policy between levels; the cache itself only
//! answers "hit or miss, and what did filling this line evict".
//!
//! Shared L2s additionally support *index hashing* (folding upper address
//! bits into the set index), like the complex addressing of real last-level
//! caches. Without it, allocators that hand out strongly aligned blocks —
//! DDmalloc's segments are 32 KB-aligned by construction — would conflict
//! on a handful of sets, an artifact real hardware avoids.

use crate::addr::Addr;
use serde::Serialize;

/// Geometry of one cache array.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Fold upper address bits into the set index (last-level-cache
    /// complex addressing).
    pub hashed_index: bool,
}

impl CacheConfig {
    /// Creates a config with plain (modulo) set indexing.
    ///
    /// The total size need not be a power of two (the paper's Niagara L2 is
    /// 3 MB, 12-way), but the resulting *set count* must be, so addresses
    /// index sets with a mask.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two, if `assoc` is zero, or
    /// if `size_bytes / line_bytes / assoc` is not a power of two.
    pub fn new(size_bytes: u64, line_bytes: u64, assoc: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(assoc > 0, "associativity must be nonzero");
        let lines = size_bytes / line_bytes;
        assert!(
            lines.is_multiple_of(u64::from(assoc)) && size_bytes.is_multiple_of(line_bytes),
            "capacity must divide into whole sets"
        );
        let sets = lines / u64::from(assoc);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig {
            size_bytes,
            line_bytes,
            assoc,
            hashed_index: false,
        }
    }

    /// Creates a config with hashed set indexing (for shared L2s).
    pub fn new_hashed(size_bytes: u64, line_bytes: u64, assoc: u32) -> Self {
        let mut c = Self::new(size_bytes, line_bytes, assoc);
        c.hashed_index = true;
        c
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / self.line_bytes / u64::from(self.assoc)
    }
}

/// Result of a cache access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the access hit.
    pub hit: bool,
    /// If the access was a miss and filling the line evicted a dirty line,
    /// the base address of that victim line (for writeback accounting).
    pub evicted_dirty: Option<Addr>,
    /// Whether the hit line had been installed by a prefetch and this is the
    /// first demand touch of it.
    pub prefetch_covered: bool,
}

#[derive(Copy, Clone, Debug, Default)]
struct Line {
    /// Full line address (line-granular, i.e. byte address >> line bits).
    line_addr: u64,
    valid: bool,
    dirty: bool,
    /// Set by a prefetch fill, cleared on first demand hit.
    prefetched: bool,
    /// LRU timestamp; larger = more recently used.
    lru: u64,
}

/// A set-associative, write-back, true-LRU cache array.
///
/// # Examples
///
/// ```
/// use webmm_sim::{Addr, Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::new(4096, 64, 2));
/// assert!(!c.access(Addr::new(0), false).hit);   // cold miss
/// assert!(c.access(Addr::new(8), false).hit);    // same line
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    set_mask: u64,
    set_bits: u32,
    line_shift: u32,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            config,
            lines: vec![Line::default(); (sets * u64::from(config.assoc)) as usize],
            set_mask: sets - 1,
            set_bits: sets.trailing_zeros(),
            line_shift: config.line_bytes.trailing_zeros(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// (base way index of the set, line address) for a byte address.
    #[inline]
    fn locate(&self, addr: Addr) -> (usize, u64) {
        let line_addr = addr.raw() >> self.line_shift;
        let set = if self.config.hashed_index && self.set_bits > 0 {
            // Multiplicative (Fibonacci) hash of the full line address,
            // like LLC complex addressing: strongly aligned streams and
            // identically laid-out processes spread over all sets.
            (line_addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - self.set_bits)) & self.set_mask
        } else {
            line_addr & self.set_mask
        };
        ((set * u64::from(self.config.assoc)) as usize, line_addr)
    }

    /// Performs a demand access (load, store, or instruction fetch) to the
    /// line containing `addr`. On a miss the line is filled (write-allocate)
    /// and the LRU victim replaced.
    pub fn access(&mut self, addr: Addr, write: bool) -> AccessResult {
        self.clock += 1;
        let (base, line_addr) = self.locate(addr);
        let ways = self.config.assoc as usize;

        // Hit path.
        for way in base..base + ways {
            let line = &mut self.lines[way];
            if line.valid && line.line_addr == line_addr {
                line.lru = self.clock;
                line.dirty |= write;
                let covered = line.prefetched;
                line.prefetched = false;
                self.hits += 1;
                return AccessResult {
                    hit: true,
                    evicted_dirty: None,
                    prefetch_covered: covered,
                };
            }
        }

        // Miss: fill over the LRU victim.
        self.misses += 1;
        let victim = self.lru_victim(base, ways);
        let evicted_dirty = self.fill(victim, line_addr, write, false);
        AccessResult {
            hit: false,
            evicted_dirty,
            prefetch_covered: false,
        }
    }

    /// Installs the line containing `addr` as a *prefetch* fill.
    ///
    /// Returns the dirty victim line if one was evicted, and `true` if the
    /// line was newly installed (i.e. it was not already present).
    pub fn prefetch_fill(&mut self, addr: Addr) -> (Option<Addr>, bool) {
        self.clock += 1;
        let (base, line_addr) = self.locate(addr);
        let ways = self.config.assoc as usize;
        for way in base..base + ways {
            let line = &self.lines[way];
            if line.valid && line.line_addr == line_addr {
                return (None, false); // already resident; nothing to do
            }
        }
        let victim = self.lru_victim(base, ways);
        let evicted = self.fill(victim, line_addr, false, true);
        (evicted, true)
    }

    /// Returns `true` if the line containing `addr` is resident.
    pub fn contains(&self, addr: Addr) -> bool {
        let (base, line_addr) = self.locate(addr);
        let ways = self.config.assoc as usize;
        self.lines[base..base + ways]
            .iter()
            .any(|l| l.valid && l.line_addr == line_addr)
    }

    /// Marks the line containing `addr` dirty if resident (used when a lower
    /// level writes back into this cache). Returns whether it was resident.
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        let (base, line_addr) = self.locate(addr);
        let ways = self.config.assoc as usize;
        for way in base..base + ways {
            let line = &mut self.lines[way];
            if line.valid && line.line_addr == line_addr {
                line.dirty = true;
                return true;
            }
        }
        false
    }

    /// Invalidates all lines (e.g. on process restart).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            *line = Line::default();
        }
    }

    fn lru_victim(&self, base: usize, ways: usize) -> usize {
        // Prefer an invalid way; otherwise the smallest LRU stamp.
        let mut victim = base;
        let mut best = u64::MAX;
        for way in base..base + ways {
            let line = &self.lines[way];
            if !line.valid {
                return way;
            }
            if line.lru < best {
                best = line.lru;
                victim = way;
            }
        }
        victim
    }

    fn fill(&mut self, way: usize, line_addr: u64, write: bool, prefetched: bool) -> Option<Addr> {
        let line = &mut self.lines[way];
        let evicted = if line.valid && line.dirty {
            Some(Addr::new(line.line_addr << self.line_shift))
        } else {
            None
        };
        *line = Line {
            line_addr,
            valid: true,
            dirty: write,
            prefetched,
            lru: self.clock,
        };
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        Cache::new(CacheConfig::new(512, 64, 2))
    }

    #[test]
    fn config_sets() {
        let c = CacheConfig::new(32 * 1024, 64, 8);
        assert_eq!(c.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "whole sets")]
    fn config_rejects_ragged_geometry() {
        CacheConfig::new(3000, 64, 2);
    }

    #[test]
    fn config_allows_non_pow2_total_size() {
        // Niagara's 3 MB 12-way L2: 4096 sets, a power of two.
        let c = CacheConfig::new(3 * 1024 * 1024, 64, 12);
        assert_eq!(c.sets(), 4096);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(Addr::new(0x100), false).hit);
        assert!(c.access(Addr::new(0x13f), false).hit); // same 64B line
        assert!(!c.access(Addr::new(0x140), false).hit); // next line
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 lines: addresses with bits [7:6] == 0 → stride 256.
        let a = Addr::new(0);
        let b = Addr::new(256);
        let d = Addr::new(512);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now MRU
        c.access(d, false); // evicts b (LRU)
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn dirty_eviction_reports_victim() {
        let mut c = tiny();
        c.access(Addr::new(0), true); // dirty
        c.access(Addr::new(256), false);
        let r = c.access(Addr::new(512), false); // evicts line 0 (dirty)
        assert_eq!(r.evicted_dirty, Some(Addr::new(0)));
    }

    #[test]
    fn clean_eviction_reports_none() {
        let mut c = tiny();
        c.access(Addr::new(0), false);
        c.access(Addr::new(256), false);
        let r = c.access(Addr::new(512), false);
        assert_eq!(r.evicted_dirty, None);
    }

    #[test]
    fn prefetch_then_demand_is_covered() {
        let mut c = tiny();
        let (evicted, installed) = c.prefetch_fill(Addr::new(0x40));
        assert!(installed);
        assert_eq!(evicted, None);
        let r = c.access(Addr::new(0x40), false);
        assert!(r.hit);
        assert!(r.prefetch_covered);
        // Second demand hit is no longer "covered".
        let r2 = c.access(Addr::new(0x40), false);
        assert!(!r2.prefetch_covered);
    }

    #[test]
    fn prefetch_of_resident_line_is_noop() {
        let mut c = tiny();
        c.access(Addr::new(0x40), true);
        let (evicted, installed) = c.prefetch_fill(Addr::new(0x40));
        assert!(!installed);
        assert_eq!(evicted, None);
        assert!(c.contains(Addr::new(0x40)));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.access(Addr::new(0), true);
        c.flush();
        assert!(!c.contains(Addr::new(0)));
        assert!(!c.access(Addr::new(0), false).hit);
    }

    #[test]
    fn victim_address_reconstruction() {
        // Fill a specific set, then verify the evicted dirty address is the
        // original one.
        let mut c = Cache::new(CacheConfig::new(1024, 64, 1)); // 16 sets, direct-mapped
        let a = Addr::new(64 * 5); // set 5
        c.access(a, true);
        let conflicting = Addr::new(64 * 5 + 1024); // same set, different tag
        let r = c.access(conflicting, false);
        assert_eq!(r.evicted_dirty, Some(a));
    }

    #[test]
    fn mark_dirty_only_if_resident() {
        let mut c = tiny();
        assert!(!c.mark_dirty(Addr::new(0x40)));
        c.access(Addr::new(0x40), false);
        assert!(c.mark_dirty(Addr::new(0x40)));
        // Now eviction of that line should report it dirty.
        c.access(Addr::new(0x40 + 256), false);
        let r = c.access(Addr::new(0x40 + 512), false);
        assert_eq!(r.evicted_dirty, Some(Addr::new(0x40)));
    }

    #[test]
    fn hashed_index_spreads_aligned_addresses() {
        // 32 lines, each the first line of a 32 KB-aligned block — the
        // DDmalloc segment pattern. Plain indexing piles them into one set
        // (2 survive in a 2-way set); hashed indexing spreads them out.
        let run = |config: CacheConfig| {
            let mut c = Cache::new(config);
            for k in 0..32u64 {
                c.access(Addr::new(k * 32 * 1024), false);
            }
            (0..32u64)
                .filter(|&k| c.contains(Addr::new(k * 32 * 1024)))
                .count()
        };
        // 8 KB cache: 64 sets hashed vs plain, 2-way.
        let plain = run(CacheConfig::new(8192, 64, 2));
        let hashed = run(CacheConfig::new_hashed(8192, 64, 2));
        assert!(plain <= 4, "plain indexing aliases ({plain} resident)");
        assert!(hashed >= 16, "hashed indexing spreads ({hashed} resident)");
    }

    #[test]
    fn hashed_index_is_consistent() {
        // Same address must hit itself and reconstruct its victim address.
        let mut c = Cache::new(CacheConfig::new_hashed(4096, 64, 2));
        c.access(Addr::new(0x12340), true);
        assert!(c.access(Addr::new(0x12340), false).hit);
        assert!(c.contains(Addr::new(0x12340)));
    }
}
