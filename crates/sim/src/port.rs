//! The memory port: how allocators and workloads touch the machine.
//!
//! A [`MemoryPort`] is the only interface through which allocators and the
//! transaction engine interact with memory. It combines
//!
//! * *data* — typed loads/stores against the process's [`SimMemory`], so
//!   allocator metadata actually round-trips through simulated RAM;
//! * *events* — every load, store, executed instruction, and instruction
//!   fetch is routed through the machine's [`MemHierarchy`] and lands in
//!   the per-context hardware counters; and
//! * *attribution* — a current [`Category`] (memory management vs.
//!   application) and a current code region, so the profiler can rebuild
//!   the paper's CPU-time breakdowns.
//!
//! Two implementations are provided: [`ContextPort`] (full machine
//! simulation) and [`PlainPort`] (functional memory only — for fast
//! correctness tests of the allocators).

use crate::addr::Addr;
use crate::code::{CodeRegionId, CodeSpec, CodeState};
use crate::counters::Category;
use crate::hierarchy::{AccessKind, MemHierarchy};
use crate::mem::SimMemory;
use crate::tlb::PageSize;

/// Cache-line size assumed by the data-touch cost model.
const LINE: u64 = 64;

/// Uniform access interface for allocators and workloads.
///
/// All `load_*`/`store_*` calls move real data *and* cost one instruction
/// plus one data access each; [`MemoryPort::exec`] adds pure compute;
/// [`MemoryPort::touch`] models the application reading or writing an
/// object's payload without the simulator materializing the bytes.
pub trait MemoryPort {
    /// Reserves `len` bytes from the simulated OS, aligned to `align`,
    /// backed by pages of size `pages`.
    fn os_alloc(&mut self, len: u64, align: u64, pages: PageSize) -> Addr;

    /// Loads a 64-bit word.
    fn load_u64(&mut self, addr: Addr) -> u64;
    /// Stores a 64-bit word.
    fn store_u64(&mut self, addr: Addr, val: u64);
    /// Loads a 32-bit word.
    fn load_u32(&mut self, addr: Addr) -> u32;
    /// Stores a 32-bit word.
    fn store_u32(&mut self, addr: Addr, val: u32);
    /// Loads one byte.
    fn load_u8(&mut self, addr: Addr) -> u8;
    /// Stores one byte.
    fn store_u8(&mut self, addr: Addr, val: u8);

    /// Models the application touching `len` bytes starting at `addr`
    /// (one access per cache line; `write` selects store vs. load).
    fn touch(&mut self, addr: Addr, len: u64, write: bool);

    /// Copies `len` bytes from `src` to `dst` (used by `realloc`),
    /// accounting loads, stores and instructions.
    fn memcpy(&mut self, dst: Addr, src: Addr, len: u64);

    /// Executes `n_instr` instructions of pure compute in the current code
    /// region (drives instruction-fetch traffic).
    fn exec(&mut self, n_instr: u64);

    /// Sets the cost category for subsequent operations.
    fn set_category(&mut self, cat: Category);
    /// The current cost category.
    fn category(&self) -> Category;

    /// Registers a code region (e.g. an allocator's code footprint).
    fn register_code_region(&mut self, spec: CodeSpec) -> CodeRegionId;
    /// Registers a code region backed by *shared text*: every process
    /// registering the same `key` fetches from the same addresses, as
    /// processes running the same shared library do. `key` identifies the
    /// library (e.g. a hash of the allocator name).
    fn register_shared_code(&mut self, key: u32, spec: CodeSpec) -> CodeRegionId;
    /// Selects the code region that subsequent [`MemoryPort::exec`] calls
    /// fetch from.
    fn set_code_region(&mut self, id: CodeRegionId);
}

/// Per-process persistent memory state: the address space, its code-region
/// registry, and which ranges are backed by large pages.
#[derive(Debug)]
pub struct ProcessMem {
    mem: SimMemory,
    code: CodeState,
    /// Sorted `(start, len)` ranges backed by large pages.
    large_ranges: Vec<(u64, u64)>,
}

impl ProcessMem {
    /// Creates a process address space starting at `base`.
    pub fn new(base: u64) -> Self {
        ProcessMem {
            mem: SimMemory::new(base),
            code: CodeState::new(),
            large_ranges: Vec::new(),
        }
    }

    /// The underlying byte store.
    pub fn memory(&self) -> &SimMemory {
        &self.mem
    }

    /// Registers a code region directly on the process (equivalent to
    /// loading a shared object), without needing a live port.
    pub fn register_code(&mut self, spec: crate::code::CodeSpec) -> crate::code::CodeRegionId {
        let base = self.mem.os_alloc(spec.len, 4096);
        self.code.register(base, spec)
    }

    /// Registers a code region at a fixed address — used for text mapped
    /// shared across processes (the interpreter binary): every process
    /// fetching from the same addresses means shared caches keep a single
    /// copy, as the page cache does on real hardware.
    pub fn register_code_at(
        &mut self,
        base: Addr,
        spec: crate::code::CodeSpec,
    ) -> crate::code::CodeRegionId {
        self.code.register(base, spec)
    }

    /// Reserves a plain data region (e.g. interpreter static data).
    pub fn reserve(&mut self, len: u64, align: u64) -> Addr {
        self.mem.os_alloc(len, align)
    }

    /// Page size backing `addr`.
    pub fn page_of(&self, addr: Addr) -> PageSize {
        let a = addr.raw();
        for &(start, len) in &self.large_ranges {
            if a >= start && a < start + len {
                return PageSize::Large;
            }
        }
        PageSize::Base
    }

    fn os_alloc(&mut self, len: u64, align: u64, pages: PageSize) -> Addr {
        // Large-page mappings are naturally aligned to the page size.
        let align = match pages {
            PageSize::Large => align.max(PageSize::Large.bytes()),
            PageSize::Base => align,
        };
        let addr = self.mem.os_alloc(len, align);
        if pages == PageSize::Large {
            self.large_ranges.push((addr.raw(), len));
        }
        addr
    }
}

/// Full-simulation port: one process executing on one hardware context.
///
/// Borrows the process state and the machine hierarchy for the duration of
/// an execution slice.
#[derive(Debug)]
pub struct ContextPort<'a> {
    proc: &'a mut ProcessMem,
    hier: &'a mut MemHierarchy,
    ctx: usize,
    cat: Category,
    scratch: Vec<Addr>,
}

impl<'a> ContextPort<'a> {
    /// Creates a port for process `proc` running on hardware context `ctx`.
    pub fn new(proc: &'a mut ProcessMem, hier: &'a mut MemHierarchy, ctx: usize) -> Self {
        ContextPort {
            proc,
            hier,
            ctx,
            cat: Category::Application,
            scratch: Vec::new(),
        }
    }

    #[inline]
    fn data_access(&mut self, addr: Addr, kind: AccessKind) {
        let page = self.proc.page_of(addr);
        self.hier.access(self.ctx, addr, kind, page, self.cat);
    }
}

impl MemoryPort for ContextPort<'_> {
    fn os_alloc(&mut self, len: u64, align: u64, pages: PageSize) -> Addr {
        // A real mmap costs a syscall; charge a flat instruction cost.
        self.hier.add_instructions(self.ctx, self.cat, 400);
        self.proc.os_alloc(len, align, pages)
    }

    fn load_u64(&mut self, addr: Addr) -> u64 {
        self.data_access(addr, AccessKind::Load);
        self.proc.mem.read_u64(addr)
    }

    fn store_u64(&mut self, addr: Addr, val: u64) {
        self.data_access(addr, AccessKind::Store);
        self.proc.mem.write_u64(addr, val);
    }

    fn load_u32(&mut self, addr: Addr) -> u32 {
        self.data_access(addr, AccessKind::Load);
        self.proc.mem.read_u32(addr)
    }

    fn store_u32(&mut self, addr: Addr, val: u32) {
        self.data_access(addr, AccessKind::Store);
        self.proc.mem.write_u32(addr, val);
    }

    fn load_u8(&mut self, addr: Addr) -> u8 {
        self.data_access(addr, AccessKind::Load);
        self.proc.mem.read_u8(addr)
    }

    fn store_u8(&mut self, addr: Addr, val: u8) {
        self.data_access(addr, AccessKind::Store);
        self.proc.mem.write_u8(addr, val);
    }

    fn touch(&mut self, addr: Addr, len: u64, write: bool) {
        if len == 0 {
            return;
        }
        let kind = if write {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let first = addr.align_down(LINE);
        let last = (addr + (len - 1)).align_down(LINE);
        let mut line = first;
        loop {
            self.data_access(line, kind);
            // One extra ALU instruction per line beyond the access itself.
            self.hier.add_instructions(self.ctx, self.cat, 1);
            if line == last {
                break;
            }
            line += LINE;
        }
    }

    fn memcpy(&mut self, dst: Addr, src: Addr, len: u64) {
        if len == 0 {
            return;
        }
        // Event model: one load per source line, one store per target line,
        // one instruction per 8 bytes moved.
        self.touch(src, len, false);
        self.touch(dst, len, true);
        self.hier.add_instructions(self.ctx, self.cat, len / 8 + 1);
        // Data model: byte-accurate copy.
        for i in 0..len {
            let b = self.proc.mem.read_u8(src + i);
            self.proc.mem.write_u8(dst + i, b);
        }
    }

    fn exec(&mut self, n_instr: u64) {
        if n_instr == 0 {
            return;
        }
        self.hier.add_instructions(self.ctx, self.cat, n_instr);
        self.scratch.clear();
        self.proc.code.execute(n_instr, &mut self.scratch);
        for i in 0..self.scratch.len() {
            let a = self.scratch[i];
            self.hier
                .access(self.ctx, a, AccessKind::IFetch, PageSize::Base, self.cat);
        }
    }

    fn set_category(&mut self, cat: Category) {
        self.cat = cat;
    }

    fn category(&self) -> Category {
        self.cat
    }

    fn register_code_region(&mut self, spec: CodeSpec) -> CodeRegionId {
        let base = self.proc.mem.os_alloc(spec.len, 4096);
        self.proc.code.register(base, spec)
    }

    fn register_shared_code(&mut self, key: u32, spec: CodeSpec) -> CodeRegionId {
        self.proc.code.register(shared_text_base(key), spec)
    }

    fn set_code_region(&mut self, id: CodeRegionId) {
        self.proc.code.set_current(id);
    }
}

/// Fixed mapping address for shared library text `key` (16 MB apart, far
/// from any per-process reservation window).
fn shared_text_base(key: u32) -> Addr {
    Addr::new(0x7200_0000_0000 + u64::from(key) * (16 << 20))
}

/// Functional-only port: real memory, no machine model.
///
/// Used by allocator unit and property tests where only correctness (not
/// cache behaviour) is under test. Instructions are still counted so cost
/// accounting can be asserted cheaply.
#[derive(Debug)]
pub struct PlainPort {
    mem: SimMemory,
    code: CodeState,
    cat: Category,
    instructions: u64,
    large_ranges: Vec<(u64, u64)>,
}

impl PlainPort {
    /// Creates a stand-alone address space at a default base.
    pub fn new() -> Self {
        PlainPort {
            mem: SimMemory::new(1 << 32),
            code: CodeState::new(),
            cat: Category::Application,
            instructions: 0,
            large_ranges: Vec::new(),
        }
    }

    /// Total instructions charged through this port.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The underlying byte store (for white-box assertions).
    pub fn memory(&self) -> &SimMemory {
        &self.mem
    }

    /// Ranges mapped with large pages.
    pub fn large_ranges(&self) -> &[(u64, u64)] {
        &self.large_ranges
    }
}

impl Default for PlainPort {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryPort for PlainPort {
    fn os_alloc(&mut self, len: u64, align: u64, pages: PageSize) -> Addr {
        self.instructions += 400;
        let align = match pages {
            PageSize::Large => align.max(PageSize::Large.bytes()),
            PageSize::Base => align,
        };
        let addr = self.mem.os_alloc(len, align);
        if pages == PageSize::Large {
            self.large_ranges.push((addr.raw(), len));
        }
        addr
    }

    fn load_u64(&mut self, addr: Addr) -> u64 {
        self.instructions += 1;
        self.mem.read_u64(addr)
    }

    fn store_u64(&mut self, addr: Addr, val: u64) {
        self.instructions += 1;
        self.mem.write_u64(addr, val);
    }

    fn load_u32(&mut self, addr: Addr) -> u32 {
        self.instructions += 1;
        self.mem.read_u32(addr)
    }

    fn store_u32(&mut self, addr: Addr, val: u32) {
        self.instructions += 1;
        self.mem.write_u32(addr, val);
    }

    fn load_u8(&mut self, addr: Addr) -> u8 {
        self.instructions += 1;
        self.mem.read_u8(addr)
    }

    fn store_u8(&mut self, addr: Addr, val: u8) {
        self.instructions += 1;
        self.mem.write_u8(addr, val);
    }

    fn touch(&mut self, addr: Addr, len: u64, _write: bool) {
        if len == 0 {
            return;
        }
        let lines = (addr + (len - 1)).align_down(LINE) - addr.align_down(LINE);
        self.instructions += lines / LINE + 1;
    }

    fn memcpy(&mut self, dst: Addr, src: Addr, len: u64) {
        self.instructions += len / 8 + 1;
        for i in 0..len {
            let b = self.mem.read_u8(src + i);
            self.mem.write_u8(dst + i, b);
        }
    }

    fn exec(&mut self, n_instr: u64) {
        self.instructions += n_instr;
    }

    fn set_category(&mut self, cat: Category) {
        self.cat = cat;
    }

    fn category(&self) -> Category {
        self.cat
    }

    fn register_code_region(&mut self, spec: CodeSpec) -> CodeRegionId {
        let base = self.mem.os_alloc(spec.len, 4096);
        self.code.register(base, spec)
    }

    fn register_shared_code(&mut self, key: u32, spec: CodeSpec) -> CodeRegionId {
        self.code.register(shared_text_base(key), spec)
    }

    fn set_code_region(&mut self, id: CodeRegionId) {
        self.code.set_current(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    #[test]
    fn context_port_moves_data_and_counts_events() {
        let mut proc = ProcessMem::new(1 << 40);
        let mut hier = MemHierarchy::new(&MachineConfig::xeon_clovertown());
        let mut port = ContextPort::new(&mut proc, &mut hier, 0);
        let a = port.os_alloc(4096, 8, PageSize::Base);
        port.store_u64(a, 77);
        assert_eq!(port.load_u64(a), 77);
        drop(port);
        let ev = hier.counters(0).get(Category::Application);
        assert_eq!(ev.loads, 1);
        assert_eq!(ev.stores, 1);
        assert!(ev.instructions >= 402);
    }

    #[test]
    fn category_attribution_flows_to_counters() {
        let mut proc = ProcessMem::new(1 << 40);
        let mut hier = MemHierarchy::new(&MachineConfig::xeon_clovertown());
        let mut port = ContextPort::new(&mut proc, &mut hier, 0);
        let a = port.os_alloc(4096, 8, PageSize::Base);
        port.set_category(Category::MemoryManagement);
        port.store_u64(a, 1);
        port.set_category(Category::Application);
        port.store_u64(a + 64, 2);
        drop(port);
        assert_eq!(hier.counters(0).mm.stores, 1);
        assert_eq!(hier.counters(0).app.stores, 1);
    }

    #[test]
    fn touch_accesses_each_line_once() {
        let mut proc = ProcessMem::new(1 << 40);
        let mut hier = MemHierarchy::new(&MachineConfig::xeon_clovertown());
        let mut port = ContextPort::new(&mut proc, &mut hier, 0);
        let a = port.os_alloc(4096, 64, PageSize::Base);
        port.touch(a, 200, true); // 200 bytes from line start = 4 lines
        drop(port);
        assert_eq!(hier.counters(0).app.stores, 4);
    }

    #[test]
    fn touch_unaligned_spans_extra_line() {
        let mut proc = ProcessMem::new(1 << 40);
        let mut hier = MemHierarchy::new(&MachineConfig::xeon_clovertown());
        let mut port = ContextPort::new(&mut proc, &mut hier, 0);
        let a = port.os_alloc(4096, 64, PageSize::Base);
        port.touch(a + 60, 8, false); // straddles two lines
        drop(port);
        assert_eq!(hier.counters(0).app.loads, 2);
    }

    #[test]
    fn memcpy_copies_bytes() {
        let mut proc = ProcessMem::new(1 << 40);
        let mut hier = MemHierarchy::new(&MachineConfig::xeon_clovertown());
        let mut port = ContextPort::new(&mut proc, &mut hier, 0);
        let src = port.os_alloc(128, 8, PageSize::Base);
        let dst = port.os_alloc(128, 8, PageSize::Base);
        port.store_u64(src, 0xfeed);
        port.store_u64(src + 8, 0xf00d);
        port.memcpy(dst, src, 16);
        assert_eq!(port.load_u64(dst), 0xfeed);
        assert_eq!(port.load_u64(dst + 8), 0xf00d);
    }

    #[test]
    fn large_page_mapping_reduces_tlb_misses() {
        let machine = MachineConfig::xeon_clovertown();
        let run = |pages: PageSize| {
            let mut proc = ProcessMem::new(1 << 40);
            let mut hier = MemHierarchy::new(&machine);
            let mut port = ContextPort::new(&mut proc, &mut hier, 0);
            let heap = port.os_alloc(64 << 20, 4096, pages);
            // Touch 32 MB sparsely: one line per 4 KB page.
            for i in 0..8192u64 {
                port.touch(heap + i * 4096, 8, true);
            }
            drop(port);
            hier.counters(0).app.dtlb_misses
        };
        let base_misses = run(PageSize::Base);
        let large_misses = run(PageSize::Large);
        assert!(
            large_misses * 4 < base_misses,
            "large pages must slash TLB misses ({large_misses} vs {base_misses})"
        );
    }

    #[test]
    fn exec_fetches_code_lines() {
        let mut proc = ProcessMem::new(1 << 40);
        let mut hier = MemHierarchy::new(&MachineConfig::xeon_clovertown());
        let mut port = ContextPort::new(&mut proc, &mut hier, 0);
        let id = port.register_code_region(CodeSpec::new(16 * 1024, 4096));
        port.set_code_region(id);
        port.exec(1000);
        drop(port);
        let ev = hier.counters(0).get(Category::Application);
        assert_eq!(ev.instructions, 1000);
        assert!(ev.ifetch_lines > 0);
    }

    #[test]
    fn plain_port_is_functional() {
        let mut p = PlainPort::new();
        let a = p.os_alloc(4096, 4096, PageSize::Base);
        p.store_u64(a, 5);
        p.store_u8(a + 8, 9);
        p.store_u32(a + 12, 1234);
        assert_eq!(p.load_u64(a), 5);
        assert_eq!(p.load_u8(a + 8), 9);
        assert_eq!(p.load_u32(a + 12), 1234);
        assert!(p.instructions() > 0);
    }

    #[test]
    fn plain_port_tracks_large_ranges() {
        let mut p = PlainPort::new();
        let a = p.os_alloc(8 << 20, 4096, PageSize::Large);
        assert!(a.is_aligned(4 << 20));
        assert_eq!(p.large_ranges().len(), 1);
    }
}
