//! Hardware-event counters.
//!
//! The paper reads its machines with OProfile's hardware performance
//! monitors (instructions, L1I/L1D/L2 cache misses, D-TLB misses, bus
//! transactions — Figure 8) and splits CPU time into *memory management*
//! and *others* (Figures 6 and 11). [`EventCounts`] is the simulator's
//! equivalent of one HPM register file, and [`CategorizedCounts`] keeps one
//! per cost category so the profiler can rebuild the paper's breakdowns.

use serde::Serialize;
use std::ops::{Add, AddAssign};

/// Cost attribution category for an executed operation.
///
/// Every instruction and memory access recorded by the simulator is tagged
/// with the component that caused it, mirroring how the paper separates
/// "memory operations ... for transaction-scoped objects in the PHP runtime"
/// from the rest of the program.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum Category {
    /// Work done inside `malloc`/`free`/`realloc`/`freeAll` — including the
    /// allocator's own metadata traffic.
    MemoryManagement,
    /// Everything else: application compute, object reads/writes, runtime
    /// dispatch.
    Application,
}

impl Category {
    /// All categories, in display order.
    pub const ALL: [Category; 2] = [Category::MemoryManagement, Category::Application];

    /// Short label used in reports ("mm" / "app").
    pub fn label(self) -> &'static str {
        match self {
            Category::MemoryManagement => "mm",
            Category::Application => "app",
        }
    }
}

/// One set of simulated hardware-event counters.
///
/// All fields are cumulative event *counts* (not cycles); converting events
/// to time is the job of the machine cost model, which is where
/// platform-specific penalties and the bus-contention multiplier are
/// applied.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, serde::Deserialize)]
pub struct EventCounts {
    /// Instructions executed.
    pub instructions: u64,
    /// Data loads issued (before cache filtering).
    pub loads: u64,
    /// Data stores issued.
    pub stores: u64,
    /// Instruction-cache line fetches issued.
    pub ifetch_lines: u64,
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// Accesses that missed L1 but hit in the shared L2.
    pub l2_hits: u64,
    /// Of `l2_hits`, those that hit a line brought in by the prefetcher
    /// (the demand miss was *covered*).
    pub prefetch_covered: u64,
    /// Demand accesses that missed L2 and went to memory.
    pub l2_misses: u64,
    /// D-TLB misses (data accesses only).
    pub dtlb_misses: u64,
    /// Bus transactions: demand line fills + writebacks + prefetch fills.
    pub bus_txns: u64,
    /// Bytes moved over the memory bus.
    pub bus_bytes: u64,
    /// Dirty L2 lines written back to memory.
    pub writebacks: u64,
    /// Prefetch fills issued by the L2 stream prefetcher.
    pub prefetches: u64,
}

impl EventCounts {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total data accesses (loads + stores).
    pub fn data_accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Demand misses that had to wait on memory (excludes prefetch-covered).
    pub fn memory_demand_misses(&self) -> u64 {
        self.l2_misses
    }
}

impl Add for EventCounts {
    type Output = EventCounts;
    fn add(self, rhs: EventCounts) -> EventCounts {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for EventCounts {
    fn add_assign(&mut self, rhs: EventCounts) {
        self.instructions += rhs.instructions;
        self.loads += rhs.loads;
        self.stores += rhs.stores;
        self.ifetch_lines += rhs.ifetch_lines;
        self.l1i_misses += rhs.l1i_misses;
        self.l1d_misses += rhs.l1d_misses;
        self.l2_hits += rhs.l2_hits;
        self.prefetch_covered += rhs.prefetch_covered;
        self.l2_misses += rhs.l2_misses;
        self.dtlb_misses += rhs.dtlb_misses;
        self.bus_txns += rhs.bus_txns;
        self.bus_bytes += rhs.bus_bytes;
        self.writebacks += rhs.writebacks;
        self.prefetches += rhs.prefetches;
    }
}

/// Event counters split by [`Category`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, serde::Deserialize)]
pub struct CategorizedCounts {
    /// Events attributed to memory management.
    pub mm: EventCounts,
    /// Events attributed to the application / runtime.
    pub app: EventCounts,
}

impl CategorizedCounts {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable access to the counters of `cat`.
    pub fn get_mut(&mut self, cat: Category) -> &mut EventCounts {
        match cat {
            Category::MemoryManagement => &mut self.mm,
            Category::Application => &mut self.app,
        }
    }

    /// Shared access to the counters of `cat`.
    pub fn get(&self, cat: Category) -> &EventCounts {
        match cat {
            Category::MemoryManagement => &self.mm,
            Category::Application => &self.app,
        }
    }

    /// Sum over both categories.
    pub fn total(&self) -> EventCounts {
        self.mm + self.app
    }

    /// Difference of two snapshots (`self` must be the later one,
    /// field-wise `>=`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter of `earlier` exceeds the
    /// corresponding counter of `self`.
    pub fn since(&self, earlier: &CategorizedCounts) -> CategorizedCounts {
        fn sub(a: &EventCounts, b: &EventCounts) -> EventCounts {
            EventCounts {
                instructions: a.instructions - b.instructions,
                loads: a.loads - b.loads,
                stores: a.stores - b.stores,
                ifetch_lines: a.ifetch_lines - b.ifetch_lines,
                l1i_misses: a.l1i_misses - b.l1i_misses,
                l1d_misses: a.l1d_misses - b.l1d_misses,
                l2_hits: a.l2_hits - b.l2_hits,
                prefetch_covered: a.prefetch_covered - b.prefetch_covered,
                l2_misses: a.l2_misses - b.l2_misses,
                dtlb_misses: a.dtlb_misses - b.dtlb_misses,
                bus_txns: a.bus_txns - b.bus_txns,
                bus_bytes: a.bus_bytes - b.bus_bytes,
                writebacks: a.writebacks - b.writebacks,
                prefetches: a.prefetches - b.prefetches,
            }
        }
        CategorizedCounts {
            mm: sub(&self.mm, &earlier.mm),
            app: sub(&self.app, &earlier.app),
        }
    }
}

impl AddAssign for CategorizedCounts {
    fn add_assign(&mut self, rhs: CategorizedCounts) {
        self.mm += rhs.mm;
        self.app += rhs.app;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EventCounts {
        EventCounts {
            instructions: 100,
            loads: 40,
            stores: 20,
            ifetch_lines: 10,
            l1i_misses: 1,
            l1d_misses: 6,
            l2_hits: 4,
            prefetch_covered: 1,
            l2_misses: 2,
            dtlb_misses: 1,
            bus_txns: 3,
            bus_bytes: 192,
            writebacks: 1,
            prefetches: 1,
        }
    }

    #[test]
    fn add_is_fieldwise() {
        let s = sample() + sample();
        assert_eq!(s.instructions, 200);
        assert_eq!(s.bus_bytes, 384);
        assert_eq!(s.data_accesses(), 120);
    }

    #[test]
    fn categorized_total_and_since() {
        let mut c = CategorizedCounts::new();
        *c.get_mut(Category::MemoryManagement) += sample();
        let snap = c;
        *c.get_mut(Category::Application) += sample();
        assert_eq!(c.total().instructions, 200);
        let d = c.since(&snap);
        assert_eq!(d.mm.instructions, 0);
        assert_eq!(d.app.instructions, 100);
    }

    #[test]
    fn category_labels() {
        assert_eq!(Category::MemoryManagement.label(), "mm");
        assert_eq!(Category::Application.label(), "app");
        assert_eq!(Category::ALL.len(), 2);
    }
}
