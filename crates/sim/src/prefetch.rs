//! L2 stream-prefetcher model.
//!
//! The paper attributes the gap between the region allocator's moderate L2
//! miss increase and its much larger bus-transaction increase on Xeon to the
//! hardware memory prefetcher: bump-pointer allocation produces perfectly
//! sequential miss streams that the prefetcher chases, converting latency
//! into extra bus traffic. ("We observed that the difference was reduced by
//! disabling the prefetcher.") Niagara has no hardware prefetcher.
//!
//! This module implements a classic stream detector: a small table of
//! candidate streams keyed by the miss address; two sequential misses
//! confirm a stream, after which each further demand touch of the stream
//! issues `degree` prefetch fills ahead of the current line.

use crate::addr::Addr;
use serde::Serialize;

/// Stream-prefetcher parameters.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize)]
pub struct PrefetchConfig {
    /// Number of concurrently-tracked streams.
    pub streams: usize,
    /// Lines fetched ahead once a stream is confirmed.
    pub degree: u32,
    /// Cache line size in bytes (must match the L2).
    pub line_bytes: u64,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            streams: 16,
            degree: 2,
            line_bytes: 64,
        }
    }
}

#[derive(Copy, Clone, Debug)]
struct Stream {
    /// Next line address expected to continue this stream.
    next_line: u64,
    /// How many sequential lines have been observed.
    confirmations: u32,
    /// LRU stamp.
    lru: u64,
    valid: bool,
}

/// A sequential stream prefetcher sitting next to a shared L2.
///
/// Call [`StreamPrefetcher::on_access`] with every demand access that
/// reached the L2; it returns the list of line addresses to prefetch-fill.
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    config: PrefetchConfig,
    table: Vec<Stream>,
    clock: u64,
    issued: u64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher with an empty stream table.
    pub fn new(config: PrefetchConfig) -> Self {
        StreamPrefetcher {
            config,
            table: vec![
                Stream {
                    next_line: 0,
                    confirmations: 0,
                    lru: 0,
                    valid: false
                };
                config.streams
            ],
            clock: 0,
            issued: 0,
        }
    }

    /// The prefetcher parameters.
    pub fn config(&self) -> PrefetchConfig {
        self.config
    }

    /// Total prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Observes a demand access to `addr` that reached the L2 (`miss` says
    /// whether it missed there). Returns the addresses to prefetch.
    pub fn on_access(&mut self, addr: Addr, miss: bool) -> Vec<Addr> {
        self.clock += 1;
        let line = addr.raw() / self.config.line_bytes;

        // Does this access continue an existing stream?
        for s in &mut self.table {
            if s.valid && line == s.next_line {
                s.next_line = line + 1;
                s.confirmations += 1;
                s.lru = self.clock;
                if s.confirmations >= 2 {
                    // Confirmed stream: run ahead.
                    let degree = u64::from(self.config.degree);
                    let out: Vec<Addr> = (1..=degree)
                        .map(|k| Addr::new((line + k) * self.config.line_bytes))
                        .collect();
                    self.issued += out.len() as u64;
                    return out;
                }
                return Vec::new();
            }
        }

        // New candidate streams are allocated on misses only.
        if miss {
            if let Some(victim) = self
                .table
                .iter_mut()
                .min_by_key(|s| if s.valid { s.lru } else { 0 })
            {
                *victim = Stream {
                    next_line: line + 1,
                    confirmations: 0,
                    lru: self.clock,
                    valid: true,
                };
            }
        }
        Vec::new()
    }

    /// Forgets all streams.
    pub fn flush(&mut self) {
        for s in &mut self.table {
            s.valid = false;
        }
    }
}

#[cfg(test)]
#[allow(clippy::identity_op, clippy::precedence)] // addresses written as (page << 20) + offset
mod tests {
    use super::*;

    fn pf() -> StreamPrefetcher {
        StreamPrefetcher::new(PrefetchConfig {
            streams: 4,
            degree: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn sequential_stream_triggers_prefetch() {
        let mut p = pf();
        assert!(p.on_access(Addr::new(0), true).is_empty()); // allocate stream
        assert!(p.on_access(Addr::new(64), true).is_empty()); // 1st confirmation
        let out = p.on_access(Addr::new(128), true); // 2nd confirmation → fire
        assert_eq!(out, vec![Addr::new(192), Addr::new(256)]);
        assert_eq!(p.issued(), 2);
    }

    #[test]
    fn random_accesses_never_fire() {
        let mut p = pf();
        for a in [0u64, 4096, 640, 13 * 64, 99 * 64, 7 * 64] {
            assert!(p.on_access(Addr::new(a), true).is_empty());
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn stream_keeps_running_ahead() {
        let mut p = pf();
        p.on_access(Addr::new(0), true);
        p.on_access(Addr::new(64), true);
        p.on_access(Addr::new(128), true);
        let out = p.on_access(Addr::new(192), false); // hit on prefetched line continues stream
        assert_eq!(out, vec![Addr::new(256), Addr::new(320)]);
    }

    #[test]
    fn hits_do_not_allocate_streams() {
        let mut p = pf();
        // Only hits: no stream should ever be allocated or fired.
        p.on_access(Addr::new(0), false);
        p.on_access(Addr::new(64), false);
        assert!(p.on_access(Addr::new(128), false).is_empty());
    }

    #[test]
    fn table_replacement_is_lru() {
        let mut p = pf();
        // Fill 4 streams at distant addresses.
        for i in 0..4u64 {
            p.on_access(Addr::new(i * 1 << 20), true);
        }
        // A fifth miss evicts the oldest; continuing the oldest now does nothing.
        p.on_access(Addr::new(5 << 20), true);
        assert!(p.on_access(Addr::new((0 << 20) + 64), true).is_empty());
        // But it re-allocated a stream, so two more sequential misses fire.
        p.on_access(Addr::new((0 << 20) + 128), true);
        let out = p.on_access(Addr::new((0 << 20) + 192), true);
        assert!(!out.is_empty());
    }

    #[test]
    fn flush_forgets_streams() {
        let mut p = pf();
        p.on_access(Addr::new(0), true);
        p.on_access(Addr::new(64), true);
        p.flush();
        assert!(p.on_access(Addr::new(128), true).is_empty());
    }
}
