//! Instruction-footprint model.
//!
//! The paper observes that "the reduction in instructions and L1
//! instruction cache misses for DDmalloc and the region-based allocator
//! were because of the smaller size of the allocator code": allocator code
//! size is a first-order effect on L1I behaviour. We model each component
//! (interpreter, runtime, each allocator) as a *code region* with a total
//! size and a hot-path size. Executing `n` instructions advances a cursor
//! through the hot path (sequential fetch, wrapping), with periodic
//! excursions into the cold remainder — so a 2 KB bump allocator stays
//! resident in L1I while a 32 KB general-purpose allocator contends with
//! the interpreter for it.

use crate::addr::Addr;
use serde::Serialize;

/// Static description of one component's code footprint.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize)]
pub struct CodeSpec {
    /// Total code size in bytes.
    pub len: u64,
    /// Size of the hot path that executes most instructions.
    pub hot_len: u64,
}

impl CodeSpec {
    /// Creates a spec, validating `hot_len <= len` and nonzero sizes.
    ///
    /// # Panics
    ///
    /// Panics if `hot_len` is zero or exceeds `len`.
    pub fn new(len: u64, hot_len: u64) -> Self {
        assert!(hot_len > 0, "hot path must be nonzero");
        assert!(hot_len <= len, "hot path cannot exceed total code size");
        CodeSpec { len, hot_len }
    }
}

/// Handle to a registered code region.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct CodeRegionId(pub(crate) usize);

/// Bytes of sequential hot-path execution per cold-code excursion.
const COLD_EVERY_BYTES: u64 = 8192;
/// Bytes fetched per instruction (fixed-width RISC-flavoured encoding).
const BYTES_PER_INSTR: u64 = 4;
/// Cache line granularity for fetches.
const LINE: u64 = 64;

#[derive(Debug)]
struct Region {
    base: Addr,
    spec: CodeSpec,
    /// Byte offset of the hot-path cursor within `hot_len`.
    cursor: u64,
    /// Bytes accumulated toward the next cold excursion.
    cold_acc: u64,
    /// Deterministic generator for cold-excursion targets.
    lcg: u64,
}

/// Per-process code-fetch state: registered regions and their cursors.
///
/// Executing instructions yields a list of line addresses to fetch, which
/// the memory port routes through the L1I.
#[derive(Debug, Default)]
pub struct CodeState {
    regions: Vec<Region>,
    current: Option<CodeRegionId>,
}

impl CodeState {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a region whose code occupies `[base, base + spec.len)`.
    pub fn register(&mut self, base: Addr, spec: CodeSpec) -> CodeRegionId {
        let id = CodeRegionId(self.regions.len());
        self.regions.push(Region {
            base,
            spec,
            cursor: 0,
            cold_acc: 0,
            lcg: 0x9e37_79b9_7f4a_7c15 ^ base.raw(),
        });
        if self.current.is_none() {
            self.current = Some(id);
        }
        id
    }

    /// Selects the region subsequent [`CodeState::execute`] calls fetch from.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this registry.
    pub fn set_current(&mut self, id: CodeRegionId) {
        assert!(id.0 < self.regions.len(), "unknown code region");
        self.current = Some(id);
    }

    /// The currently selected region, if any.
    pub fn current(&self) -> Option<CodeRegionId> {
        self.current
    }

    /// Advances the current region's cursors by `n_instr` instructions and
    /// appends the cache-line addresses that must be fetched to `out`.
    ///
    /// Returns silently without fetches if no region is registered (useful
    /// for ports that do not model instruction fetch).
    pub fn execute(&mut self, n_instr: u64, out: &mut Vec<Addr>) {
        let Some(CodeRegionId(idx)) = self.current else {
            return;
        };
        let r = &mut self.regions[idx];
        let bytes = n_instr * BYTES_PER_INSTR;

        // Hot-path sequential fetch with wraparound.
        let start = r.cursor;
        let end = r.cursor + bytes;
        let first_line = start / LINE;
        let last_line = end / LINE;
        // Cap per-call fetches at the number of distinct hot lines — a long
        // exec that wraps the hot path many times still touches each line
        // once per residence.
        let hot_lines = r.spec.hot_len.div_ceil(LINE);
        let n_lines = (last_line - first_line).min(hot_lines);
        for k in 0..n_lines {
            let line_off = ((first_line + 1 + k) * LINE) % (r.spec.hot_len / LINE * LINE).max(LINE);
            out.push(r.base + line_off);
        }
        r.cursor = end % r.spec.hot_len.max(1);

        // Cold excursions into the rest of the code.
        if r.spec.len > r.spec.hot_len {
            r.cold_acc += bytes;
            let cold_len = r.spec.len - r.spec.hot_len;
            while r.cold_acc >= COLD_EVERY_BYTES {
                r.cold_acc -= COLD_EVERY_BYTES;
                // xorshift for a deterministic pseudo-random cold target.
                r.lcg ^= r.lcg << 13;
                r.lcg ^= r.lcg >> 7;
                r.lcg ^= r.lcg << 17;
                let off = r.spec.hot_len + (r.lcg % cold_len);
                out.push((r.base + off).align_down(LINE));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation() {
        let s = CodeSpec::new(8192, 2048);
        assert_eq!(s.len, 8192);
    }

    #[test]
    #[should_panic(expected = "hot path cannot exceed")]
    fn spec_rejects_hot_beyond_len() {
        CodeSpec::new(100, 200);
    }

    #[test]
    fn sequential_fetch_within_hot_path() {
        let mut cs = CodeState::new();
        let id = cs.register(Addr::new(0x1000), CodeSpec::new(4096, 1024));
        cs.set_current(id);
        let mut out = Vec::new();
        cs.execute(64, &mut out); // 256 bytes = 4 lines
        assert_eq!(out.len(), 4);
        // All fetches fall inside the hot path.
        for a in &out {
            assert!(a.raw() >= 0x1000 && a.raw() < 0x1000 + 1024);
        }
    }

    #[test]
    fn hot_path_wraps() {
        let mut cs = CodeState::new();
        let id = cs.register(Addr::new(0), CodeSpec::new(256, 256));
        cs.set_current(id);
        let mut out = Vec::new();
        // 512 instructions = 2 KB of fetch through a 256-byte hot loop:
        // at most the loop's 4 distinct lines per call.
        cs.execute(512, &mut out);
        assert!(out.len() <= 4);
        let distinct: std::collections::HashSet<u64> = out.iter().map(|a| a.raw() / 64).collect();
        assert!(distinct.len() <= 4);
    }

    #[test]
    fn cold_excursions_happen_for_big_regions() {
        let mut cs = CodeState::new();
        let id = cs.register(Addr::new(0x100000), CodeSpec::new(512 * 1024, 8 * 1024));
        cs.set_current(id);
        let mut out = Vec::new();
        for _ in 0..100 {
            cs.execute(500, &mut out); // 2 KB/call → one cold line every ~2 calls
        }
        let cold: Vec<&Addr> = out
            .iter()
            .filter(|a| a.raw() >= 0x100000 + 8 * 1024)
            .collect();
        assert!(!cold.is_empty(), "large regions must produce cold fetches");
        for a in &cold {
            assert!(a.raw() < 0x100000 + 512 * 1024);
        }
    }

    #[test]
    fn small_region_stays_hot() {
        let mut cs = CodeState::new();
        // A 2 KB allocator (region-based) with hot == len: no cold fetches.
        let id = cs.register(Addr::new(0x2000), CodeSpec::new(2048, 2048));
        cs.set_current(id);
        let mut out = Vec::new();
        for _ in 0..1000 {
            cs.execute(100, &mut out);
        }
        let distinct: std::collections::HashSet<u64> = out.iter().map(|a| a.raw() / 64).collect();
        assert!(distinct.len() <= 2048 / 64);
    }

    #[test]
    fn execute_without_region_is_noop() {
        let mut cs = CodeState::new();
        let mut out = Vec::new();
        cs.execute(1000, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn deterministic_across_instances() {
        let run = || {
            let mut cs = CodeState::new();
            let id = cs.register(Addr::new(0x9000), CodeSpec::new(64 * 1024, 4096));
            cs.set_current(id);
            let mut out = Vec::new();
            for _ in 0..50 {
                cs.execute(333, &mut out);
            }
            out
        };
        assert_eq!(run(), run());
    }
}
