//! Simulated 64-bit addresses.
//!
//! The simulator runs allocators inside a synthetic address space. [`Addr`]
//! is a newtype over `u64` with the arithmetic helpers an allocator needs
//! (offsetting, alignment, cache-line and page extraction) while keeping
//! addresses statically distinct from plain sizes and counts.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A byte address in the simulated address space.
///
/// `Addr` supports `addr + offset` (`u64`), `addr - addr` (byte distance),
/// and ordering. Construct with [`Addr::new`] and read the raw value with
/// [`Addr::raw`].
///
/// # Examples
///
/// ```
/// use webmm_sim::Addr;
/// let a = Addr::new(0x1000);
/// assert_eq!((a + 0x40).raw(), 0x1040);
/// assert_eq!((a + 0x40) - a, 0x40);
/// assert_eq!(a.align_up(0x1000), a);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

/// The null address. Used as the `next` terminator in intrusive free lists.
pub const NULL_ADDR: Addr = Addr(0);

impl Addr {
    /// Creates an address from a raw 64-bit value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the null address.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Rounds the address down to a multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `align` is not a power of two.
    #[inline]
    pub const fn align_down(self, align: u64) -> Self {
        debug_assert!(align.is_power_of_two());
        Addr(self.0 & !(align - 1))
    }

    /// Rounds the address up to a multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `align` is not a power of two.
    #[inline]
    pub const fn align_up(self, align: u64) -> Self {
        debug_assert!(align.is_power_of_two());
        Addr((self.0 + align - 1) & !(align - 1))
    }

    /// Returns `true` if the address is a multiple of `align`.
    #[inline]
    pub const fn is_aligned(self, align: u64) -> bool {
        self.0.is_multiple_of(align)
    }

    /// Returns the offset of this address within an `align`-sized block.
    #[inline]
    pub const fn offset_in(self, align: u64) -> u64 {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1)
    }

    /// Returns a checked difference, or `None` if `other > self`.
    #[inline]
    pub fn checked_sub(self, other: Addr) -> Option<u64> {
        self.0.checked_sub(other.0)
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    #[inline]
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl AddAssign<u64> for Addr {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Addr) -> u64 {
        debug_assert!(self.0 >= rhs.0, "address subtraction underflow");
        self.0 - rhs.0
    }
}

impl Sub<u64> for Addr {
    type Output = Addr;
    #[inline]
    fn sub(self, rhs: u64) -> Addr {
        Addr(self.0 - rhs)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_round_trip() {
        let a = Addr::new(0x1234);
        assert_eq!(a.align_down(0x1000), Addr::new(0x1000));
        assert_eq!(a.align_up(0x1000), Addr::new(0x2000));
        assert_eq!(Addr::new(0x2000).align_up(0x1000), Addr::new(0x2000));
        assert_eq!(Addr::new(0x2000).align_down(0x1000), Addr::new(0x2000));
    }

    #[test]
    fn offset_and_aligned() {
        let a = Addr::new(0x8042);
        assert_eq!(a.offset_in(0x8000), 0x42);
        assert!(!a.is_aligned(64));
        assert!(Addr::new(0x80c0).is_aligned(64));
    }

    #[test]
    fn arithmetic() {
        let a = Addr::new(100);
        assert_eq!(a + 28, Addr::new(128));
        assert_eq!(Addr::new(128) - a, 28);
        assert_eq!(Addr::new(128) - 28u64, a);
        assert_eq!(a.checked_sub(Addr::new(128)), None);
        assert_eq!(Addr::new(128).checked_sub(a), Some(28));
    }

    #[test]
    fn null_addr() {
        assert!(NULL_ADDR.is_null());
        assert!(!Addr::new(8).is_null());
        assert_eq!(Addr::default(), NULL_ADDR);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", Addr::new(0xff)), "0xff");
        assert_eq!(format!("{:?}", Addr::new(0xff)), "Addr(0xff)");
    }
}
