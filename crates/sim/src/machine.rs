//! Machine models: the two platforms of the paper plus a builder for
//! custom configurations.
//!
//! The paper evaluates on
//!
//! * **Xeon (Clovertown)** — two quad-core Intel Xeon E5320 at 1.86 GHz:
//!   fast out-of-order cores, large caches (32 KB L1s; one 4 MB L2 shared
//!   per core pair), a hardware stream prefetcher, and a front-side bus
//!   whose bandwidth is modest relative to the cores' appetite; and
//! * **Niagara (UltraSPARC T1)** — eight in-order cores at 1.2 GHz with
//!   4-way fine-grained multithreading, small caches (16 KB L1I / 8 KB L1D
//!   per core; one 3 MB L2 shared by all cores), no hardware prefetcher,
//!   software TLB handling, and comparatively generous memory bandwidth.
//!
//! These asymmetries are exactly what drives the paper's results — the
//! region allocator dies on Xeon's thin, prefetcher-amplified bus and
//! merely stumbles on Niagara — so the presets encode them explicitly.

use crate::bus::BusConfig;
use crate::cache::CacheConfig;
use crate::counters::EventCounts;
use crate::prefetch::PrefetchConfig;
use crate::tlb::TlbConfig;
use serde::Serialize;

/// Parameters converting event counts into cycles.
#[derive(Copy, Clone, Debug, PartialEq, Serialize)]
pub struct CostParams {
    /// Base cycles per instruction with all caches hitting.
    pub cpi_base: f64,
    /// L1-miss/L2-hit latency in cycles.
    pub l2_hit_latency: f64,
    /// D-TLB miss penalty in cycles (hardware walk on Xeon, software trap
    /// on Niagara).
    pub tlb_miss_penalty: f64,
    /// Fraction of memory-stall cycles hidden by out-of-order execution
    /// and memory-level parallelism (0 = fully exposed).
    pub ooo_overlap: f64,
    /// How strongly prefetch-covered misses degrade back toward full
    /// memory latency under bus contention (0 = never degrade, 1 = a
    /// covered miss costs the full contended latency once the bus
    /// saturates).
    pub prefetch_degrade: f64,
}

/// Cycle cost of a slice of execution, split by source.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize)]
pub struct Cycles {
    /// Instruction execution (CPI × instructions).
    pub compute: f64,
    /// L1-miss/L2-hit stalls.
    pub l2_hit_stall: f64,
    /// L2-miss memory stalls (includes the contention multiplier).
    pub memory_stall: f64,
    /// D-TLB handling.
    pub tlb_stall: f64,
}

impl Cycles {
    /// Total cycles.
    pub fn total(&self) -> f64 {
        self.compute + self.l2_hit_stall + self.memory_stall + self.tlb_stall
    }
}

impl std::ops::Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles {
            compute: self.compute + rhs.compute,
            l2_hit_stall: self.l2_hit_stall + rhs.l2_hit_stall,
            memory_stall: self.memory_stall + rhs.memory_stall,
            tlb_stall: self.tlb_stall + rhs.tlb_stall,
        }
    }
}

/// Complete description of a simulated machine.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct MachineConfig {
    /// Human-readable name ("Xeon (Clovertown)", ...).
    pub name: String,
    /// Core clock in GHz (used only to convert cycles/tx to tx/sec).
    pub freq_ghz: f64,
    /// Number of cores.
    pub cores: u32,
    /// Hardware threads per core (1 on Xeon, 4 on Niagara).
    pub threads_per_core: u32,
    /// Per-core L1 instruction cache.
    pub l1i: CacheConfig,
    /// Per-core L1 data cache (shared by the core's hardware threads).
    pub l1d: CacheConfig,
    /// L2 cache geometry (one instance per sharing group).
    pub l2: CacheConfig,
    /// How many cores share one L2 instance (2 on Clovertown, 8 on T1).
    pub cores_per_l2: u32,
    /// Data-TLB geometry (per core).
    pub dtlb: TlbConfig,
    /// Stream prefetcher, if the machine has one.
    pub prefetch: Option<PrefetchConfig>,
    /// Shared memory bus.
    pub bus: BusConfig,
    /// Event→cycle cost parameters.
    pub cost: CostParams,
    /// Whether the OS hands out large pages without application changes
    /// (Solaris on Niagara: yes; RHEL 5 on Xeon: no — the paper disables
    /// the large-page optimization there for fairness).
    pub os_large_pages: bool,
}

impl MachineConfig {
    /// The paper's Xeon platform: 2 × quad-core E5320 "Clovertown",
    /// 1.86 GHz, 8 GB RAM, Linux, no large pages in the default runs.
    pub fn xeon_clovertown() -> Self {
        MachineConfig {
            name: "Xeon (Clovertown)".to_string(),
            freq_ghz: 1.86,
            cores: 8,
            threads_per_core: 1,
            l1i: CacheConfig::new(32 * 1024, 64, 8),
            l1d: CacheConfig::new(32 * 1024, 64, 8),
            l2: CacheConfig::new_hashed(4 * 1024 * 1024, 64, 16),
            cores_per_l2: 2,
            dtlb: TlbConfig {
                base_entries: 256,
                large_entries: 32,
            },
            prefetch: Some(PrefetchConfig {
                streams: 16,
                degree: 2,
                line_bytes: 64,
            }),
            bus: BusConfig {
                bytes_per_cycle: 4.0,
                base_latency: 200.0,
                queue_alpha: 0.8,
                max_factor: 8.0,
            },
            cost: CostParams {
                cpi_base: 0.75,
                l2_hit_latency: 14.0,
                tlb_miss_penalty: 30.0,
                ooo_overlap: 0.35,
                prefetch_degrade: 0.6,
            },
            os_large_pages: false,
        }
    }

    /// The paper's Niagara platform: one 8-core UltraSPARC T1 at 1.2 GHz,
    /// 4 hardware threads per core, 16 GB RAM, Solaris 10, 4 MB pages for
    /// the heap.
    pub fn niagara_t1() -> Self {
        MachineConfig {
            name: "Niagara (UltraSPARC T1)".to_string(),
            freq_ghz: 1.2,
            cores: 8,
            threads_per_core: 4,
            l1i: CacheConfig::new(16 * 1024, 64, 4),
            l1d: CacheConfig::new(8 * 1024, 64, 4),
            l2: CacheConfig::new_hashed(3 * 1024 * 1024, 64, 12),
            cores_per_l2: 8,
            dtlb: TlbConfig {
                base_entries: 64,
                large_entries: 64,
            },
            prefetch: None,
            bus: BusConfig {
                bytes_per_cycle: 12.0,
                base_latency: 120.0,
                queue_alpha: 0.8,
                max_factor: 8.0,
            },
            cost: CostParams {
                cpi_base: 1.25,
                l2_hit_latency: 22.0,
                tlb_miss_penalty: 150.0,
                ooo_overlap: 0.0,
                prefetch_degrade: 0.6,
            },
            os_large_pages: true,
        }
    }

    /// Total hardware contexts (cores × threads per core).
    pub fn contexts(&self) -> u32 {
        self.cores * self.threads_per_core
    }

    /// Number of distinct L2 instances.
    pub fn l2_instances(&self) -> u32 {
        self.cores.div_ceil(self.cores_per_l2)
    }

    /// Converts a slice of counted events to cycles, given the current bus
    /// latency multiplier `mem_latency_factor` (≥ 1, from
    /// [`BusConfig::latency_factor`]).
    pub fn cycles(&self, ev: &EventCounts, mem_latency_factor: f64) -> Cycles {
        let c = &self.cost;
        let exposed = 1.0 - c.ooo_overlap;
        let mem_latency = self.bus.base_latency * mem_latency_factor;

        // Prefetch-covered accesses are L2 hits at low utilization but give
        // back part of the saved latency once the bus is contended (the
        // prefetcher can no longer run far enough ahead).
        let covered_extra = c.prefetch_degrade
            * (mem_latency_factor - 1.0).max(0.0)
            * self.bus.base_latency
            * ev.prefetch_covered as f64;

        Cycles {
            compute: ev.instructions as f64 * c.cpi_base,
            l2_hit_stall: ev.l2_hits as f64 * c.l2_hit_latency * exposed,
            memory_stall: (ev.l2_misses as f64 * mem_latency + covered_extra) * exposed,
            tlb_stall: ev.dtlb_misses as f64 * c.tlb_miss_penalty,
        }
    }

    /// Returns a copy with the prefetcher removed (the paper's
    /// "disabling the prefetcher" experiment).
    pub fn without_prefetcher(mut self) -> Self {
        self.prefetch = None;
        self
    }

    /// Returns a builder pre-seeded from this config, for custom machines.
    pub fn to_builder(&self) -> MachineBuilder {
        MachineBuilder {
            config: self.clone(),
        }
    }
}

/// Builder for custom [`MachineConfig`]s.
///
/// # Examples
///
/// ```
/// use webmm_sim::MachineConfig;
/// let big = MachineConfig::xeon_clovertown()
///     .to_builder()
///     .name("16-core Xeon-like")
///     .cores(16)
///     .bus_bytes_per_cycle(8.0)
///     .build();
/// assert_eq!(big.contexts(), 16);
/// ```
#[derive(Clone, Debug)]
pub struct MachineBuilder {
    config: MachineConfig,
}

impl MachineBuilder {
    /// Sets the display name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.config.name = name.into();
        self
    }

    /// Sets the core count.
    pub fn cores(mut self, cores: u32) -> Self {
        self.config.cores = cores;
        self
    }

    /// Sets hardware threads per core.
    pub fn threads_per_core(mut self, t: u32) -> Self {
        self.config.threads_per_core = t;
        self
    }

    /// Sets the L2 geometry.
    pub fn l2(mut self, l2: CacheConfig) -> Self {
        self.config.l2 = l2;
        self
    }

    /// Sets how many cores share one L2.
    pub fn cores_per_l2(mut self, n: u32) -> Self {
        self.config.cores_per_l2 = n;
        self
    }

    /// Sets the bus bandwidth in bytes per cycle.
    pub fn bus_bytes_per_cycle(mut self, b: f64) -> Self {
        self.config.bus.bytes_per_cycle = b;
        self
    }

    /// Enables or disables the stream prefetcher.
    pub fn prefetch(mut self, p: Option<PrefetchConfig>) -> Self {
        self.config.prefetch = p;
        self
    }

    /// Sets the D-TLB geometry.
    pub fn dtlb(mut self, t: TlbConfig) -> Self {
        self.config.dtlb = t;
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or not covered by whole L2 sharing groups.
    pub fn build(self) -> MachineConfig {
        assert!(self.config.cores > 0, "machine must have at least one core");
        assert!(
            self.config.threads_per_core > 0,
            "need at least one thread per core"
        );
        assert!(self.config.cores_per_l2 > 0, "cores_per_l2 must be nonzero");
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_hardware() {
        let x = MachineConfig::xeon_clovertown();
        assert_eq!(x.cores, 8);
        assert_eq!(x.threads_per_core, 1);
        assert_eq!(x.contexts(), 8);
        assert_eq!(x.l2_instances(), 4); // 4 MB per core pair
        assert!(x.prefetch.is_some());

        let n = MachineConfig::niagara_t1();
        assert_eq!(n.contexts(), 32); // 8 cores x 4 threads
        assert_eq!(n.l2_instances(), 1); // one 3 MB L2
        assert!(n.prefetch.is_none());
        // Niagara has more bandwidth headroom per unit of compute.
        let x_ratio = x.bus.bytes_per_cycle / (1.0 / x.cost.cpi_base);
        let n_ratio = n.bus.bytes_per_cycle / (1.0 / n.cost.cpi_base);
        assert!(n_ratio > 2.0 * x_ratio);
    }

    #[test]
    fn cycles_scale_with_latency_factor() {
        let x = MachineConfig::xeon_clovertown();
        let ev = EventCounts {
            instructions: 1000,
            l2_misses: 10,
            ..Default::default()
        };
        let idle = x.cycles(&ev, 1.0);
        let busy = x.cycles(&ev, 4.0);
        assert!(busy.memory_stall > 3.9 * idle.memory_stall);
        assert!((busy.compute - idle.compute).abs() < 1e-9);
    }

    #[test]
    fn covered_prefetches_cost_little_when_idle() {
        let x = MachineConfig::xeon_clovertown();
        let ev = EventCounts {
            l2_hits: 5,
            prefetch_covered: 5,
            ..Default::default()
        };
        let idle = x.cycles(&ev, 1.0);
        // At factor 1.0 a covered miss costs only the L2 hit latency.
        assert!((idle.memory_stall - 0.0).abs() < 1e-9);
        let busy = x.cycles(&ev, 3.0);
        assert!(
            busy.memory_stall > 0.0,
            "contention degrades prefetch coverage"
        );
    }

    #[test]
    fn builder_roundtrip() {
        let m = MachineConfig::niagara_t1()
            .to_builder()
            .name("fat-niagara")
            .cores(16)
            .cores_per_l2(16)
            .build();
        assert_eq!(m.name, "fat-niagara");
        assert_eq!(m.l2_instances(), 1);
        assert_eq!(m.contexts(), 64);
    }

    #[test]
    fn without_prefetcher() {
        let m = MachineConfig::xeon_clovertown().without_prefetcher();
        assert!(m.prefetch.is_none());
    }

    #[test]
    fn cycles_total_is_sum() {
        let x = MachineConfig::xeon_clovertown();
        let ev = EventCounts {
            instructions: 100,
            l2_hits: 3,
            l2_misses: 2,
            dtlb_misses: 1,
            ..Default::default()
        };
        let c = x.cycles(&ev, 1.0);
        let expected = c.compute + c.l2_hit_stall + c.memory_stall + c.tlb_stall;
        assert!((c.total() - expected).abs() < 1e-9);
        assert!(c.total() > 0.0);
    }
}
