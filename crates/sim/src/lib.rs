//! # webmm-sim: the machine substrate
//!
//! Execution-driven simulator of the two multicore platforms used in
//! *"A Study of Memory Management for Web-based Applications on Multicore
//! Processors"* (Inoue, Komatsu, Nakatani — PLDI 2009): an 8-core Intel
//! Xeon E5320 ("Clovertown") and an 8-core, 32-thread Sun UltraSPARC T1
//! ("Niagara").
//!
//! The simulator provides everything the paper measured with real hardware
//! and OProfile:
//!
//! * a sparse simulated address space with real backing bytes
//!   ([`SimMemory`]), so allocators keep their metadata *in* simulated RAM;
//! * set-associative L1I/L1D caches per core, a shared L2 per sharing
//!   group, and a split D-TLB with 4 KB and 4 MB pages
//!   ([`Cache`], [`Tlb`], [`MemHierarchy`]);
//! * an L2 stream prefetcher on Xeon ([`StreamPrefetcher`]) — the component
//!   the paper blames for the region allocator's bus-transaction blow-up;
//! * a shared-bus bandwidth/queueing model ([`BusConfig`]) — the multicore
//!   bottleneck at the heart of the paper; and
//! * per-context hardware counters split by cost category
//!   ([`EventCounts`], [`Category`]), mirroring the paper's
//!   memory-management vs. rest-of-program CPU breakdowns.
//!
//! Allocators and workloads interact with all of this through one trait,
//! [`MemoryPort`].
//!
//! ## Example
//!
//! ```
//! use webmm_sim::{
//!     Category, ContextPort, MachineConfig, MemHierarchy, MemoryPort, PageSize, ProcessMem,
//! };
//!
//! let machine = MachineConfig::xeon_clovertown();
//! let mut hier = MemHierarchy::new(&machine);
//! let mut proc = ProcessMem::new(1 << 40);
//! let mut port = ContextPort::new(&mut proc, &mut hier, 0);
//!
//! port.set_category(Category::MemoryManagement);
//! let heap = port.os_alloc(1 << 20, 4096, PageSize::Base);
//! port.store_u64(heap, 0x2a);
//! assert_eq!(port.load_u64(heap), 0x2a);
//! drop(port);
//!
//! let counts = hier.counters(0).mm;
//! assert_eq!(counts.stores, 1);
//! let cycles = machine.cycles(&counts, 1.0);
//! assert!(cycles.total() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod addr;
mod bus;
mod cache;
mod code;
mod counters;
mod hierarchy;
mod machine;
mod mem;
mod port;
mod prefetch;
mod tlb;

pub use addr::{Addr, NULL_ADDR};
pub use bus::BusConfig;
pub use cache::{AccessResult, Cache, CacheConfig};
pub use code::{CodeRegionId, CodeSpec, CodeState};
pub use counters::{CategorizedCounts, Category, EventCounts};
pub use hierarchy::{AccessKind, MemHierarchy};
pub use machine::{CostParams, Cycles, MachineBuilder, MachineConfig};
pub use mem::SimMemory;
pub use port::{ContextPort, MemoryPort, PlainPort, ProcessMem};
pub use prefetch::{PrefetchConfig, StreamPrefetcher};
pub use tlb::{PageSize, Tlb, TlbConfig, BASE_PAGE, LARGE_PAGE};
