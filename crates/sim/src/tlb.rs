//! Data-TLB model with support for base (4 KB) and large (4 MB) pages.
//!
//! The paper's DDmalloc "uses large page memory for the heap to reduce the
//! overhead of TLB handling", an optimization enabled on Niagara (Solaris)
//! and studied as an ablation on Xeon. We model a split TLB — a set of
//! entries for base pages and a (typically smaller) set for large pages —
//! with full associativity and LRU replacement, which is accurate enough to
//! reproduce the >60% D-TLB miss reduction the paper reports.

use crate::addr::Addr;
use serde::Serialize;

/// Base page size (4 KB), the granularity of ordinary mappings.
pub const BASE_PAGE: u64 = 4 * 1024;
/// Large page size (4 MB), used by the large-page heap optimization.
pub const LARGE_PAGE: u64 = 4 * 1024 * 1024;

/// Which page size a mapping uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize)]
pub enum PageSize {
    /// 4 KB pages.
    Base,
    /// 4 MB pages.
    Large,
}

impl PageSize {
    /// Page size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::Base => BASE_PAGE,
            PageSize::Large => LARGE_PAGE,
        }
    }
}

/// TLB geometry.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize)]
pub struct TlbConfig {
    /// Entries available for 4 KB pages.
    pub base_entries: u32,
    /// Entries available for 4 MB pages.
    pub large_entries: u32,
}

/// A split, fully-associative, LRU data-TLB.
///
/// # Examples
///
/// ```
/// use webmm_sim::{Addr, PageSize, Tlb, TlbConfig};
/// let mut tlb = Tlb::new(TlbConfig { base_entries: 2, large_entries: 1 });
/// assert!(!tlb.access(Addr::new(0x1000), PageSize::Base)); // cold miss
/// assert!(tlb.access(Addr::new(0x1fff), PageSize::Base));  // same page
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    base: LruArray,
    large: LruArray,
    misses: u64,
    hits: u64,
}

#[derive(Clone, Debug)]
struct LruArray {
    /// (virtual page number, lru stamp)
    entries: Vec<(u64, u64)>,
    capacity: usize,
    clock: u64,
}

impl LruArray {
    fn new(capacity: usize) -> Self {
        LruArray {
            entries: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
        }
    }

    /// Returns true on hit; installs the entry on miss.
    fn access(&mut self, vpn: u64) -> bool {
        self.clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == vpn) {
            e.1 = self.clock;
            return true;
        }
        if self.capacity == 0 {
            return false; // no entries of this kind: every access misses
        }
        if self.entries.len() < self.capacity {
            self.entries.push((vpn, self.clock));
        } else if let Some(victim) = self.entries.iter_mut().min_by_key(|e| e.1) {
            *victim = (vpn, self.clock);
        }
        false
    }

    fn flush(&mut self) {
        self.entries.clear();
    }
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(config: TlbConfig) -> Self {
        Tlb {
            config,
            base: LruArray::new(config.base_entries as usize),
            large: LruArray::new(config.large_entries as usize),
            misses: 0,
            hits: 0,
        }
    }

    /// The TLB geometry.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Translates a data access to `addr` on a page of size `page`.
    /// Returns `true` on a TLB hit; on a miss the translation is installed.
    pub fn access(&mut self, addr: Addr, page: PageSize) -> bool {
        let hit = match page {
            PageSize::Base => self.base.access(addr.raw() / BASE_PAGE),
            PageSize::Large => self.large.access(addr.raw() / LARGE_PAGE),
        };
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Drops all translations (e.g. process restart / context switch).
    pub fn flush(&mut self) {
        self.base.flush();
        self.large.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_sizes() {
        assert_eq!(PageSize::Base.bytes(), 4096);
        assert_eq!(PageSize::Large.bytes(), 4 << 20);
    }

    #[test]
    fn base_hit_within_page_miss_across() {
        let mut t = Tlb::new(TlbConfig {
            base_entries: 4,
            large_entries: 0,
        });
        assert!(!t.access(Addr::new(0), PageSize::Base));
        assert!(t.access(Addr::new(4095), PageSize::Base));
        assert!(!t.access(Addr::new(4096), PageSize::Base));
        assert_eq!(t.misses(), 2);
        assert_eq!(t.hits(), 1);
    }

    #[test]
    fn lru_replacement() {
        let mut t = Tlb::new(TlbConfig {
            base_entries: 2,
            large_entries: 0,
        });
        t.access(Addr::new(0x0000), PageSize::Base); // page 0
        t.access(Addr::new(0x1000), PageSize::Base); // page 1
        t.access(Addr::new(0x0000), PageSize::Base); // page 0 → MRU
        t.access(Addr::new(0x2000), PageSize::Base); // evicts page 1
        assert!(t.access(Addr::new(0x0000), PageSize::Base)); // still resident
        assert!(!t.access(Addr::new(0x1000), PageSize::Base)); // evicted
    }

    #[test]
    fn large_pages_cover_more() {
        let mut t = Tlb::new(TlbConfig {
            base_entries: 64,
            large_entries: 8,
        });
        // 16 MB touched with large pages: 4 entries, all but first hit/page.
        let mut misses = 0;
        for i in 0..(16u64 << 20) / 4096 {
            if !t.access(Addr::new(i * 4096), PageSize::Large) {
                misses += 1;
            }
        }
        assert_eq!(misses, 4); // 16 MB / 4 MB pages
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut t = Tlb::new(TlbConfig {
            base_entries: 0,
            large_entries: 0,
        });
        assert!(!t.access(Addr::new(0), PageSize::Base));
        assert!(!t.access(Addr::new(0), PageSize::Base));
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn flush_forgets_everything() {
        let mut t = Tlb::new(TlbConfig {
            base_entries: 4,
            large_entries: 4,
        });
        t.access(Addr::new(0), PageSize::Base);
        t.flush();
        assert!(!t.access(Addr::new(0), PageSize::Base));
    }
}
