//! The assembled memory hierarchy of one simulated machine.
//!
//! [`MemHierarchy`] owns every cache array of the machine — per-core L1I,
//! L1D and D-TLB, and one L2 (plus optional stream prefetcher) per sharing
//! group — and routes each access from a *hardware context* through them,
//! attributing the resulting events to that context's counters under the
//! current cost [`Category`].
//!
//! Contexts are numbered `0 .. cores * threads_per_core` and grouped per
//! core (`core = ctx / threads_per_core`), so "run on the first k cores"
//! means "use contexts `0 .. k * threads_per_core`" — matching how the
//! paper scales its core-count experiments on both platforms.

use crate::addr::Addr;
use crate::cache::Cache;
use crate::counters::{CategorizedCounts, Category};
use crate::machine::MachineConfig;
use crate::prefetch::StreamPrefetcher;
use crate::tlb::{PageSize, Tlb};

/// Kind of memory access routed through the hierarchy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Data read.
    Load,
    /// Data write.
    Store,
    /// Instruction fetch (one cache line).
    IFetch,
}

#[derive(Debug)]
struct CoreState {
    l1i: Cache,
    l1d: Cache,
    dtlb: Tlb,
}

#[derive(Debug)]
struct L2State {
    cache: Cache,
    prefetcher: Option<StreamPrefetcher>,
}

/// All cache state of one machine, plus per-context event counters.
#[derive(Debug)]
pub struct MemHierarchy {
    config: MachineConfig,
    cores: Vec<CoreState>,
    l2s: Vec<L2State>,
    counters: Vec<CategorizedCounts>,
    line_bytes: u64,
}

impl MemHierarchy {
    /// Builds cold caches for `config`.
    pub fn new(config: &MachineConfig) -> Self {
        let cores = (0..config.cores)
            .map(|_| CoreState {
                l1i: Cache::new(config.l1i),
                l1d: Cache::new(config.l1d),
                dtlb: Tlb::new(config.dtlb),
            })
            .collect();
        let l2s = (0..config.l2_instances())
            .map(|_| L2State {
                cache: Cache::new(config.l2),
                prefetcher: config.prefetch.map(StreamPrefetcher::new),
            })
            .collect();
        MemHierarchy {
            cores,
            l2s,
            counters: vec![CategorizedCounts::new(); config.contexts() as usize],
            line_bytes: config.l2.line_bytes,
            config: config.clone(),
        }
    }

    /// The machine this hierarchy was built for.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Core index serving hardware context `ctx`.
    #[inline]
    pub fn core_of(&self, ctx: usize) -> usize {
        ctx / self.config.threads_per_core as usize
    }

    /// L2 sharing-group index for a core.
    #[inline]
    pub fn l2_of(&self, core: usize) -> usize {
        core / self.config.cores_per_l2 as usize
    }

    /// Event counters accumulated by context `ctx`.
    pub fn counters(&self, ctx: usize) -> &CategorizedCounts {
        &self.counters[ctx]
    }

    /// Zeroes the counters of every context (cache state is kept, so a
    /// measurement window can start warm).
    pub fn reset_counters(&mut self) {
        for c in &mut self.counters {
            *c = CategorizedCounts::new();
        }
    }

    /// Adds `n` executed instructions to `ctx` under `cat`.
    #[inline]
    pub fn add_instructions(&mut self, ctx: usize, cat: Category, n: u64) {
        self.counters[ctx].get_mut(cat).instructions += n;
    }

    /// Routes one access through TLB (data only), L1 and L2, updating the
    /// counters of `ctx` under `cat`. `page` is the page size backing the
    /// accessed address.
    pub fn access(
        &mut self,
        ctx: usize,
        addr: Addr,
        kind: AccessKind,
        page: PageSize,
        cat: Category,
    ) {
        let core = self.core_of(ctx);
        let l2_idx = self.l2_of(core);
        let ev = self.counters[ctx].get_mut(cat);

        // 1. TLB (data accesses only; instruction translations are assumed
        //    covered — the paper's TLB story is entirely about data).
        match kind {
            AccessKind::Load => {
                ev.loads += 1;
                ev.instructions += 1;
                if !self.cores[core].dtlb.access(addr, page) {
                    self.counters[ctx].get_mut(cat).dtlb_misses += 1;
                }
            }
            AccessKind::Store => {
                ev.stores += 1;
                ev.instructions += 1;
                if !self.cores[core].dtlb.access(addr, page) {
                    self.counters[ctx].get_mut(cat).dtlb_misses += 1;
                }
            }
            AccessKind::IFetch => {
                ev.ifetch_lines += 1;
            }
        }

        // 2. L1.
        let write = kind == AccessKind::Store;
        let l1_result = match kind {
            AccessKind::IFetch => self.cores[core].l1i.access(addr, false),
            _ => self.cores[core].l1d.access(addr, write),
        };
        if l1_result.hit {
            return;
        }
        {
            let ev = self.counters[ctx].get_mut(cat);
            match kind {
                AccessKind::IFetch => ev.l1i_misses += 1,
                _ => ev.l1d_misses += 1,
            }
        }

        // An L1 dirty victim is written back into the L2 (no bus traffic if
        // resident there; otherwise it goes straight to memory).
        if let Some(victim) = l1_result.evicted_dirty {
            if !self.l2s[l2_idx].cache.mark_dirty(victim) {
                let ev = self.counters[ctx].get_mut(cat);
                ev.writebacks += 1;
                ev.bus_txns += 1;
                ev.bus_bytes += self.line_bytes;
            }
        }

        // 3. L2 (fill is a read; dirtiness arrives later via L1 writeback).
        let l2_result = self.l2s[l2_idx].cache.access(addr, false);
        {
            let ev = self.counters[ctx].get_mut(cat);
            if l2_result.hit {
                ev.l2_hits += 1;
                if l2_result.prefetch_covered {
                    ev.prefetch_covered += 1;
                }
            } else {
                ev.l2_misses += 1;
                ev.bus_txns += 1;
                ev.bus_bytes += self.line_bytes;
                if std::env::var_os("WEBMM_MISS_LOG").is_some() && ctx == 0 {
                    eprintln!("MISS {:x} {:?} {:?}", addr.raw(), kind, cat);
                }
            }
        }
        if l2_result.evicted_dirty.is_some() {
            let ev = self.counters[ctx].get_mut(cat);
            ev.writebacks += 1;
            ev.bus_txns += 1;
            ev.bus_bytes += self.line_bytes;
        }

        // 4. Prefetcher observes the demand stream at L2.
        let fills: Vec<Addr> = match self.l2s[l2_idx].prefetcher.as_mut() {
            Some(pf) => pf.on_access(addr, !l2_result.hit),
            None => Vec::new(),
        };
        for fill_addr in fills {
            let (evicted, installed) = self.l2s[l2_idx].cache.prefetch_fill(fill_addr);
            let ev = self.counters[ctx].get_mut(cat);
            if installed {
                ev.prefetches += 1;
                ev.bus_txns += 1;
                ev.bus_bytes += self.line_bytes;
            }
            if evicted.is_some() {
                ev.writebacks += 1;
                ev.bus_txns += 1;
                ev.bus_bytes += self.line_bytes;
            }
        }
    }

    /// Flushes the private state (L1s + TLB) of the core serving `ctx`,
    /// as happens when its process is restarted. Shared L2 contents are
    /// left behind as dead lines, exactly like on real hardware.
    pub fn flush_core(&mut self, ctx: usize) {
        let core = self.core_of(ctx);
        self.cores[core].l1i.flush();
        self.cores[core].l1d.flush();
        self.cores[core].dtlb.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    fn xeon_hier() -> MemHierarchy {
        MemHierarchy::new(&MachineConfig::xeon_clovertown())
    }

    #[test]
    fn context_to_core_mapping() {
        let h = xeon_hier();
        assert_eq!(h.core_of(0), 0);
        assert_eq!(h.core_of(7), 7);
        assert_eq!(h.l2_of(0), 0);
        assert_eq!(h.l2_of(1), 0);
        assert_eq!(h.l2_of(2), 1);

        let n = MemHierarchy::new(&MachineConfig::niagara_t1());
        assert_eq!(n.core_of(0), 0);
        assert_eq!(n.core_of(3), 0);
        assert_eq!(n.core_of(4), 1);
        assert_eq!(n.l2_of(7), 0); // single shared L2
    }

    #[test]
    fn load_counts_and_misses() {
        let mut h = xeon_hier();
        let a = Addr::new(0x10_0000);
        h.access(
            0,
            a,
            AccessKind::Load,
            PageSize::Base,
            Category::Application,
        );
        let ev = h.counters(0).get(Category::Application);
        assert_eq!(ev.loads, 1);
        assert_eq!(ev.l1d_misses, 1);
        assert_eq!(ev.l2_misses, 1);
        assert_eq!(ev.dtlb_misses, 1);
        assert_eq!(ev.bus_txns, 1);

        // Second access to the same line: all hits.
        h.access(
            0,
            a + 8,
            AccessKind::Load,
            PageSize::Base,
            Category::Application,
        );
        let ev = h.counters(0).get(Category::Application);
        assert_eq!(ev.loads, 2);
        assert_eq!(ev.l1d_misses, 1);
        assert_eq!(ev.dtlb_misses, 1);
    }

    #[test]
    fn l2_shared_between_core_pair() {
        let mut h = xeon_hier();
        let a = Addr::new(0x20_0000);
        // Core 0 brings the line into the pair's shared L2.
        h.access(
            0,
            a,
            AccessKind::Load,
            PageSize::Base,
            Category::Application,
        );
        // Core 1 misses its own L1 but hits the shared L2.
        h.access(
            1,
            a,
            AccessKind::Load,
            PageSize::Base,
            Category::Application,
        );
        let ev1 = h.counters(1).get(Category::Application);
        assert_eq!(ev1.l1d_misses, 1);
        assert_eq!(ev1.l2_hits, 1);
        assert_eq!(ev1.l2_misses, 0);
        // Core 2 is in a different sharing group: must go to memory.
        h.access(
            2,
            a,
            AccessKind::Load,
            PageSize::Base,
            Category::Application,
        );
        let ev2 = h.counters(2).get(Category::Application);
        assert_eq!(ev2.l2_misses, 1);
    }

    #[test]
    fn sequential_stream_generates_prefetch_traffic() {
        let mut h = xeon_hier();
        // Stream through 64 lines; prefetcher should add extra bus txns
        // beyond the demand misses, and later accesses should be covered.
        for i in 0..64u64 {
            h.access(
                0,
                Addr::new(0x40_0000 + i * 64),
                AccessKind::Store,
                PageSize::Base,
                Category::Application,
            );
        }
        let ev = h.counters(0).get(Category::Application);
        assert!(ev.prefetches > 0, "prefetcher must fire on a pure stream");
        assert!(ev.prefetch_covered > 0, "later stream accesses are covered");
        assert!(ev.bus_txns >= ev.l2_misses + ev.prefetches);
        // Niagara: identical stream, no prefetch traffic.
        let mut n = MemHierarchy::new(&MachineConfig::niagara_t1());
        for i in 0..64u64 {
            n.access(
                0,
                Addr::new(0x40_0000 + i * 64),
                AccessKind::Store,
                PageSize::Base,
                Category::Application,
            );
        }
        assert_eq!(n.counters(0).get(Category::Application).prefetches, 0);
    }

    #[test]
    fn dirty_data_produces_writebacks_under_pressure() {
        let mut h = MemHierarchy::new(
            &MachineConfig::xeon_clovertown()
                .to_builder()
                .l2(crate::cache::CacheConfig::new(64 * 1024, 64, 4))
                .build(),
        );
        // Write far more data than L2 holds; evictions must write back.
        for i in 0..8192u64 {
            h.access(
                0,
                Addr::new(0x100_0000 + i * 64),
                AccessKind::Store,
                PageSize::Base,
                Category::Application,
            );
        }
        let ev = h.counters(0).get(Category::Application);
        assert!(ev.writebacks > 0, "dirty lines must be written back");
        assert!(
            ev.bus_bytes > 8192 * 64,
            "fills + writebacks exceed footprint"
        );
    }

    #[test]
    fn ifetch_uses_l1i_and_no_tlb() {
        let mut h = xeon_hier();
        h.access(
            0,
            Addr::new(0x50_0000),
            AccessKind::IFetch,
            PageSize::Base,
            Category::Application,
        );
        let ev = h.counters(0).get(Category::Application);
        assert_eq!(ev.ifetch_lines, 1);
        assert_eq!(ev.l1i_misses, 1);
        assert_eq!(ev.dtlb_misses, 0);
        assert_eq!(ev.loads, 0);
    }

    #[test]
    fn instructions_attributed_to_category() {
        let mut h = xeon_hier();
        h.add_instructions(0, Category::MemoryManagement, 50);
        h.add_instructions(0, Category::Application, 7);
        assert_eq!(h.counters(0).mm.instructions, 50);
        assert_eq!(h.counters(0).app.instructions, 7);
    }

    #[test]
    fn flush_core_cools_private_caches_only() {
        let mut h = xeon_hier();
        let a = Addr::new(0x60_0000);
        h.access(
            0,
            a,
            AccessKind::Load,
            PageSize::Base,
            Category::Application,
        );
        h.reset_counters();
        h.flush_core(0);
        h.access(
            0,
            a,
            AccessKind::Load,
            PageSize::Base,
            Category::Application,
        );
        let ev = h.counters(0).get(Category::Application);
        assert_eq!(ev.l1d_misses, 1, "L1 was flushed");
        assert_eq!(ev.l2_hits, 1, "shared L2 still warm");
        assert_eq!(ev.dtlb_misses, 1, "TLB was flushed");
    }

    #[test]
    fn reset_counters_zeroes_everything() {
        let mut h = xeon_hier();
        h.access(
            0,
            Addr::new(0x1000),
            AccessKind::Load,
            PageSize::Base,
            Category::MemoryManagement,
        );
        h.reset_counters();
        assert_eq!(
            h.counters(0).total(),
            crate::counters::EventCounts::default()
        );
    }
}
