//! Property-based tests of the cache and TLB models against reference
//! implementations, plus invariants of the hierarchy's bookkeeping.

use proptest::prelude::*;
use std::collections::HashMap;
use webmm_sim::{Addr, Cache, CacheConfig, MachineConfig, MemHierarchy, PageSize, Tlb, TlbConfig};

/// Reference model of a set-associative LRU cache (naive, obviously
/// correct): per set, a vector ordered by recency.
struct RefCache {
    sets: Vec<Vec<u64>>, // line addresses, most recent last
    assoc: usize,
    line: u64,
    mask: u64,
}

impl RefCache {
    fn new(size: u64, line: u64, assoc: u32) -> Self {
        let sets = (size / line / u64::from(assoc)) as usize;
        RefCache {
            sets: vec![Vec::new(); sets],
            assoc: assoc as usize,
            line,
            mask: sets as u64 - 1,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let la = addr / self.line;
        let set = &mut self.sets[(la & self.mask) as usize];
        if let Some(pos) = set.iter().position(|&x| x == la) {
            set.remove(pos);
            set.push(la);
            true
        } else {
            if set.len() == self.assoc {
                set.remove(0); // LRU
            }
            set.push(la);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The cache (plain indexing) agrees with the reference LRU model on
    /// every access of arbitrary address streams.
    #[test]
    fn cache_matches_reference_lru(
        addrs in proptest::collection::vec(0u64..1u64 << 16, 1..400),
        writes in proptest::collection::vec(any::<bool>(), 400),
    ) {
        let mut dut = Cache::new(CacheConfig::new(2048, 64, 4));
        let mut reference = RefCache::new(2048, 64, 4);
        for (i, &a) in addrs.iter().enumerate() {
            let hit = dut.access(Addr::new(a), writes[i % writes.len()]).hit;
            let ref_hit = reference.access(a);
            prop_assert_eq!(hit, ref_hit, "divergence at access {} (addr {:#x})", i, a);
        }
    }

    /// Writebacks are conservative: a dirty eviction is only reported for a
    /// line that was actually written, and the victim differs from the
    /// incoming line.
    #[test]
    fn dirty_evictions_only_for_written_lines(
        ops in proptest::collection::vec((0u64..1u64 << 14, any::<bool>()), 1..300),
    ) {
        let mut c = Cache::new(CacheConfig::new(1024, 64, 2));
        let mut written: HashMap<u64, bool> = HashMap::new();
        for &(a, w) in &ops {
            let r = c.access(Addr::new(a), w);
            let la = a / 64;
            let e = written.entry(la).or_insert(false);
            *e = *e || w;
            if let Some(victim) = r.evicted_dirty {
                let vla = victim.raw() / 64;
                prop_assert_ne!(vla, la, "victim cannot be the incoming line");
                prop_assert!(written.get(&vla).copied().unwrap_or(false),
                    "dirty eviction of a never-written line {:#x}", victim.raw());
                written.insert(vla, false); // written back: clean now
            }
        }
    }

    /// Hashed and plain indexing see exactly the same hits on streams that
    /// fit entirely in the cache (indexing cannot matter without evictions).
    #[test]
    fn hashing_is_invisible_without_pressure(
        addrs in proptest::collection::vec(0u64..(16u64 * 64), 1..200),
    ) {
        // 16 distinct lines at most; 64 lines of capacity.
        let mut plain = Cache::new(CacheConfig::new(4096, 64, 64)); // fully assoc
        let mut hashed = Cache::new(CacheConfig::new_hashed(4096, 64, 64));
        for &a in &addrs {
            let ph = plain.access(Addr::new(a), false).hit;
            let hh = hashed.access(Addr::new(a), false).hit;
            prop_assert_eq!(ph, hh);
        }
    }

    /// TLB hit/miss agrees with a reference LRU over page numbers.
    #[test]
    fn tlb_matches_reference(pages in proptest::collection::vec(0u64..64, 1..300)) {
        let mut dut = Tlb::new(TlbConfig { base_entries: 8, large_entries: 0 });
        let mut reference: Vec<u64> = Vec::new();
        for &p in &pages {
            let hit = dut.access(Addr::new(p * 4096), PageSize::Base);
            let ref_hit = if let Some(pos) = reference.iter().position(|&x| x == p) {
                reference.remove(pos);
                reference.push(p);
                true
            } else {
                if reference.len() == 8 {
                    reference.remove(0);
                }
                reference.push(p);
                false
            };
            prop_assert_eq!(hit, ref_hit);
        }
    }

    /// Hierarchy counter conservation: every data access is exactly one of
    /// {L1 hit, L2 hit, L2 miss} — L1 misses equal L2 hits plus L2 misses
    /// when only data flows through (no ifetch, no prefetcher).
    #[test]
    fn hierarchy_counters_conserve(
        ops in proptest::collection::vec((0u64..1u64 << 18, any::<bool>()), 1..500),
    ) {
        let machine = MachineConfig::niagara_t1(); // no prefetcher
        let mut h = MemHierarchy::new(&machine);
        for &(a, w) in &ops {
            let kind = if w { webmm_sim::AccessKind::Store } else { webmm_sim::AccessKind::Load };
            h.access(0, Addr::new(a), kind, PageSize::Base, webmm_sim::Category::Application);
        }
        let ev = h.counters(0).total();
        prop_assert_eq!(ev.loads + ev.stores, ops.len() as u64);
        prop_assert_eq!(ev.l1d_misses, ev.l2_hits + ev.l2_misses);
        prop_assert_eq!(ev.bus_txns, ev.l2_misses + ev.writebacks);
        prop_assert_eq!(ev.bus_bytes, ev.bus_txns * 64);
    }
}
