//! Shared support for the experiment harnesses in `src/bin`.
//!
//! Every harness regenerates one table or figure of the paper (see
//! `DESIGN.md` for the index). This library provides:
//!
//! * [`BenchOpts`] — common knobs (scale, measurement window) read from
//!   the environment so `cargo bench`/CI can shrink or grow the runs;
//! * [`cached_run`] — a JSON-file cache of [`RunResult`]s keyed by the
//!   full run configuration, so figures sharing runs (5, 6, 8, 9 all use
//!   the same eight-core sweeps) don't recompute them;
//! * [`paper`] — the published numbers (Table 3 and Table 4 are printed
//!   in full in the paper), so every harness can show paper-vs-measured
//!   side by side.

#![warn(missing_docs)]

use std::path::PathBuf;
use webmm_alloc::AllocatorKind;
use webmm_runtime::{run, RunConfig, RunResult};
use webmm_sim::MachineConfig;
use webmm_workload::WorkloadSpec;

pub mod paper;

/// Common harness options.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// Workload scale divisor (power of two; 1 = the paper's full
    /// transaction sizes). Default 16; override with `WEBMM_SCALE`.
    pub scale: u32,
    /// Warm-up transactions per context (`WEBMM_WARMUP`, default 2).
    pub warmup: u64,
    /// Measured transactions per context (`WEBMM_MEASURE`, default 4).
    pub measure: u64,
    /// Skip the result cache (`WEBMM_NO_CACHE=1`).
    pub no_cache: bool,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            scale: 16,
            warmup: 2,
            measure: 4,
            no_cache: false,
        }
    }
}

impl BenchOpts {
    /// Reads options from `WEBMM_*` environment variables.
    pub fn from_env() -> Self {
        fn get<T: std::str::FromStr>(k: &str) -> Option<T> {
            std::env::var(k).ok().and_then(|v| v.parse().ok())
        }
        BenchOpts {
            scale: get("WEBMM_SCALE").unwrap_or(16),
            warmup: get("WEBMM_WARMUP").unwrap_or(2),
            measure: get("WEBMM_MEASURE").unwrap_or(4),
            no_cache: std::env::var("WEBMM_NO_CACHE").is_ok(),
        }
    }

    /// Builds a [`RunConfig`] with these options applied.
    pub fn config(&self, kind: AllocatorKind, workload: WorkloadSpec, cores: u32) -> RunConfig {
        RunConfig::new(kind, workload)
            .scale(self.scale)
            .cores(cores)
            .window(self.warmup, self.measure)
    }
}

fn cache_dir() -> PathBuf {
    let mut p = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    // Walk up to the workspace root (the directory containing `crates/`).
    while !p.join("crates").is_dir() {
        if !p.pop() {
            p = PathBuf::from(".");
            break;
        }
    }
    p.join("target").join("webmm-cache")
}

/// Bump when any allocator/simulator cost constant changes, so stale
/// cached results are never reused across code versions.
const CACHE_VERSION: u32 = 2;

fn cache_key(machine: &MachineConfig, cfg: &RunConfig) -> String {
    format!(
        "v{CACHE_VERSION}_{}pf{}_{}_{}_{}c_s{}_w{}m{}_r{}_{}_dd{}",
        machine.name.replace([' ', '(', ')'], ""),
        machine.prefetch.is_some(),
        cfg.allocator.kind.id(),
        cfg.workload.name.replace([' ', '(', ')', '/'], ""),
        cfg.active_cores,
        cfg.scale,
        cfg.warmup_tx,
        cfg.measure_tx,
        cfg.restart_every
            .map_or("none".to_string(), |n| n.to_string()),
        if cfg.use_free_all { "fa" } else { "nofa" },
        cfg.allocator
            .dd_override
            .as_ref()
            .map_or("default".to_string(), |d| {
                format!(
                    "{}k{:?}lp{}mo{}",
                    d.segment_bytes / 1024,
                    d.mapping,
                    d.large_pages,
                    d.metadata_offset
                )
            }),
    )
}

/// Runs a configuration, consulting the on-disk result cache first.
///
/// The cache key covers the machine, allocator (including DDmalloc
/// overrides), workload, core count, scale, window and restart period;
/// runs are deterministic, so a hit is exact.
pub fn cached_run(machine: &MachineConfig, cfg: &RunConfig, opts: &BenchOpts) -> RunResult {
    let dir = cache_dir();
    let path = dir.join(format!("{}.json", cache_key(machine, cfg)));
    if !opts.no_cache {
        if let Ok(data) = std::fs::read_to_string(&path) {
            if let Ok(result) = serde_json::from_str::<RunResult>(&data) {
                return result;
            }
        }
    }
    let result = run(machine, cfg);
    if !opts.no_cache {
        let _ = std::fs::create_dir_all(&dir);
        if let Ok(json) = serde_json::to_string(&result) {
            let _ = std::fs::write(&path, json);
        }
    }
    result
}

/// Convenience: run `kind` on `workload` with `cores` under `opts`.
pub fn php_run(
    machine: &MachineConfig,
    kind: AllocatorKind,
    workload: WorkloadSpec,
    cores: u32,
    opts: &BenchOpts,
) -> RunResult {
    cached_run(machine, &opts.config(kind, workload, cores), opts)
}

/// The two platforms, in the paper's order.
pub fn both_machines() -> [MachineConfig; 2] {
    [
        MachineConfig::xeon_clovertown(),
        MachineConfig::niagara_t1(),
    ]
}
