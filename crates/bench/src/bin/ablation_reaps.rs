//! Ablation E — Reaps vs DDmalloc: is bulk free enough, or does
//! defrag-dodging matter?
//!
//! §6: "the Reaps also pays cost of the defragmentation activities, which
//! is excessive for short-lived transactions in Web-based applications,
//! like the default allocator of the PHP runtime." Reaps has *exactly*
//! DDmalloc's interface (per-object free + freeAll) but Lea-style
//! internals, so this sweep isolates the paper's core thesis: the win
//! comes from dodging defragmentation, not from the freeAll hook.

use webmm_alloc::AllocatorKind;
use webmm_bench::{php_run, BenchOpts};
use webmm_profiler::breakdown;
use webmm_profiler::report::{heading, table};
use webmm_sim::MachineConfig;
use webmm_workload::php_workloads;

fn main() {
    let opts = BenchOpts::from_env();
    let machine = MachineConfig::xeon_clovertown();
    print!("{}", heading("Ablation: Reaps vs DDmalloc (8 Xeon cores)"));
    let mut rows = vec![vec![
        "workload".to_string(),
        "default tx/s".to_string(),
        "reaps".to_string(),
        "ddmalloc".to_string(),
        "dd vs reaps".to_string(),
        "mm: reaps/dd".to_string(),
    ]];
    for wl in php_workloads() {
        let base = php_run(&machine, AllocatorKind::PhpDefault, wl.clone(), 8, &opts);
        let reaps = php_run(&machine, AllocatorKind::Reaps, wl.clone(), 8, &opts);
        let dd = php_run(&machine, AllocatorKind::DdMalloc, wl.clone(), 8, &opts);
        rows.push(vec![
            wl.name.to_string(),
            format!("{:8.1}", base.throughput.tx_per_sec),
            format!("{:8.1}", reaps.throughput.tx_per_sec),
            format!("{:8.1}", dd.throughput.tx_per_sec),
            format!(
                "{:+.1}%",
                (dd.throughput.tx_per_sec / reaps.throughput.tx_per_sec - 1.0) * 100.0
            ),
            format!(
                "{:.1}x",
                breakdown(&reaps).mm_cycles / breakdown(&dd).mm_cycles
            ),
        ]);
    }
    print!("{}", table(&rows));
    println!("\npaper (§6): Reaps keeps the defragmentation costs despite supporting bulk");
    println!("free, so DDmalloc should beat it roughly like it beats the default allocator.");
}
