//! Developer diagnostic: per-category event breakdown for one run.
//!
//! Usage: `debug_misses [xeon|niagara] [cores] [scale] [workload]`

use webmm_alloc::AllocatorKind;
use webmm_runtime::{run, RunConfig};
use webmm_sim::MachineConfig;
use webmm_workload::by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machine = match args.get(1).map(String::as_str) {
        Some("niagara") => MachineConfig::niagara_t1(),
        _ => MachineConfig::xeon_clovertown(),
    };
    let cores: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let scale: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(32);
    let wl = args
        .get(4)
        .and_then(|n| by_name(n))
        .unwrap_or_else(webmm_workload::phpbb);
    let only = std::env::var("WEBMM_ONLY").ok();
    for kind in AllocatorKind::PHP_STUDY {
        if only.as_deref().is_some_and(|o| o != kind.id()) {
            continue;
        }
        let cfg = RunConfig::new(kind, wl.clone())
            .scale(scale)
            .cores(cores)
            .window(2, 4);
        let r = run(&machine, &cfg);
        println!(
            "{:12} footprint heap {} KB meta {} KB peak_tx {} KB",
            r.allocator_id,
            r.footprint.heap_bytes / 1024,
            r.footprint.metadata_bytes / 1024,
            r.footprint.peak_tx_alloc_bytes / 1024
        );
        let total = r.total_events();
        let n = (r.measured_tx * r.events.len() as u64) as f64;
        for (label, ev) in [("mm ", total.mm), ("app", total.app)] {
            println!(
                "{:12} {label} instr {:>9.0} loads {:>8.0} stores {:>8.0} l1d_m {:>7.0} l2_hit {:>7.0} l2_m {:>7.0} pf_cov {:>6.0} pf {:>6.0} wb {:>6.0} dtlb_m {:>6.0} ifetch_m {:>6.0}",
                r.allocator_id,
                ev.instructions as f64 / n,
                ev.loads as f64 / n,
                ev.stores as f64 / n,
                ev.l1d_misses as f64 / n,
                ev.l2_hits as f64 / n,
                ev.l2_misses as f64 / n,
                ev.prefetch_covered as f64 / n,
                ev.prefetches as f64 / n,
                ev.writebacks as f64 / n,
                ev.dtlb_misses as f64 / n,
                ev.l1i_misses as f64 / n,
            );
        }
    }
}
