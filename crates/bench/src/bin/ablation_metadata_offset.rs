//! Ablation C — DDmalloc's process-id-based metadata placement.
//!
//! §3.3 item 1: "accesses to the metadata may often incur cache misses due
//! to associativity overflows if they are located at the same location in
//! the heaps. We change the position of the metadata in the heaps using
//! the process ids ... The effect of this optimization is significant on
//! Niagara where multiple hardware threads share a small L1 cache."

use webmm_alloc::{AllocatorKind, DdConfig};
use webmm_bench::{cached_run, BenchOpts};
use webmm_profiler::report::{heading, table};
use webmm_runtime::RunConfig;
use webmm_sim::MachineConfig;
use webmm_workload::mediawiki_read;

fn main() {
    let opts = BenchOpts::from_env();
    print!(
        "{}",
        heading("Ablation: DDmalloc metadata placement offset (MediaWiki r/o, 8 cores)")
    );
    let mut rows = vec![vec![
        "machine".to_string(),
        "offset".to_string(),
        "tx/s".to_string(),
        "L1D miss/tx".to_string(),
        "L2 miss/tx".to_string(),
    ]];
    for machine in [
        MachineConfig::xeon_clovertown(),
        MachineConfig::niagara_t1(),
    ] {
        for offset in [true, false] {
            let cfg = RunConfig::new(AllocatorKind::DdMalloc, mediawiki_read())
                .scale(opts.scale)
                .cores(8)
                .window(opts.warmup, opts.measure)
                .dd_config(DdConfig {
                    metadata_offset: offset,
                    large_pages: machine.os_large_pages,
                    ..DdConfig::default()
                });
            let r = cached_run(&machine, &cfg, &opts);
            let n = (r.measured_tx * r.events.len() as u64) as f64;
            let t = r.total_events().total();
            rows.push(vec![
                machine.name.clone(),
                if offset { "pid-strided" } else { "uniform" }.to_string(),
                format!("{:8.1}", r.throughput.tx_per_sec),
                format!("{:7.0}", t.l1d_misses as f64 / n),
                format!("{:6.0}", t.l2_misses as f64 / n),
            ]);
        }
    }
    print!("{}", table(&rows));
    println!("\npaper: pid-based placement matters most on Niagara, where four hardware");
    println!("threads share one small L1D and identical metadata offsets alias.");
}
