//! Figure 6 — breakdown of CPU time per transaction on 8 Xeon cores:
//! memory management versus everything else, normalized to the default
//! allocator (= 100), for every workload and allocator.

use webmm_alloc::AllocatorKind;
use webmm_bench::{php_run, BenchOpts};
use webmm_profiler::breakdown;
use webmm_profiler::report::{heading, table};
use webmm_sim::MachineConfig;
use webmm_workload::php_workloads;

fn main() {
    let opts = BenchOpts::from_env();
    let machine = MachineConfig::xeon_clovertown();
    print!(
        "{}",
        heading("Figure 6: CPU time per transaction, normalized to the default allocator (8 Xeon cores)")
    );
    let mut rows = vec![vec![
        "workload".to_string(),
        "allocator".to_string(),
        "mm".to_string(),
        "others".to_string(),
        "total".to_string(),
        "mm cut".to_string(),
    ]];
    let mut region_cuts = Vec::new();
    let mut dd_cuts = Vec::new();
    for wl in php_workloads() {
        let base = breakdown(&php_run(
            &machine,
            AllocatorKind::PhpDefault,
            wl.clone(),
            8,
            &opts,
        ));
        let norm = base.total() / 100.0;
        for kind in AllocatorKind::PHP_STUDY {
            let b = breakdown(&php_run(&machine, kind, wl.clone(), 8, &opts));
            let cut = 1.0 - b.mm_cycles / base.mm_cycles;
            if kind == AllocatorKind::Region {
                region_cuts.push(cut);
            }
            if kind == AllocatorKind::DdMalloc {
                dd_cuts.push(cut);
            }
            rows.push(vec![
                wl.name.to_string(),
                kind.id().to_string(),
                format!("{:5.1}", b.mm_cycles / norm),
                format!("{:5.1}", b.other_cycles / norm),
                format!("{:5.1}", b.total() / norm),
                if kind == AllocatorKind::PhpDefault {
                    "-".to_string()
                } else {
                    format!("{:.0}%", cut * 100.0)
                },
            ]);
        }
    }
    print!("{}", table(&rows));
    let avg = |v: &[f64]| 100.0 * v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmm-time reduction vs default: region {:.0}% avg (paper: 85%), ddmalloc {:.0}% avg (paper: 56% avg, 65% max)",
        avg(&region_cuts),
        avg(&dd_cuts)
    );
}
