//! Figure 10 — Ruby on Rails throughput with various general-purpose
//! allocators on 8 Xeon cores.
//!
//! §4.4 setup: the Ruby runtime never calls `freeAll`; every allocator —
//! including DDmalloc — relies on per-object free, and processes restart
//! every 500 transactions to clean the heap ("a common practice"). Paper
//! result: DDmalloc beats glibc by 13.6% and the next best (TCmalloc)
//! by 5.3%.

use webmm_alloc::AllocatorKind;
use webmm_bench::{cached_run, paper, BenchOpts};
use webmm_profiler::report::{heading, rel, table};
use webmm_runtime::RunConfig;
use webmm_sim::MachineConfig;
use webmm_workload::rails;

/// Restart period in (scaled) transactions, matching the paper's 500.
const RESTART: u64 = 500;

fn main() {
    let opts = BenchOpts::from_env();
    let machine = MachineConfig::xeon_clovertown();
    print!(
        "{}",
        heading("Figure 10: Ruby on Rails throughput, 8 Xeon cores, restart every 500 tx")
    );
    // Long enough to cross at least one restart per context.
    let measure = opts.measure.max(RESTART / 8);
    let mut rows = vec![vec![
        "allocator".to_string(),
        "tx/s".to_string(),
        "vs glibc".to_string(),
        "(paper)".to_string(),
    ]];
    let mut base = None;
    let mut results = Vec::new();
    for kind in AllocatorKind::RUBY_STUDY {
        let cfg = RunConfig::new(kind, rails())
            .scale(opts.scale)
            .cores(8)
            .window(opts.warmup, measure)
            .restart_every(Some(RESTART))
            .no_free_all();
        let r = cached_run(&machine, &cfg, &opts);
        let tps = r.throughput.tx_per_sec;
        let b = *base.get_or_insert(tps);
        let published = match kind {
            AllocatorKind::Dl => "(+0.0%)".to_string(),
            AllocatorKind::DdMalloc => format!("(+{:.1}%)", paper::FIG10_DD_OVER_GLIBC),
            _ => "-".to_string(),
        };
        rows.push(vec![
            r.allocator.clone(),
            format!("{tps:8.1}"),
            rel(tps, b),
            published,
        ]);
        results.push((kind, tps));
    }
    print!("{}", table(&rows));
    let dd = results
        .iter()
        .find(|(k, _)| *k == AllocatorKind::DdMalloc)
        .expect("dd ran")
        .1;
    let tc = results
        .iter()
        .find(|(k, _)| *k == AllocatorKind::TcMalloc)
        .expect("tc ran")
        .1;
    println!(
        "\nDDmalloc over TCmalloc: {:+.1}% (paper: +{:.1}%)",
        (dd / tc - 1.0) * 100.0,
        paper::FIG10_DD_OVER_TCMALLOC
    );
}
