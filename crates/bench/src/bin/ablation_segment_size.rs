//! Ablation A — DDmalloc segment-size sweep.
//!
//! §3.2: "The size of a segment is another important parameter ... using
//! larger segment size tended to increase memory footprint and cache
//! misses while it reduced the number of instructions to manage each
//! segment. We chose [32 KB] based on such tradeoffs."

use webmm_alloc::{AllocatorKind, ClassMapping, DdConfig};
use webmm_bench::{cached_run, BenchOpts};
use webmm_profiler::report::{bytes, heading, table};
use webmm_runtime::RunConfig;
use webmm_sim::MachineConfig;
use webmm_workload::mediawiki_read;

fn main() {
    let opts = BenchOpts::from_env();
    let machine = MachineConfig::xeon_clovertown();
    print!(
        "{}",
        heading("Ablation: DDmalloc segment size (MediaWiki r/o, 8 Xeon cores)")
    );
    let mut rows = vec![vec![
        "segment".to_string(),
        "tx/s".to_string(),
        "mm instr/tx".to_string(),
        "L2 miss/tx".to_string(),
        "heap".to_string(),
    ]];
    for seg_kb in [8u64, 16, 32, 64, 128] {
        let dd = DdConfig {
            segment_bytes: seg_kb * 1024,
            max_segments: ((512u64 << 20) / (seg_kb * 1024)) as u32,
            mapping: ClassMapping::Paper,
            ..DdConfig::default()
        };
        let cfg = RunConfig::new(AllocatorKind::DdMalloc, mediawiki_read())
            .scale(opts.scale)
            .cores(8)
            .window(opts.warmup, opts.measure)
            .dd_config(dd);
        let r = cached_run(&machine, &cfg, &opts);
        let n = (r.measured_tx * r.events.len() as u64) as f64;
        let t = r.total_events();
        rows.push(vec![
            format!("{seg_kb} KB"),
            format!("{:8.1}", r.throughput.tx_per_sec),
            format!("{:8.0}", t.mm.instructions as f64 / n),
            format!("{:6.0}", t.total().l2_misses as f64 / n),
            bytes(r.footprint.heap_bytes),
        ]);
    }
    print!("{}", table(&rows));
    println!("\npaper: 32 KB chosen — larger segments cost footprint and misses,");
    println!("smaller ones cost per-segment management instructions.");
}
