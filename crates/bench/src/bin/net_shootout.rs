//! Network shootout: the paper's allocators behind a real TCP tier.
//!
//! The same allocator × queue-mode sweep as `native_shootout`, but with
//! an actual network in the loop: a `webmm-net` TCP front-end serves
//! each cell over loopback while the `webmm-net` client drives it from
//! persistent connections, shipping real phpBB op streams through the
//! wire protocol. Comparing a cell here against its `native_shootout`
//! twin isolates the cost of the serving tier itself — framing,
//! syscalls, handler hand-off — from the memory-management behaviour
//! behind the queue, which is identical in both.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p webmm-bench --bin net_shootout -- \
//!     [--workers 4] [--conns 4] [--tx 5000] [--scale 1024] [--seed 42] \
//!     [--policy block|reject|shed-oldest] [--capacity 128] \
//!     [--queue global|sharded|both] [--rate TX_PER_SEC] \
//!     [--out BENCH_net.json] [--trace-out TRACE.jsonl]
//! ```
//!
//! Every cell asserts the cross-tier accounting identity (every wire
//! status reconciles with a queue admission outcome, and
//! `submitted == completed + shed` behind it). With `--rate` the client
//! runs open-loop at that aggregate arrival rate; default is closed
//! loop. `--trace-out` records the exact op stream the clients sent as
//! a JSONL trace: because all connections draw from one deterministic
//! generator, regenerating with the same `(spec, scale, seed)` is
//! byte-identical to what crossed the wire, and `native_shootout
//! --trace-in` replays it through the in-process harness for an
//! apples-to-apples offline comparison.

use std::time::Instant;
use webmm_alloc::AllocatorKind;
use webmm_net::{
    run_client, ClientWorkload, LoadMode, NetClientConfig, NetServer, NetServerConfig,
};
use webmm_profiler::report::{heading, table};
use webmm_server::{AdmissionPolicy, LatencySummary, QueueMode, Server, ServerConfig};
use webmm_workload::{phpbb, trace::write_trace, TxStream};

/// One cell of the sweep, as serialized into `BENCH_net.json`.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct NetBenchEntry {
    allocator: String,
    /// Ingress implementation behind the TCP tier.
    queue: String,
    workers: u64,
    /// Client connections (= server handler threads).
    connections: u64,
    /// Client-observed throughput: responses over client wall-clock.
    tx_per_sec: f64,
    /// Client-observed request→response latency (includes the wire).
    latency: LatencySummary,
    /// Server-observed admission-to-completion latency (excludes it).
    server_latency: LatencySummary,
    accepted: u64,
    shed: u64,
    rejected: u64,
    /// Request-direction bytes over loopback for the whole cell.
    bytes_in: u64,
    bytes_out: u64,
    parallelism: u64,
}

struct Args {
    workers: usize,
    conns: usize,
    tx: u64,
    scale: u32,
    seed: u64,
    policy: AdmissionPolicy,
    capacity: usize,
    queues: Vec<QueueMode>,
    rate: Option<f64>,
    out: String,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: 4,
        conns: 4,
        tx: 5_000,
        scale: 1024,
        seed: 42,
        policy: AdmissionPolicy::Block,
        capacity: 128,
        queues: vec![QueueMode::Global, QueueMode::Sharded],
        rate: None,
        out: "BENCH_net.json".to_string(),
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--workers" => args.workers = value().parse().expect("--workers takes a count"),
            "--conns" => args.conns = value().parse().expect("--conns takes a count"),
            "--tx" => args.tx = value().parse().expect("--tx takes a count"),
            "--scale" => args.scale = value().parse().expect("--scale takes a divisor"),
            "--seed" => args.seed = value().parse().expect("--seed takes a u64"),
            "--capacity" => args.capacity = value().parse().expect("--capacity takes a count"),
            "--rate" => args.rate = Some(value().parse().expect("--rate takes tx/sec")),
            "--policy" => {
                let v = value();
                args.policy = AdmissionPolicy::from_id(&v).unwrap_or_else(|| {
                    eprintln!("unknown policy `{v}` (block|reject|shed-oldest)");
                    std::process::exit(2);
                });
            }
            "--queue" => {
                let v = value();
                args.queues = match v.as_str() {
                    "both" => vec![QueueMode::Global, QueueMode::Sharded],
                    _ => vec![QueueMode::from_id(&v).unwrap_or_else(|| {
                        eprintln!("unknown queue mode `{v}` (global|sharded|both)");
                        std::process::exit(2);
                    })],
                };
            }
            "--out" => args.out = value(),
            "--trace-out" => args.trace_out = Some(value()),
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!(
                    "usage: net_shootout [--workers N] [--conns N] [--tx N] [--scale N] \
                     [--seed N] [--policy block|reject|shed-oldest] [--capacity N] \
                     [--queue global|sharded|both] [--rate TX_PER_SEC] [--out FILE] \
                     [--trace-out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(args.workers > 0 && args.conns > 0, "counts must be nonzero");
    args
}

fn main() {
    let args = parse_args();
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let mode = match args.rate {
        Some(rate) => format!("open loop @ {rate} tx/s"),
        None => "closed loop".to_string(),
    };
    print!(
        "{}",
        heading(&format!(
            "Network shootout: phpBB over loopback TCP, {} tx/cell, scale 1/{}, \
             {} conns, {mode}, policy {}, host parallelism {}",
            args.tx,
            args.scale,
            args.conns,
            args.policy.id(),
            parallelism,
        ))
    );

    // Record what the clients will send: one deterministic stream shared
    // by all connections means the union of sent ops is exactly this
    // trace, whatever the interleaving across sockets.
    if let Some(path) = &args.trace_out {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create --trace-out {path}: {e}");
            std::process::exit(1);
        });
        let mut stream = TxStream::new(phpbb(), args.scale, args.seed);
        write_trace(&mut stream, args.tx, std::io::BufWriter::new(file)).unwrap_or_else(|e| {
            eprintln!("cannot write --trace-out {path}: {e}");
            std::process::exit(1);
        });
        println!("recorded the {}-tx op stream to {path}", args.tx);
        println!("replay it offline with: native_shootout --trace-in {path}\n");
    }

    let mut rows = vec![vec![
        "allocator".to_string(),
        "queue".to_string(),
        "tx/s".to_string(),
        "client p50 us".to_string(),
        "client p99 us".to_string(),
        "server p99 us".to_string(),
        "shed".to_string(),
        "MiB moved".to_string(),
    ]];
    let mut entries = Vec::new();
    for kind in AllocatorKind::PHP_STUDY {
        for &queue_mode in &args.queues {
            let server = Server::start(ServerConfig {
                kind,
                workers: args.workers,
                queue_capacity: args.capacity,
                policy: args.policy,
                queue_mode,
                static_bytes: 2 << 20,
                ..ServerConfig::default()
            });
            let tier = NetServer::bind(
                server,
                "127.0.0.1:0",
                NetServerConfig {
                    // One handler per persistent client connection, or
                    // whole connections would park in the backlog.
                    handlers: args.conns,
                    ..NetServerConfig::default()
                },
            )
            .unwrap_or_else(|e| {
                eprintln!("cannot bind loopback: {e}");
                std::process::exit(1);
            });
            let started = Instant::now();
            let client = run_client(
                tier.local_addr(),
                &ClientWorkload::Stream {
                    spec: phpbb(),
                    scale: args.scale,
                    seed: args.seed,
                },
                &NetClientConfig {
                    connections: args.conns,
                    requests: args.tx,
                    mode: match args.rate {
                        Some(rate_tx_per_sec) => LoadMode::Open { rate_tx_per_sec },
                        None => LoadMode::Closed,
                    },
                    affinity: true,
                    ..NetClientConfig::default()
                },
            );
            let elapsed = started.elapsed();
            let report = tier.finish();
            assert!(
                report.reconciles(),
                "accounting identity broken for {kind} ({}): {report:?}",
                queue_mode.id(),
            );
            assert_eq!(
                client.responses,
                args.tx,
                "loopback cell must answer every request ({kind}, {})",
                queue_mode.id(),
            );
            let tx_per_sec = client.responses as f64 / elapsed.as_secs_f64();
            let moved = (report.net.bytes_in + report.net.bytes_out) as f64 / (1 << 20) as f64;
            rows.push(vec![
                report.server.allocator.clone(),
                report.server.queue_mode.clone(),
                format!("{tx_per_sec:10.1}"),
                format!("{:8.1}", client.latency.p50_ns as f64 / 1e3),
                format!("{:8.1}", client.latency.p99_ns as f64 / 1e3),
                format!("{:8.1}", report.server.latency.p99_ns as f64 / 1e3),
                format!("{}", report.server.shed),
                format!("{moved:7.1}"),
            ]);
            entries.push(NetBenchEntry {
                allocator: report.server.allocator.clone(),
                queue: report.server.queue_mode.clone(),
                workers: report.server.workers,
                connections: args.conns as u64,
                tx_per_sec,
                latency: client.latency,
                server_latency: report.server.latency,
                accepted: client.accepted,
                shed: report.server.shed,
                rejected: client.rejected,
                bytes_in: report.net.bytes_in,
                bytes_out: report.net.bytes_out,
                parallelism,
            });
        }
    }
    print!("{}", table(&rows));

    let json = serde_json::to_string_pretty(&entries).expect("entries serialize");
    std::fs::write(&args.out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    });
    println!("\nwrote {} cells to {}", entries.len(), args.out);
    println!(
        "compare against the in-process baseline: native_shootout --workers {} --tx {}",
        args.workers, args.tx
    );
}
