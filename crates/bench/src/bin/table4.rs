//! Table 4 — throughput with 1 and 8 cores for every workload, allocator
//! and platform, with the paper's published numbers side by side.
//!
//! Absolute transactions/second are not comparable (simulated machine,
//! scaled transactions); the columns that must line up are the
//! *relative* throughputs (the parenthesized percentages) and the 1→8 core
//! speedups.

use webmm_alloc::AllocatorKind;
use webmm_bench::{both_machines, paper, php_run, BenchOpts};
use webmm_profiler::report::{heading, table};
use webmm_workload::php_workloads;

fn main() {
    let opts = BenchOpts::from_env();
    for machine in both_machines() {
        let xeon = machine.prefetch.is_some();
        print!(
            "{}",
            heading(&format!("Table 4: speedups with 8 cores, {}", machine.name))
        );
        let mut rows = vec![vec![
            "workload".to_string(),
            "allocator".to_string(),
            "1-core rel".to_string(),
            "(paper)".to_string(),
            "8-core rel".to_string(),
            "(paper)".to_string(),
            "speedup".to_string(),
            "(paper)".to_string(),
        ]];
        for wl in php_workloads() {
            let base1 = php_run(&machine, AllocatorKind::PhpDefault, wl.clone(), 1, &opts);
            let base8 = php_run(&machine, AllocatorKind::PhpDefault, wl.clone(), 8, &opts);
            for kind in AllocatorKind::PHP_STUDY {
                let r1 = php_run(&machine, kind, wl.clone(), 1, &opts);
                let r8 = php_run(&machine, kind, wl.clone(), 8, &opts);
                let rel1 = (r1.throughput.tx_per_sec / base1.throughput.tx_per_sec - 1.0) * 100.0;
                let rel8 = (r8.throughput.tx_per_sec / base8.throughput.tx_per_sec - 1.0) * 100.0;
                let speedup = r8.throughput.tx_per_sec / r1.throughput.tx_per_sec;
                let p = paper::table4(wl.name, kind.id());
                let (p1, p8, ps) = p.map_or(("-".into(), "-".into(), "-".to_string()), |t| {
                    let b = paper::table4(wl.name, "php-default").expect("baseline row");
                    let (o1, o8, b1, b8) = if xeon {
                        (t.xeon_1c, t.xeon_8c, b.xeon_1c, b.xeon_8c)
                    } else {
                        (t.niagara_1c, t.niagara_8c, b.niagara_1c, b.niagara_8c)
                    };
                    (
                        format!("{:+.1}%", (o1 / b1 - 1.0) * 100.0),
                        format!("{:+.1}%", (o8 / b8 - 1.0) * 100.0),
                        format!("{:.1}x", o8 / o1),
                    )
                });
                rows.push(vec![
                    wl.name.to_string(),
                    kind.id().to_string(),
                    format!("{rel1:+.1}%"),
                    p1,
                    format!("{rel8:+.1}%"),
                    p8,
                    format!("{speedup:.1}x"),
                    ps,
                ]);
            }
        }
        print!("{}", table(&rows));
    }
}
