//! Table 1 — Summary of the three allocation approaches for
//! transaction-scoped objects, printed from each allocator's
//! programmatic self-description.

use webmm_alloc::AllocatorKind;
use webmm_profiler::report::{heading, table};

fn main() {
    print!(
        "{}",
        heading("Table 1: allocation approaches for transaction-scoped objects")
    );
    let mut rows = vec![vec![
        "type of allocator".to_string(),
        "bulk free".to_string(),
        "per-object free".to_string(),
        "defragmentation".to_string(),
        "cost of malloc/free".to_string(),
        "bandwidth requirement".to_string(),
    ]];
    for kind in AllocatorKind::PHP_STUDY {
        let a = kind.build(0);
        let t = a.alloc_traits();
        let yn = |b: bool| if b { "Yes" } else { "No" }.to_string();
        rows.push(vec![
            a.name().to_string(),
            yn(t.bulk_free),
            yn(t.per_object_free),
            yn(t.defragmentation),
            t.cost.to_string(),
            t.bandwidth.to_string(),
        ]);
    }
    print!("{}", table(&rows));
    println!("\npaper: general-purpose = Yes/Yes/Yes/high/low; region = Yes/No/No/lowest/high;");
    println!("       defrag-dodging = Yes/Yes/No/low/low");
}
