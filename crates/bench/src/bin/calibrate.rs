//! Developer calibration harness: prints the headline comparisons the
//! paper's qualitative claims rest on, for quick model tuning.
//!
//! Not one of the paper's figures — see `fig*.rs` / `table*.rs` for those.

use webmm_alloc::AllocatorKind;
use webmm_runtime::{run, RunConfig};
use webmm_sim::MachineConfig;
use webmm_workload::{mediawiki_read, phpbb, WorkloadSpec};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    for machine in [
        MachineConfig::xeon_clovertown(),
        MachineConfig::niagara_t1(),
    ] {
        for wl in [mediawiki_read(), phpbb()] {
            report(&machine, &wl, scale);
        }
    }
}

fn report(machine: &MachineConfig, wl: &WorkloadSpec, scale: u32) {
    println!("=== {} / {} (scale {scale}) ===", machine.name, wl.name);
    for cores in [1u32, 8] {
        let mut base = None;
        for kind in AllocatorKind::PHP_STUDY {
            let cfg = RunConfig::new(kind, wl.clone())
                .scale(scale)
                .cores(cores)
                .window(2, 4);
            let r = run(machine, &cfg);
            let t = r.throughput;
            let base_tps = *base.get_or_insert(t.tx_per_sec);
            let ev = r.total_events();
            let n = (r.measured_tx * r.events.len() as u64) as f64;
            println!(
                "{cores} cores {:22} {:>10.1} tx/s ({:+6.1}%)  mm {:4.1}%  rho {:.2} lat x{:.2}  L2m/tx {:>7.0} bus/tx {:>7.0} instr/tx {:>9.0}",
                kind.id(),
                t.tx_per_sec,
                (t.tx_per_sec / base_tps - 1.0) * 100.0,
                100.0 * t.mm_cycles_per_tx / (t.mm_cycles_per_tx + t.app_cycles_per_tx),
                t.bus_utilization,
                t.latency_factor,
                ev.total().l2_misses as f64 / n,
                ev.total().bus_txns as f64 / n,
                ev.total().instructions as f64 / n,
            );
        }
    }
}
