//! Ablation F — the prefetcher-disable experiment (§4.3).
//!
//! "On Xeon, the increases in bus transactions were much larger than the
//! increases in the L2 cache misses. This difference mainly came from the
//! hardware memory prefetcher. We observed that the difference was reduced
//! by disabling the prefetcher. The inferior scalability of the
//! region-based allocator was unaffected, even without the prefetcher."

use webmm_alloc::AllocatorKind;
use webmm_bench::{cached_run, BenchOpts};
use webmm_profiler::event_deltas;
use webmm_profiler::report::{heading, table};
use webmm_sim::MachineConfig;
use webmm_workload::mediawiki_read;

fn main() {
    let opts = BenchOpts::from_env();
    print!(
        "{}",
        heading("Ablation: Xeon with and without the stream prefetcher (MediaWiki r/o, 8 cores)")
    );
    let mut rows = vec![vec![
        "prefetcher".to_string(),
        "region ΔL2".to_string(),
        "region Δbus".to_string(),
        "bus − L2 gap".to_string(),
        "region vs default".to_string(),
    ]];
    for (label, machine) in [
        ("enabled", MachineConfig::xeon_clovertown()),
        (
            "disabled",
            MachineConfig::xeon_clovertown().without_prefetcher(),
        ),
    ] {
        let base = cached_run(
            &machine,
            &opts.config(AllocatorKind::PhpDefault, mediawiki_read(), 8),
            &opts,
        );
        let reg = cached_run(
            &machine,
            &opts.config(AllocatorKind::Region, mediawiki_read(), 8),
            &opts,
        );
        let d = event_deltas(&reg, &base);
        rows.push(vec![
            label.to_string(),
            format!("{:+.1}%", d.l2_misses),
            format!("{:+.1}%", d.bus_txns),
            format!("{:+.1} pts", d.bus_txns - d.l2_misses),
            format!(
                "{:+.1}%",
                (reg.throughput.tx_per_sec / base.throughput.tx_per_sec - 1.0) * 100.0
            ),
        ]);
    }
    print!("{}", table(&rows));
    println!("\npaper: disabling the prefetcher shrinks the bus-vs-L2 gap, while the");
    println!("region allocator's inferior scalability remains.");
}
