//! Figure 9 — comparison of the amount of memory consumed, under the
//! paper's per-allocator definitions (§4.3), relative to the default
//! allocator.
//!
//! Paper headlines: DDmalloc consumes ~24% more memory than the default
//! (segregated storage trades space for speed); the region-based
//! allocator consumes ~3x on average and >7x in the worst case.

use webmm_alloc::AllocatorKind;
use webmm_bench::{paper, php_run, BenchOpts};
use webmm_profiler::memory_consumption;
use webmm_profiler::report::{bytes, heading, table};
use webmm_sim::MachineConfig;
use webmm_workload::php_workloads;

fn main() {
    let mut opts = BenchOpts::from_env();
    // Memory consumption has granularity floors (Zend's 256 KB arenas,
    // DDmalloc's one-segment-per-class minimum) that do not shrink with
    // the workload; measure at the finest tractable scale so live sets
    // dominate the floors. Footprints converge within a transaction or
    // two, so the window can be short.
    opts.scale = (opts.scale / 4).max(8);
    opts.warmup = 1;
    opts.measure = 2;
    let machine = MachineConfig::xeon_clovertown();
    print!(
        "{}",
        heading(&format!(
            "Figure 9: memory consumed during transactions (8 Xeon cores, scale 1/{})",
            opts.scale
        ))
    );
    let mut rows = vec![vec![
        "workload".to_string(),
        "default".to_string(),
        "region".to_string(),
        "(ratio)".to_string(),
        "ddmalloc".to_string(),
        "(ratio)".to_string(),
    ]];
    let mut region_ratios = Vec::new();
    let mut dd_ratios = Vec::new();
    for wl in php_workloads() {
        let base = memory_consumption(&php_run(
            &machine,
            AllocatorKind::PhpDefault,
            wl.clone(),
            8,
            &opts,
        )) as f64;
        let reg = memory_consumption(&php_run(
            &machine,
            AllocatorKind::Region,
            wl.clone(),
            8,
            &opts,
        )) as f64;
        let dd = memory_consumption(&php_run(
            &machine,
            AllocatorKind::DdMalloc,
            wl.clone(),
            8,
            &opts,
        )) as f64;
        region_ratios.push(reg / base);
        dd_ratios.push(dd / base);
        rows.push(vec![
            wl.name.to_string(),
            bytes(base as u64),
            bytes(reg as u64),
            format!("{:.2}x", reg / base),
            bytes(dd as u64),
            format!("{:.2}x", dd / base),
        ]);
    }
    print!("{}", table(&rows));
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
    println!(
        "\naverages: region {:.2}x (paper {:.1}x, worst >7x; ours worst {:.2}x), ddmalloc {:.2}x (paper {:.2}x)",
        avg(&region_ratios),
        paper::FIG9_REGION_RATIO_AVG,
        max(&region_ratios),
        avg(&dd_ratios),
        paper::FIG9_DD_RATIO_AVG,
    );
    println!(
        "note: consumption is per transaction scaled by 1/{}; ratios are scale-free.",
        opts.scale
    );
}
