//! Table 3 — per-transaction allocator-call statistics of the generated
//! workload streams, checked against the paper's published values.
//!
//! The streams are parameterized *from* Table 3, so this harness validates
//! that the generator reproduces what it was told: call counts scale back
//! up to the paper's numbers, and the mean allocation size matches.

use webmm_bench::BenchOpts;
use webmm_profiler::report::{heading, table};
use webmm_workload::{php_workloads, TxStream, WorkOp};

fn main() {
    let opts = BenchOpts::from_env();
    print!(
        "{}",
        heading(&format!(
            "Table 3: malloc/free/realloc per transaction (generated at scale {}, rescaled)",
            opts.scale
        ))
    );
    let mut rows = vec![vec![
        "workload".to_string(),
        "malloc".to_string(),
        "(paper)".to_string(),
        "free".to_string(),
        "(paper)".to_string(),
        "realloc".to_string(),
        "(paper)".to_string(),
        "size".to_string(),
        "(paper)".to_string(),
    ]];
    for spec in php_workloads() {
        let mut stream = TxStream::new(spec.clone(), opts.scale, 42);
        let mut done = 0;
        while done < 6 {
            if stream.next_op() == WorkOp::EndTx {
                done += 1;
            }
        }
        let st = stream.stats();
        let per_tx = |n: u64| n as f64 / st.transactions as f64 * f64::from(opts.scale);
        rows.push(vec![
            spec.name.to_string(),
            format!("{:.0}", per_tx(st.mallocs)),
            format!("{}", spec.mallocs_per_tx),
            format!("{:.0}", per_tx(st.frees)),
            format!("{}", spec.frees_per_tx),
            format!("{:.0}", per_tx(st.reallocs)),
            format!("{}", spec.reallocs_per_tx),
            format!("{:.1}", st.mean_alloc_bytes()),
            format!("{:.1}", spec.mean_alloc_bytes),
        ]);
    }
    print!("{}", table(&rows));
}
