//! Ablation D — DDmalloc size-class mapping policies.
//!
//! §3.2: "How to map the requested sizes of small objects onto each
//! size-class is an important tunable parameter." The paper's hybrid
//! mapping (×8 below 128 B, ×32 below 512 B, powers of two above) trades
//! internal fragmentation against table size; this sweep compares it with
//! pure powers of two and a fine-grained ×8 table.

use webmm_alloc::{AllocatorKind, ClassMapping, DdConfig};
use webmm_bench::{cached_run, BenchOpts};
use webmm_profiler::report::{bytes, heading, table};
use webmm_runtime::RunConfig;
use webmm_sim::MachineConfig;
use webmm_workload::mediawiki_read;

fn main() {
    let opts = BenchOpts::from_env();
    let machine = MachineConfig::xeon_clovertown();
    print!(
        "{}",
        heading("Ablation: DDmalloc size-class mapping (MediaWiki r/o, 8 Xeon cores)")
    );
    let mut rows = vec![vec![
        "mapping".to_string(),
        "tx/s".to_string(),
        "heap".to_string(),
        "peak tx alloc".to_string(),
        "L2 miss/tx".to_string(),
    ]];
    for (label, mapping) in [
        ("paper (8/32/pow2)", ClassMapping::Paper),
        ("powers of two", ClassMapping::PowersOfTwo),
        ("fine x8", ClassMapping::Fine8),
    ] {
        let cfg = RunConfig::new(AllocatorKind::DdMalloc, mediawiki_read())
            .scale(opts.scale)
            .cores(8)
            .window(opts.warmup, opts.measure)
            .dd_config(DdConfig {
                mapping,
                ..DdConfig::default()
            });
        let r = cached_run(&machine, &cfg, &opts);
        let n = (r.measured_tx * r.events.len() as u64) as f64;
        rows.push(vec![
            label.to_string(),
            format!("{:8.1}", r.throughput.tx_per_sec),
            bytes(r.footprint.heap_bytes),
            bytes(r.footprint.peak_tx_alloc_bytes),
            format!("{:6.0}", r.total_events().total().l2_misses as f64 / n),
        ]);
    }
    print!("{}", table(&rows));
    println!("\nexpected: powers of two waste space (rounding up to 2x), the fine table");
    println!("spreads objects over more classes/segments; the paper's hybrid balances both.");
}
