//! Figure 5 — relative throughput over the default allocator of the PHP
//! runtime on 8 cores of Xeon and Niagara, all workloads, all three
//! allocators. Paper values (derived from Table 4) printed alongside.

use webmm_alloc::AllocatorKind;
use webmm_bench::{both_machines, paper, php_run, BenchOpts};
use webmm_profiler::report::{heading, table};
use webmm_workload::php_workloads;

fn main() {
    let opts = BenchOpts::from_env();
    for machine in both_machines() {
        let xeon = machine.prefetch.is_some();
        print!(
            "{}",
            heading(&format!(
                "Figure 5: relative throughput over the default allocator, 8 cores, {}",
                machine.name
            ))
        );
        let mut rows = vec![vec![
            "workload".to_string(),
            "region".to_string(),
            "(paper)".to_string(),
            "ddmalloc".to_string(),
            "(paper)".to_string(),
        ]];
        for wl in php_workloads() {
            let base = php_run(&machine, AllocatorKind::PhpDefault, wl.clone(), 8, &opts);
            let mut row = vec![wl.name.to_string()];
            for kind in [AllocatorKind::Region, AllocatorKind::DdMalloc] {
                let r = php_run(&machine, kind, wl.clone(), 8, &opts);
                let relative = (r.throughput.tx_per_sec / base.throughput.tx_per_sec - 1.0) * 100.0;
                let published = paper::fig5_relative(wl.name, kind.id(), xeon, true)
                    .map_or("-".to_string(), |v| format!("{v:+.1}%"));
                row.push(format!("{relative:+.1}%"));
                row.push(published);
            }
            rows.push(row);
        }
        print!("{}", table(&rows));
    }
    println!("\npaper headline: region degrades by as much as 27.2% on Xeon at 8 cores;");
    println!("DDmalloc improves every workload on both platforms (up to +11.1%/+11.4%).");
}
