//! Figure 8 — changes in the numbers of instructions, cache misses, and
//! bus transactions per transaction with DDmalloc and the region-based
//! allocator versus the default allocator, on 8 cores of both platforms.
//!
//! The paper's shape: the region allocator raises L2 misses and (on Xeon,
//! amplified by the prefetcher) bus transactions; DDmalloc cuts
//! instructions and bus traffic.

use webmm_alloc::AllocatorKind;
use webmm_bench::{both_machines, php_run, BenchOpts};
use webmm_profiler::event_deltas;
use webmm_profiler::report::{heading, table};
use webmm_workload::php_workloads;

fn main() {
    let opts = BenchOpts::from_env();
    for machine in both_machines() {
        print!(
            "{}",
            heading(&format!(
                "Figure 8: per-transaction event changes vs default allocator, 8 cores, {}",
                machine.name
            ))
        );
        let mut rows = vec![vec![
            "workload".to_string(),
            "allocator".to_string(),
            "instr".to_string(),
            "L1I".to_string(),
            "L1D".to_string(),
            "D-TLB".to_string(),
            "L2".to_string(),
            "bus".to_string(),
        ]];
        for wl in php_workloads() {
            let base = php_run(&machine, AllocatorKind::PhpDefault, wl.clone(), 8, &opts);
            for kind in [AllocatorKind::Region, AllocatorKind::DdMalloc] {
                let r = php_run(&machine, kind, wl.clone(), 8, &opts);
                let d = event_deltas(&r, &base);
                rows.push(vec![
                    wl.name.to_string(),
                    kind.id().to_string(),
                    format!("{:+.1}%", d.instructions),
                    format!("{:+.1}%", d.l1i_misses),
                    format!("{:+.1}%", d.l1d_misses),
                    format!("{:+.1}%", d.dtlb_misses),
                    format!("{:+.1}%", d.l2_misses),
                    format!("{:+.1}%", d.bus_txns),
                ]);
            }
        }
        print!("{}", table(&rows));
        if machine.prefetch.is_some() {
            println!("paper (Xeon): region raises L2 misses and raises bus transactions even more");
            println!("(prefetcher amplification); ddmalloc lowers instructions and bus traffic.");
        } else {
            println!("paper (Niagara): no prefetcher, so the region allocator's bus-transaction");
            println!("increase tracks its L2-miss increase much more closely than on Xeon.");
        }
    }
}
