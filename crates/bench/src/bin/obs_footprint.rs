//! Touched-footprint time series over one transaction: the Figure 9
//! space story, watched live through [`HeapTelemetry`].
//!
//! Figure 9 reports end-of-run memory-consumption ratios; this bin shows
//! *how they get there*. It replays a single transaction op-by-op against
//! the region allocator and DDmalloc (plus the Zend default as baseline),
//! sampling `heap_snapshot()` every few operations. The region
//! allocator's touched footprint is monotone — no per-object free means
//! every short-lived object stays hot until `freeAll` — while DDmalloc's
//! free lists absorb and recycle the churn, so its touched curve flattens
//! once the per-class working sets saturate.
//!
//! ```text
//! cargo run --release -p webmm-bench --bin obs_footprint -- \
//!     [--workload phpbb] [--scale 8] [--seed 42] [--every 64] \
//!     [--out BENCH_obs_footprint.json]
//! ```

use webmm_alloc::AllocatorKind;
use webmm_obs::HeapSnapshot;
use webmm_profiler::report::{bytes, heading, table};
use webmm_sim::{Addr, PlainPort};
use webmm_workload::{by_name, TxStream, WorkOp};

/// One sampled point of the footprint curve.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct FootprintPoint {
    /// Operation index within the transaction at which the snapshot was
    /// taken (`u64::MAX`-free; the post-`freeAll` sample reuses the last
    /// op index).
    op: u64,
    /// Objects live in the heap at this point.
    live: u64,
    /// Bytes of heap the allocator has touched (written) so far.
    touched_bytes: u64,
    /// Bytes of heap reserved from the OS.
    heap_bytes: u64,
    /// Bytes sitting on free lists — reusable-but-held mass.
    free_bytes: u64,
}

/// One allocator's full curve.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct FootprintSeries {
    allocator: String,
    workload: String,
    scale: u32,
    series: Vec<FootprintPoint>,
}

fn point(op: u64, snap: &HeapSnapshot) -> FootprintPoint {
    FootprintPoint {
        op,
        live: snap.live_objects(),
        touched_bytes: snap.touched_bytes,
        heap_bytes: snap.heap_bytes,
        free_bytes: snap.free_bytes,
    }
}

/// Replays one transaction against a fresh heap, snapshotting every
/// `every` ops, then `freeAll`s and takes a closing sample.
fn run_one(
    kind: AllocatorKind,
    workload: &str,
    scale: u32,
    seed: u64,
    every: u64,
) -> FootprintSeries {
    // Exact paper name first ("phpBB"), then case-insensitive substring
    // ("phpbb", "sugar") for CLI convenience.
    let spec = by_name(workload)
        .or_else(|| {
            let needle = workload.to_lowercase();
            webmm_workload::php_workloads()
                .into_iter()
                .find(|w| w.name.to_lowercase().contains(&needle))
        })
        .unwrap_or_else(|| {
            eprintln!("unknown workload `{workload}`");
            std::process::exit(2);
        });
    let mut stream = TxStream::new(spec, scale, seed);
    let mut port = PlainPort::new();
    let mut heap = kind.build(0);
    let per_object_free = heap.alloc_traits().per_object_free;
    // Live objects: workload id → (address, size); sizes feed realloc for
    // headerless allocators.
    let mut objects: std::collections::HashMap<u64, (Addr, u64)> = std::collections::HashMap::new();
    let mut series = vec![point(0, &heap.heap_snapshot())];
    let mut op_idx = 0u64;
    loop {
        let op = stream.next_op();
        op_idx += 1;
        match op {
            WorkOp::Malloc { id, size } => {
                let addr = heap.malloc(&mut port, size).expect("heap sized for one tx");
                objects.insert(id, (addr, size));
            }
            WorkOp::Free { id } => {
                if let Some((addr, _)) = objects.remove(&id) {
                    if per_object_free {
                        heap.free(&mut port, addr);
                    } else {
                        // The porting recipe omits frees for bulk-only
                        // allocators; the object stays until freeAll.
                        objects.insert(id, (addr, 0));
                    }
                }
            }
            WorkOp::Realloc { id, new_size } => {
                if let Some(&(addr, old_size)) = objects.get(&id) {
                    let moved = heap
                        .realloc(&mut port, addr, old_size, new_size)
                        .expect("heap sized for one tx");
                    objects.insert(id, (moved, new_size));
                }
            }
            // Application work moves no allocator state.
            WorkOp::Touch { .. } | WorkOp::Compute { .. } | WorkOp::StaticTouch { .. } => {}
            WorkOp::EndTx => break,
        }
        if op_idx.is_multiple_of(every) {
            series.push(point(op_idx, &heap.heap_snapshot()));
        }
    }
    series.push(point(op_idx, &heap.heap_snapshot()));
    if heap.alloc_traits().bulk_free {
        heap.free_all(&mut port);
    } else {
        for (addr, _) in objects.values() {
            heap.free(&mut port, *addr);
        }
    }
    objects.clear();
    series.push(point(op_idx, &heap.heap_snapshot()));
    FootprintSeries {
        allocator: heap.name().to_string(),
        workload: workload.to_string(),
        scale,
        series,
    }
}

fn main() {
    let mut workload = "phpbb".to_string();
    let mut scale = 8u32;
    let mut seed = 42u64;
    let mut every = 64u64;
    let mut out = "BENCH_obs_footprint.json".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--workload" => workload = value(),
            "--scale" => scale = value().parse().expect("--scale takes a divisor"),
            "--seed" => seed = value().parse().expect("--seed takes a u64"),
            "--every" => every = value().parse().expect("--every takes an op count"),
            "--out" => out = value(),
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!(
                    "usage: obs_footprint [--workload NAME] [--scale N] [--seed N] \
                     [--every N] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    let every = every.max(1);

    let kinds = [
        AllocatorKind::PhpDefault,
        AllocatorKind::Region,
        AllocatorKind::DdMalloc,
    ];
    let runs: Vec<FootprintSeries> = kinds
        .iter()
        .map(|&k| run_one(k, &workload, scale, seed, every))
        .collect();

    print!(
        "{}",
        heading(&format!(
            "Touched footprint over one {workload} transaction (scale 1/{scale}, sample every {every} ops)"
        ))
    );
    let mut rows = vec![vec![
        "op".to_string(),
        format!("{} touched", runs[0].allocator),
        format!("{} touched", runs[1].allocator),
        format!("{} touched", runs[2].allocator),
        "region live".to_string(),
        "ddmalloc free bytes".to_string(),
    ]];
    // The three series sample at the same op indices until their (equal
    // length) transaction ends; print up to 14 evenly spaced rows.
    let n = runs.iter().map(|r| r.series.len()).min().unwrap_or(0);
    let step = (n / 13).max(1);
    let mut idxs: Vec<usize> = (0..n).step_by(step).collect();
    if idxs.last() != Some(&(n - 1)) {
        idxs.push(n - 1);
    }
    for i in idxs {
        rows.push(vec![
            format!("{}", runs[0].series[i].op),
            bytes(runs[0].series[i].touched_bytes),
            bytes(runs[1].series[i].touched_bytes),
            bytes(runs[2].series[i].touched_bytes),
            format!("{}", runs[1].series[i].live),
            bytes(runs[2].series[i].free_bytes),
        ]);
    }
    print!("{}", table(&rows));

    let last_tx = |r: &FootprintSeries| r.series[r.series.len() - 2].touched_bytes.max(1);
    println!(
        "\nend-of-tx touched: region {:.2}x of default, ddmalloc {:.2}x of default",
        last_tx(&runs[1]) as f64 / last_tx(&runs[0]) as f64,
        last_tx(&runs[2]) as f64 / last_tx(&runs[0]) as f64,
    );
    println!("(last row is the post-freeAll sample: occupancy drops to zero, touched stays.)");

    let json = serde_json::to_string_pretty(&runs).expect("series serialize");
    std::fs::write(&out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {} series to {out}", runs.len());
}
