//! §5 discussion — garbage-collected runtimes on multicore.
//!
//! The paper argues that copying-GC virtual machines "allocate heap memory
//! for newly created objects in a similar way to the region-based
//! allocators ... [and] may suffer from the increased bus traffic on
//! multicore processors, because they cannot reuse the memory locations
//! used by already-dead objects", and that techniques like MicroPhase
//! (Xian et al.) — "aggressively invoking a garbage collection before the
//! Java heap becomes full" — recover locality.
//!
//! This harness builds a miniature semi-space nursery directly on the
//! simulator: objects bump-allocate into a nursery; a "collection" copies
//! the survivors to a fresh space and flips. Sweeping the nursery size
//! (the MicroPhase knob: smaller nursery = earlier GC) on eight Xeon cores
//! shows the paper's §5 claim: a huge nursery behaves exactly like the
//! region allocator (bus-bound), and collecting early keeps the working
//! set cache-resident at the price of more copying.

use webmm_profiler::report::{heading, table};
use webmm_sim::{
    Category, ContextPort, MachineConfig, MemHierarchy, MemoryPort, PageSize, ProcessMem,
};
use webmm_workload::{mediawiki_read, TxStream, WorkOp};

/// A miniature semi-space nursery over simulated memory.
struct Nursery {
    base: [webmm_sim::Addr; 2],
    active: usize,
    cursor: u64,
    size: u64,
    collections: u64,
    bytes_copied: u64,
}

impl Nursery {
    fn new(port: &mut dyn MemoryPort, size: u64) -> Self {
        Nursery {
            base: [
                port.os_alloc(size, 4096, PageSize::Base),
                port.os_alloc(size, 4096, PageSize::Base),
            ],
            active: 0,
            cursor: 0,
            size,
            collections: 0,
            bytes_copied: 0,
        }
    }

    /// Bump-allocates; returns `None` when a collection is needed.
    fn alloc(&mut self, port: &mut dyn MemoryPort, size: u64) -> Option<webmm_sim::Addr> {
        let rounded = (size + 7) & !7;
        port.exec(6); // the pointer increment + limit check
        if self.cursor + rounded > self.size {
            return None;
        }
        let addr = self.base[self.active] + self.cursor;
        self.cursor += rounded;
        Some(addr)
    }

    /// Grows both semi-spaces (the VM resizing its heap when the live set
    /// outgrows the nursery).
    fn grow(&mut self, port: &mut dyn MemoryPort) {
        self.size *= 2;
        self.base = [
            port.os_alloc(self.size, 4096, PageSize::Base),
            port.os_alloc(self.size, 4096, PageSize::Base),
        ];
        self.cursor = self.size; // force a collection into the new space
        self.active = 0;
    }

    /// Copies the live objects into the other semi-space and flips.
    fn collect(
        &mut self,
        port: &mut dyn MemoryPort,
        live: &mut std::collections::HashMap<u64, (webmm_sim::Addr, u64)>,
    ) {
        self.collections += 1;
        let to = 1 - self.active;
        let mut cursor = 0u64;
        for (_, slot) in live.iter_mut() {
            let (old, size) = *slot;
            let rounded = (size + 7) & !7;
            let new = self.base[to] + cursor;
            port.memcpy(new, old, size); // the GC's copy traffic
            port.exec(20); // scan/forward bookkeeping per object
            *slot = (new, size);
            cursor += rounded;
            self.bytes_copied += size;
        }
        self.active = to;
        self.cursor = cursor;
    }
}

fn run_gc(machine: &MachineConfig, nursery_bytes: u64, scale: u32) -> (f64, f64, u64) {
    let contexts = machine.contexts() as usize;
    let mut hier = MemHierarchy::new(machine);
    let mut procs: Vec<_> = (0..contexts)
        .map(|pid| {
            let mut mem = ProcessMem::new(((pid as u64) + 1) << 40);
            let code = mem.register_code_at(
                webmm_sim::Addr::new(0x7100_0000_0000),
                webmm_sim::CodeSpec::new(768 * 1024, 12 * 1024),
            );
            let stream = TxStream::new(mediawiki_read(), scale, 42 ^ pid as u64);
            (
                mem,
                code,
                stream,
                None::<Nursery>,
                std::collections::HashMap::new(),
                0u64,
            )
        })
        .collect();

    // Run every context for a fixed number of transactions, interleaved.
    let target_tx = 6u64;
    loop {
        let mut all_done = true;
        for (ctx, proc) in procs.iter_mut().enumerate() {
            let (mem, code, stream, nursery, live, done) = proc;
            if *done >= target_tx {
                continue;
            }
            all_done = false;
            let mut port = ContextPort::new(mem, &mut hier, ctx);
            port.set_code_region(*code);
            let n = nursery.get_or_insert_with(|| Nursery::new(&mut port, nursery_bytes));
            for _ in 0..32 {
                match stream.next_op() {
                    WorkOp::Malloc { id, size } => {
                        port.set_category(Category::MemoryManagement);
                        let addr = loop {
                            if let Some(a) = n.alloc(&mut port, size) {
                                break a;
                            }
                            n.collect(&mut port, live);
                            if n.size - n.cursor < size + 8 {
                                // Live set fills the nursery: the VM grows.
                                n.grow(&mut port);
                                n.collect(&mut port, live);
                            }
                        };
                        live.insert(id, (addr, size));
                    }
                    // A GC language has no free(): dropping the reference
                    // is all that happens (the object stays in the nursery).
                    WorkOp::Free { id } => {
                        live.remove(&id);
                    }
                    WorkOp::Realloc { id, new_size } => {
                        port.set_category(Category::MemoryManagement);
                        let (old, old_size) = live[&id];
                        let addr = loop {
                            if let Some(a) = n.alloc(&mut port, new_size) {
                                break a;
                            }
                            n.collect(&mut port, live);
                            if n.size - n.cursor < new_size + 8 {
                                n.grow(&mut port);
                                n.collect(&mut port, live);
                            }
                        };
                        // `live` may have moved `id` during collect.
                        let src = live.get(&id).map_or(old, |v| v.0);
                        port.memcpy(addr, src, old_size.min(new_size));
                        live.insert(id, (addr, new_size));
                    }
                    WorkOp::Touch { id, write } => {
                        if let Some(&(addr, size)) = live.get(&id) {
                            port.set_category(Category::Application);
                            port.touch(addr, size, write);
                        }
                    }
                    WorkOp::Compute { instr } => {
                        port.set_category(Category::Application);
                        port.exec(instr);
                    }
                    WorkOp::StaticTouch { offset, len } => {
                        port.set_category(Category::Application);
                        port.touch(webmm_sim::Addr::new(0x7000_0000_0000) + offset, len, false);
                    }
                    WorkOp::EndTx => {
                        *done += 1;
                        // Transaction-scoped: everything unreachable now.
                        live.clear();
                    }
                }
            }
        }
        if all_done {
            break;
        }
    }

    // Events → throughput via the same fixed point as the main study.
    let events: Vec<_> = (0..contexts).map(|c| *hier.counters(c)).collect();
    let t = webmm_runtime::solve(machine, &events, target_tx, machine.cores);
    let collections: u64 = procs
        .iter()
        .map(|p| p.3.as_ref().map_or(0, |n| n.collections))
        .sum();
    (t.tx_per_sec, t.bus_utilization, collections)
}

fn main() {
    let scale: u32 = std::env::var("WEBMM_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let machine = MachineConfig::xeon_clovertown();
    print!(
        "{}",
        heading(
            "§5 discussion: a copying-GC nursery on 8 Xeon cores (MediaWiki r/o, MicroPhase sweep)"
        )
    );
    let mut rows = vec![vec![
        "nursery".to_string(),
        "tx/s".to_string(),
        "bus rho".to_string(),
        "collections".to_string(),
    ]];
    for nursery_kb in [32u64, 64, 128, 512, 2048, 8192] {
        let (tps, rho, gcs) = run_gc(&machine, nursery_kb * 1024, scale);
        rows.push(vec![
            format!("{} KB", nursery_kb),
            format!("{tps:8.1}"),
            format!("{rho:.2}"),
            gcs.to_string(),
        ]);
    }
    print!("{}", table(&rows));
    println!("\npaper §5: a huge nursery never reuses lines (region-allocator behaviour,");
    println!("bus-bound); collecting early — MicroPhase — keeps the nursery cache-resident");
    println!("at the cost of copying, so throughput peaks at an intermediate nursery size.");
}
