//! Figure 1 — normalized CPU time per transaction for MediaWiki on
//! 8 Xeon cores: the default allocator of the PHP runtime versus the
//! region-based allocator, split into memory management and the rest.
//!
//! The paper's motivating observation: the region allocator "significantly
//! speeds up the memory management functions, [but] degraded the
//! performance of the rest of the program".

use webmm_alloc::AllocatorKind;
use webmm_bench::{php_run, BenchOpts};
use webmm_profiler::breakdown;
use webmm_profiler::report::{bar, heading};
use webmm_sim::MachineConfig;
use webmm_workload::mediawiki_read;

fn main() {
    let opts = BenchOpts::from_env();
    let machine = MachineConfig::xeon_clovertown();
    print!(
        "{}",
        heading("Figure 1: normalized CPU time per transaction (MediaWiki, 8 Xeon cores)")
    );

    let base = php_run(
        &machine,
        AllocatorKind::PhpDefault,
        mediawiki_read(),
        8,
        &opts,
    );
    let region = php_run(&machine, AllocatorKind::Region, mediawiki_read(), 8, &opts);
    let base_b = breakdown(&base);
    let reg_b = breakdown(&region);
    // Wall-clock CPU per transaction includes the contention-inflated
    // stalls; normalize everything to the default allocator's total.
    let norm = base_b.total();

    for (label, b) in [("default allocator", &base_b), ("region-based", &reg_b)] {
        let mm = b.mm_cycles / norm;
        let other = b.other_cycles / norm;
        println!(
            "{label:18} total {:4.2}  [mm {:4.2} | others {:4.2}]  {}",
            mm + other,
            mm,
            other,
            bar(mm + other, 1.4, 42),
        );
    }
    println!(
        "\nmm share: default {:.1}%  region {:.1}%   (paper Fig. 1: region cuts the mm bar",
        100.0 * base_b.mm_share(),
        100.0 * reg_b.mm_share()
    );
    println!("to a sliver while the 'others' bar grows past the default's total)");
}
