//! Hot-path microbenchmarks: each zero-allocation optimization isolated.
//!
//! The serving-loop rework (dense object tables, tx-buffer recycling,
//! amortized timing) shows up in `native_shootout` as one combined
//! throughput delta; this harness measures each ingredient alone so a
//! regression in one cannot hide behind an improvement in another:
//!
//! * **object_table** — replaying identical workload op sequences against
//!   the generation-stamped [`ObjectTable`] and against the
//!   `HashMap<u64, _>` it replaced (ns/op);
//! * **tx_buffers** — building transactions out of pool-recycled op
//!   buffers vs a fresh `Vec` per transaction (ns/tx);
//! * **timestamps** — the dequeue-side clock discipline: one
//!   `Instant::now()` per drained batch vs one per transaction (ns/tx);
//! * **serving** — a mini end-to-end run per ingress queue mode, checking
//!   the accounting identity `submitted == completed + shed` and that the
//!   buffer pool actually recycles at steady state.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p webmm-bench --bin hotpath_bench -- \
//!     [--tx 20000] [--batch 32] [--seed 42] [--out BENCH_hotpath.json]
//! ```

use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;
use webmm_profiler::report::{heading, table};
use webmm_server::{drive_closed, Server, ServerConfig, TxBufferPool, TxFactory};
use webmm_workload::{phpbb, ObjectTable, WorkOp};

/// Everything one invocation measured, as written to `BENCH_hotpath.json`.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct HotpathReport {
    /// Transactions per measured section.
    tx: u64,
    /// Batch size used by the timestamp section (mirrors the server's
    /// default drain batch).
    batch: u64,
    parallelism: u64,
    object_table: TableSection,
    tx_buffers: BufferSection,
    timestamps: TimestampSection,
    serving: Vec<ServingSection>,
}

/// Dense table vs `HashMap` on identical op sequences.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct TableSection {
    /// Map-touching ops replayed per structure.
    ops: u64,
    dense_ns_per_op: f64,
    hashmap_ns_per_op: f64,
    /// `hashmap / dense` — above 1.0 means the dense table is faster.
    speedup: f64,
}

/// Pool-recycled vs freshly allocated transaction op buffers.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BufferSection {
    /// Ops copied into each buffer.
    ops_per_tx: u64,
    pooled_ns_per_tx: f64,
    fresh_ns_per_tx: f64,
    /// `fresh / pooled` — above 1.0 means recycling is faster.
    speedup: f64,
    /// Recycled-buffer hits observed by the pool during the pooled run
    /// (must be ~all gets: the loop returns every buffer it takes).
    recycled: u64,
    fresh_allocations: u64,
}

/// One timestamp per drained batch vs one per transaction.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct TimestampSection {
    per_batch_ns_per_tx: f64,
    per_tx_ns_per_tx: f64,
    /// `per_tx / per_batch` — above 1.0 means batching the clock wins.
    speedup: f64,
}

/// One mini serving run (one ingress queue mode).
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ServingSection {
    queue: String,
    submitted: u64,
    completed: u64,
    shed: u64,
    /// `submitted == completed + shed` (also asserted at runtime).
    identity_holds: bool,
    tx_per_sec: f64,
    /// Buffer-pool traffic: recycled must dominate fresh at steady state.
    pool_recycled: u64,
    pool_fresh: u64,
    pool_returned: u64,
}

struct Args {
    tx: u64,
    batch: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        tx: 20_000,
        batch: 32,
        seed: 42,
        out: "BENCH_hotpath.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--tx" => args.tx = value().parse().expect("--tx takes a count"),
            "--batch" => args.batch = value().parse().expect("--batch takes a count"),
            "--seed" => args.seed = value().parse().expect("--seed takes a u64"),
            "--out" => args.out = value(),
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("usage: hotpath_bench [--tx N] [--batch N] [--seed N] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    assert!(args.tx > 0, "--tx must be nonzero");
    assert!(args.batch > 0, "--batch must be nonzero");
    args
}

/// Pre-generates `tx` whole transactions' op sequences from the phpBB
/// stream, so every measured loop replays identical, realistic traffic.
fn generate_ops(tx: u64, seed: u64) -> Vec<Vec<WorkOp>> {
    let mut factory = TxFactory::new(phpbb(), 1024, seed);
    (0..tx).map(|_| factory.next_tx().ops).collect()
}

/// Replays the transactions against the dense table, timing only the map
/// traffic (the structure under test); returns (ns total, map ops).
fn replay_dense(txs: &[Vec<WorkOp>]) -> (u64, u64) {
    let mut table: ObjectTable<(u64, u64)> = ObjectTable::with_capacity(1024);
    let mut ops = 0u64;
    let start = Instant::now();
    for tx in txs {
        for op in tx {
            match *op {
                WorkOp::Malloc { id, size } => {
                    table.insert(id, (id, size));
                    ops += 1;
                }
                WorkOp::Free { id } => {
                    black_box(table.remove(id));
                    ops += 1;
                }
                WorkOp::Realloc { id, new_size } => {
                    if let Some((addr, _)) = table.get(id) {
                        table.insert(id, (addr, new_size));
                    }
                    ops += 1;
                }
                WorkOp::Touch { id, .. } => {
                    black_box(table.get(id));
                    ops += 1;
                }
                WorkOp::EndTx => {
                    table.clear();
                    ops += 1;
                }
                _ => {}
            }
        }
    }
    let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    black_box(table.len());
    (ns, ops)
}

/// The `HashMap` baseline the dense table replaced, on the same traffic.
fn replay_hashmap(txs: &[Vec<WorkOp>]) -> (u64, u64) {
    let mut map: HashMap<u64, (u64, u64)> = HashMap::with_capacity(1024);
    let mut ops = 0u64;
    let start = Instant::now();
    for tx in txs {
        for op in tx {
            match *op {
                WorkOp::Malloc { id, size } => {
                    map.insert(id, (id, size));
                    ops += 1;
                }
                WorkOp::Free { id } => {
                    black_box(map.remove(&id));
                    ops += 1;
                }
                WorkOp::Realloc { id, new_size } => {
                    if let Some(&(addr, _)) = map.get(&id) {
                        map.insert(id, (addr, new_size));
                    }
                    ops += 1;
                }
                WorkOp::Touch { id, .. } => {
                    black_box(map.get(&id));
                    ops += 1;
                }
                WorkOp::EndTx => {
                    map.clear();
                    ops += 1;
                }
                _ => {}
            }
        }
    }
    let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    black_box(map.len());
    (ns, ops)
}

/// Measurement passes per section: alternating repeats with the minimum
/// taken, so a scheduler hiccup in one pass cannot decide a comparison
/// (this host may have a single CPU).
const PASSES: usize = 3;

fn bench_object_table(txs: &[Vec<WorkOp>]) -> TableSection {
    // Warm both structures once, then measure alternately.
    replay_dense(&txs[..txs.len().min(64)]);
    replay_hashmap(&txs[..txs.len().min(64)]);
    let mut dense_ns = u64::MAX;
    let mut hash_ns = u64::MAX;
    let mut ops = 0;
    for _ in 0..PASSES {
        let (d, n) = replay_dense(txs);
        let (h, hash_ops) = replay_hashmap(txs);
        assert_eq!(n, hash_ops, "both replays must see identical traffic");
        dense_ns = dense_ns.min(d);
        hash_ns = hash_ns.min(h);
        ops = n;
    }
    let dense = dense_ns as f64 / ops as f64;
    let hash = hash_ns as f64 / ops as f64;
    TableSection {
        ops,
        dense_ns_per_op: dense,
        hashmap_ns_per_op: hash,
        speedup: hash / dense.max(f64::MIN_POSITIVE),
    }
}

fn bench_tx_buffers(txs: &[Vec<WorkOp>]) -> BufferSection {
    let template = &txs[0];
    let rounds = txs.len() as u64;

    // Both loops replicate `TxFactory::next_tx` exactly: ops arrive one at
    // a time from the stream, so they are pushed one at a time. What
    // differs is where the buffer comes from.
    let pool = TxBufferPool::new(1, 4);
    pool.put(Vec::with_capacity(16));
    let mut pooled_ns = u64::MAX;
    let mut fresh_ns = u64::MAX;
    for _ in 0..PASSES {
        // Pooled: every buffer taken is returned, so after the first
        // round the pool always has one to recycle — with its capacity
        // grown once and kept.
        let start = Instant::now();
        for _ in 0..rounds {
            let mut buf = pool.get();
            for op in template {
                buf.push(*op);
            }
            black_box(buf.len());
            pool.put(buf);
        }
        pooled_ns = pooled_ns.min(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);

        // Fresh: the pre-rework cost — `Vec::new()` regrown from empty
        // and dropped, every transaction.
        let start = Instant::now();
        for _ in 0..rounds {
            let mut buf: Vec<WorkOp> = Vec::new();
            for op in template {
                buf.push(*op);
            }
            black_box(buf.len());
            drop(buf);
        }
        fresh_ns = fresh_ns.min(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
    }
    let stats = pool.stats();

    let pooled = pooled_ns as f64 / rounds as f64;
    let fresh = fresh_ns as f64 / rounds as f64;
    BufferSection {
        ops_per_tx: template.len() as u64,
        pooled_ns_per_tx: pooled,
        fresh_ns_per_tx: fresh,
        speedup: fresh / pooled.max(f64::MIN_POSITIVE),
        recycled: stats.recycled,
        fresh_allocations: stats.fresh,
    }
}

fn bench_timestamps(tx: u64, batch: u64) -> TimestampSection {
    let mut per_batch_ns = u64::MAX;
    let mut per_tx_ns = u64::MAX;
    for _ in 0..PASSES {
        // Per-batch discipline: one clock read per batch for queue-wait,
        // one per transaction for completion — what the worker loop now
        // does.
        let start = Instant::now();
        let mut acc = 0u64;
        let mut remaining = tx;
        while remaining > 0 {
            let n = batch.min(remaining);
            let batch_start = Instant::now();
            for _ in 0..n {
                let done = Instant::now();
                acc = acc.wrapping_add(done.duration_since(batch_start).as_nanos() as u64);
            }
            remaining -= n;
        }
        black_box(acc);
        per_batch_ns =
            per_batch_ns.min(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);

        // Per-tx discipline: the pre-rework two clock reads per
        // transaction.
        let start = Instant::now();
        let mut acc = 0u64;
        for _ in 0..tx {
            let dequeued = Instant::now();
            let done = Instant::now();
            acc = acc.wrapping_add(done.duration_since(dequeued).as_nanos() as u64);
        }
        black_box(acc);
        per_tx_ns = per_tx_ns.min(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    let per_batch = per_batch_ns as f64 / tx as f64;
    let per_tx = per_tx_ns as f64 / tx as f64;
    TimestampSection {
        per_batch_ns_per_tx: per_batch,
        per_tx_ns_per_tx: per_tx,
        speedup: per_tx / per_batch.max(f64::MIN_POSITIVE),
    }
}

fn bench_serving(tx: u64, batch: usize, seed: u64) -> Vec<ServingSection> {
    use webmm_server::QueueMode;
    [QueueMode::Global, QueueMode::Sharded]
        .into_iter()
        .map(|queue_mode| {
            let server = Server::start(ServerConfig {
                workers: 2,
                queue_capacity: 128,
                queue_mode,
                batch,
                static_bytes: 1 << 20,
                ..ServerConfig::default()
            });
            drive_closed(&server, TxFactory::new(phpbb(), 1024, seed), tx, 4);
            let report = server.finish();
            let identity = report.submitted == report.completed + report.shed;
            assert!(
                identity,
                "accounting identity broken in {} mode: {} != {} + {}",
                report.queue_mode, report.submitted, report.completed, report.shed
            );
            ServingSection {
                queue: report.queue_mode.clone(),
                submitted: report.submitted,
                completed: report.completed,
                shed: report.shed,
                identity_holds: identity,
                tx_per_sec: report.tx_per_sec,
                pool_recycled: report.pool.recycled,
                pool_fresh: report.pool.fresh,
                pool_returned: report.pool.returned,
            }
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    print!(
        "{}",
        heading(&format!(
            "Hot-path microbenchmarks: {} tx/section, batch {}, host parallelism {}",
            args.tx, args.batch, parallelism
        ))
    );

    let txs = generate_ops(args.tx, args.seed);
    let object_table = bench_object_table(&txs);
    let tx_buffers = bench_tx_buffers(&txs);
    let timestamps = bench_timestamps(args.tx, args.batch as u64);
    let serving = bench_serving(args.tx, args.batch, args.seed);

    let mut rows = vec![vec![
        "section".to_string(),
        "optimized".to_string(),
        "baseline".to_string(),
        "speedup".to_string(),
    ]];
    rows.push(vec![
        "object_table (ns/op)".to_string(),
        format!("{:8.2}", object_table.dense_ns_per_op),
        format!("{:8.2}", object_table.hashmap_ns_per_op),
        format!("{:5.2}x", object_table.speedup),
    ]);
    rows.push(vec![
        "tx_buffers (ns/tx)".to_string(),
        format!("{:8.2}", tx_buffers.pooled_ns_per_tx),
        format!("{:8.2}", tx_buffers.fresh_ns_per_tx),
        format!("{:5.2}x", tx_buffers.speedup),
    ]);
    rows.push(vec![
        "timestamps (ns/tx)".to_string(),
        format!("{:8.2}", timestamps.per_batch_ns_per_tx),
        format!("{:8.2}", timestamps.per_tx_ns_per_tx),
        format!("{:5.2}x", timestamps.speedup),
    ]);
    print!("{}", table(&rows));

    for s in &serving {
        println!(
            "serving[{}]: {} submitted = {} completed + {} shed; \
             {:.1} tx/s; pool {} recycled / {} fresh",
            s.queue, s.submitted, s.completed, s.shed, s.tx_per_sec, s.pool_recycled, s.pool_fresh
        );
    }

    let report = HotpathReport {
        tx: args.tx,
        batch: args.batch as u64,
        parallelism,
        object_table,
        tx_buffers,
        timestamps,
        serving,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    });
    println!("\nwrote {}", args.out);
}
