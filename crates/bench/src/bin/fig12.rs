//! Figure 12 — performance improvement from restarting the Ruby processes
//! at various periods, for DDmalloc and glibc, on 8 Xeon cores.
//!
//! Paper: without `freeAll`, DDmalloc's free lists scramble over time and
//! locality decays, so it gains more from periodic restarts (+4.0% at a
//! 500-transaction period) than glibc (+1.1%), whose coalescing keeps the
//! heap tidy; very short periods pay more restart overhead than they
//! recover.

use webmm_alloc::AllocatorKind;
use webmm_bench::{cached_run, paper, BenchOpts};
use webmm_profiler::report::{heading, table};
use webmm_runtime::RunConfig;
use webmm_sim::MachineConfig;
use webmm_workload::rails;

const PERIODS: [Option<u64>; 5] = [Some(20), Some(100), Some(500), Some(2500), None];

fn main() {
    let opts = BenchOpts::from_env();
    let machine = MachineConfig::xeon_clovertown();
    print!(
        "{}",
        heading("Figure 12: improvement from restarting Ruby processes (vs no restart)")
    );
    let mut rows = vec![vec![
        "restart period".to_string(),
        "glibc tx/s".to_string(),
        "vs none".to_string(),
        "ddmalloc tx/s".to_string(),
        "vs none".to_string(),
    ]];
    let mut data = Vec::new();
    for kind in [AllocatorKind::Dl, AllocatorKind::DdMalloc] {
        let mut series = Vec::new();
        for period in PERIODS {
            // The window must span enough transactions for fragmentation
            // (and restarts) to play out; two cores keep a sweep this long
            // tractable (the restart arithmetic is per process anyway).
            let measure = period.unwrap_or(1000).clamp(100, 1200);
            let cfg = RunConfig::new(kind, rails())
                .scale(opts.scale.max(32))
                .cores(2)
                .window(opts.warmup, measure)
                .restart_every(period)
                .no_free_all();
            series.push(cached_run(&machine, &cfg, &opts).throughput.tx_per_sec);
        }
        data.push(series);
    }
    for (i, period) in PERIODS.iter().enumerate() {
        let label = period.map_or("no restart".to_string(), |p| p.to_string());
        let g = data[0][i];
        let d = data[1][i];
        let gbase = data[0][PERIODS.len() - 1];
        let dbase = data[1][PERIODS.len() - 1];
        rows.push(vec![
            label,
            format!("{g:8.1}"),
            format!("{:+.1}%", (g / gbase - 1.0) * 100.0),
            format!("{d:8.1}"),
            format!("{:+.1}%", (d / dbase - 1.0) * 100.0),
        ]);
    }
    print!("{}", table(&rows));
    println!(
        "\npaper at period 500: ddmalloc {:+.1}%, glibc {:+.1}%",
        paper::FIG12_DD_RESTART_500,
        paper::FIG12_GLIBC_RESTART_500
    );
}
