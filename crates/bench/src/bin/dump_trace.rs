//! Utility: dump a workload's operation stream as a JSON-lines trace.
//!
//! Usage: `dump_trace <workload> [transactions] [scale] [seed] > out.jsonl`
//!
//! Traces are self-describing artifacts for external analysis (or for
//! replaying one exact stream against several allocators via
//! `webmm_workload::trace::TraceReplay`).

use std::io::Write;
use webmm_workload::{by_name, trace, TxStream};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(spec) = args.get(1).and_then(|n| by_name(n)) else {
        eprintln!("usage: dump_trace <workload> [transactions] [scale] [seed]");
        eprintln!(
            "workloads: {}",
            webmm_workload::php_workloads()
                .iter()
                .map(|w| format!("{:?}", w.name))
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    };
    let transactions: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let scale: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(64);
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(42);

    let mut stream = TxStream::new(spec, scale, seed);
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    trace::write_trace(&mut stream, transactions, &mut out).expect("write trace");
    out.flush().expect("flush");
    let st = stream.stats();
    eprintln!(
        "wrote {} transactions: {} mallocs, {} frees, {} reallocs (scale 1/{scale})",
        st.transactions, st.mallocs, st.frees, st.reallocs
    );
}
