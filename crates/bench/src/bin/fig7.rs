//! Figure 7 — throughput of MediaWiki (read-only) with increasing numbers
//! of cores on Xeon and Niagara.
//!
//! The paper's scalability picture: DDmalloc roughly ties the region
//! allocator at low core counts, then pulls ahead as the region
//! allocator's bus traffic starts to bite.

use webmm_alloc::AllocatorKind;
use webmm_bench::{both_machines, php_run, BenchOpts};
use webmm_profiler::report::{heading, table};
use webmm_workload::mediawiki_read;

fn main() {
    let opts = BenchOpts::from_env();
    for machine in both_machines() {
        print!(
            "{}",
            heading(&format!(
                "Figure 7: MediaWiki (read only) throughput vs cores, {}",
                machine.name
            ))
        );
        let mut rows = vec![vec![
            "cores".to_string(),
            "default (tx/s)".to_string(),
            "region".to_string(),
            "ddmalloc".to_string(),
            "best".to_string(),
        ]];
        for cores in [1u32, 2, 4, 8] {
            let mut tps = Vec::new();
            for kind in AllocatorKind::PHP_STUDY {
                let r = php_run(&machine, kind, mediawiki_read(), cores, &opts);
                tps.push((kind.id(), r.throughput.tx_per_sec));
            }
            let best = tps
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(id, _)| (*id).to_string())
                .unwrap_or_default();
            rows.push(vec![
                cores.to_string(),
                format!("{:8.1}", tps[0].1),
                format!("{:8.1}", tps[1].1),
                format!("{:8.1}", tps[2].1),
                best,
            ]);
        }
        print!("{}", table(&rows));
    }
    println!("\npaper shape: region ≈ ddmalloc up to 2 cores (Xeon) / 4 cores (Niagara);");
    println!("ddmalloc scales best and wins at 8 cores on both platforms.");
}
