//! Ablation G — GNU obstack vs. the paper's own region allocator (§4.1).
//!
//! "We also evaluated the GNU obstack as another region-based allocator.
//! However our own region-based allocator outperformed the obstack for the
//! PHP applications. Therefore we used only our own region-based allocator
//! in this paper." This harness checks that claim: the obstack's small
//! chunks hit the refill path constantly where the 256 MB region almost
//! never does.

use webmm_alloc::AllocatorKind;
use webmm_bench::{php_run, BenchOpts};
use webmm_profiler::report::{heading, table};
use webmm_sim::MachineConfig;
use webmm_workload::php_workloads;

fn main() {
    let opts = BenchOpts::from_env();
    let machine = MachineConfig::xeon_clovertown();
    print!(
        "{}",
        heading("Ablation: GNU obstack vs 256 MB region allocator (8 Xeon cores)")
    );
    let mut rows = vec![vec![
        "workload".to_string(),
        "region tx/s".to_string(),
        "obstack tx/s".to_string(),
        "region advantage".to_string(),
        "mm instr: obstack/region".to_string(),
    ]];
    for wl in php_workloads() {
        let region = php_run(&machine, AllocatorKind::Region, wl.clone(), 8, &opts);
        let obstack = php_run(&machine, AllocatorKind::Obstack, wl.clone(), 8, &opts);
        let n = |r: &webmm_runtime::RunResult| {
            r.total_events().mm.instructions as f64 / (r.measured_tx as f64 * r.events.len() as f64)
        };
        rows.push(vec![
            wl.name.to_string(),
            format!("{:8.1}", region.throughput.tx_per_sec),
            format!("{:8.1}", obstack.throughput.tx_per_sec),
            format!(
                "{:+.1}%",
                (region.throughput.tx_per_sec / obstack.throughput.tx_per_sec - 1.0) * 100.0
            ),
            format!("{:.2}x", n(&obstack) / n(&region).max(1.0)),
        ]);
    }
    print!("{}", table(&rows));
    println!("\npaper (§4.1): the paper's 256 MB-chunk region allocator outperformed the");
    println!("obstack on the PHP applications, so only the former appears in its figures.");
}
