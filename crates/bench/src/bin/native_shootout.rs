//! Native shootout: the paper's allocators on real threads.
//!
//! Sweeps worker count × allocator family × ingress queue mode through
//! the `webmm-server` native serving harness — actual OS threads, one
//! heap per worker, a bounded ingress queue — and reports wall-clock
//! throughput and admission-to-completion latency quantiles. The
//! companion to the simulated Figure 5 sweep: where `fig5` predicts
//! scaling from the bus model, this measures the allocators' real
//! single-thread costs and scheduling behaviour on the host. Running
//! both queue modes on identical workloads is how the sharded
//! work-stealing ingress is A/B'd against the single global lock.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p webmm-bench --bin native_shootout -- \
//!     --workers 1,2,4 --tx 10000 [--scale 1024] [--seed 42] \
//!     [--policy block|reject|shed-oldest] [--capacity 128] \
//!     [--queue global|sharded|both] [--batch 32] \
//!     [--out BENCH_native.json] \
//!     [--obs-interval 10ms] [--obs-out OBS_native.jsonl] \
//!     [--trace-in TRACE.jsonl]
//! ```
//!
//! With `--trace-in`, every cell replays the given JSONL op trace
//! (e.g. one recorded by `net_shootout --trace-out`) instead of
//! generating ops, and the transaction count comes from the trace — the
//! offline half of a network-vs-in-process A/B on identical operations.
//!
//! Writes every cell of the sweep to `BENCH_native.json` (allocator,
//! workers, queue mode, tx_per_sec, steal counters, the host's available
//! parallelism, latency summary). With `--obs-interval`, every cell runs
//! with live telemetry attached: a sampler snapshots queue depth,
//! sliding-window latency quantiles and per-worker heap occupancy at
//! that interval, the last sample of each cell is rendered as a
//! dashboard, and `--obs-out` collects the full time series of all cells
//! into one JSONL file (the `run` field names the cell, e.g.
//! `ddmalloc-sharded-w4`).

use std::time::Duration;
use webmm_alloc::AllocatorKind;
use webmm_profiler::report::{heading, table};
use webmm_server::{
    drive_closed, render_dashboard, AdmissionPolicy, LatencySummary, ObsConfig, QueueMode, Server,
    ServerConfig, TxFactory,
};
use webmm_workload::phpbb;

/// One cell of the sweep, as serialized into `BENCH_native.json`. The
/// latency block is the same [`LatencySummary`] the live telemetry
/// samples embed, so offline and live JSON share one schema.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct NativeBenchEntry {
    allocator: String,
    workers: u64,
    /// Ingress implementation this cell ran on (`global` or `sharded`).
    queue: String,
    tx_per_sec: f64,
    latency: LatencySummary,
    completed: u64,
    shed: u64,
    /// Transactions served by a worker other than the one whose shard
    /// admitted them (0 in global mode).
    steals: u64,
    /// `steals / completed` — how much of the throughput came through
    /// the stealing path.
    steal_rate: f64,
    /// `std::thread::available_parallelism()` on the machine that
    /// produced this entry: scaling curves are only meaningful relative
    /// to the hardware concurrency that was actually available.
    parallelism: u64,
}

struct Args {
    workers: Vec<usize>,
    tx: u64,
    scale: u32,
    seed: u64,
    policy: AdmissionPolicy,
    capacity: usize,
    queues: Vec<QueueMode>,
    batch: usize,
    out: String,
    obs_interval: Option<Duration>,
    obs_out: Option<String>,
    trace_in: Option<String>,
}

/// Parses `10ms`, `1s`, `250us`, `5000ns` (bare numbers: milliseconds).
fn parse_duration(v: &str) -> Option<Duration> {
    let (digits, unit) = v.split_at(v.find(|c: char| !c.is_ascii_digit()).unwrap_or(v.len()));
    let n: u64 = digits.parse().ok()?;
    match unit {
        "ns" => Some(Duration::from_nanos(n)),
        "us" => Some(Duration::from_micros(n)),
        "ms" | "" => Some(Duration::from_millis(n)),
        "s" => Some(Duration::from_secs(n)),
        _ => None,
    }
}

/// Parses `1,2,4,8` (or a single count) into the worker sweep.
fn parse_workers(v: &str) -> Option<Vec<usize>> {
    let points: Vec<usize> = v
        .split(',')
        .map(|p| p.trim().parse().ok())
        .collect::<Option<_>>()?;
    if points.is_empty() || points.contains(&0) {
        return None;
    }
    Some(points)
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: vec![1, 2, 4],
        tx: 10_000,
        scale: 1024,
        seed: 42,
        policy: AdmissionPolicy::Block,
        capacity: 128,
        queues: vec![QueueMode::Global, QueueMode::Sharded],
        batch: 32,
        out: "BENCH_native.json".to_string(),
        obs_interval: None,
        obs_out: None,
        trace_in: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--workers" => {
                let v = value();
                args.workers = parse_workers(&v).unwrap_or_else(|| {
                    eprintln!("bad --workers `{v}` (comma list of counts, e.g. 1,2,4)");
                    std::process::exit(2);
                });
            }
            "--tx" => args.tx = value().parse().expect("--tx takes a count"),
            "--scale" => args.scale = value().parse().expect("--scale takes a divisor"),
            "--seed" => args.seed = value().parse().expect("--seed takes a u64"),
            "--capacity" => args.capacity = value().parse().expect("--capacity takes a count"),
            "--batch" => args.batch = value().parse().expect("--batch takes a count"),
            "--policy" => {
                let v = value();
                args.policy = AdmissionPolicy::from_id(&v).unwrap_or_else(|| {
                    eprintln!("unknown policy `{v}` (block|reject|shed-oldest)");
                    std::process::exit(2);
                });
            }
            "--queue" => {
                let v = value();
                args.queues = match v.as_str() {
                    "both" => vec![QueueMode::Global, QueueMode::Sharded],
                    _ => vec![QueueMode::from_id(&v).unwrap_or_else(|| {
                        eprintln!("unknown queue mode `{v}` (global|sharded|both)");
                        std::process::exit(2);
                    })],
                };
            }
            "--out" => args.out = value(),
            "--obs-interval" => {
                let v = value();
                args.obs_interval = Some(parse_duration(&v).unwrap_or_else(|| {
                    eprintln!("bad --obs-interval `{v}` (e.g. 10ms, 1s)");
                    std::process::exit(2);
                }));
            }
            "--obs-out" => args.obs_out = Some(value()),
            "--trace-in" => args.trace_in = Some(value()),
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!(
                    "usage: native_shootout [--workers N,N,..] [--tx N] [--scale N] [--seed N] \
                     [--policy block|reject|shed-oldest] [--capacity N] \
                     [--queue global|sharded|both] [--batch N] [--out FILE] \
                     [--obs-interval DUR] [--obs-out FILE] [--trace-in FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    // --obs-out alone implies observation at the default interval.
    if args.obs_out.is_some() && args.obs_interval.is_none() {
        args.obs_interval = Some(ObsConfig::default().interval);
    }
    args
}

fn main() {
    let args = parse_args();
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    // A replay trace overrides both the generator and the tx count:
    // every cell must execute exactly the recorded operations.
    let trace_ops = args.trace_in.as_ref().map(|path| {
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open --trace-in {path}: {e}");
            std::process::exit(1);
        });
        webmm_workload::trace::read_trace(std::io::BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("cannot parse --trace-in {path}: {e}");
            std::process::exit(1);
        })
    });
    let tx = trace_ops.as_ref().map_or(args.tx, |ops| {
        webmm_workload::trace::count_transactions(ops)
    });
    let source = match &args.trace_in {
        Some(path) => format!("replaying {path}"),
        None => format!("phpBB, scale 1/{}", args.scale),
    };
    print!(
        "{}",
        heading(&format!(
            "Native shootout: {source}, {tx} tx/cell, policy {}, host parallelism {}",
            args.policy.id(),
            parallelism,
        ))
    );

    let mut rows = vec![vec![
        "allocator".to_string(),
        "queue".to_string(),
        "workers".to_string(),
        "tx/s".to_string(),
        "p50 us".to_string(),
        "p95 us".to_string(),
        "p99 us".to_string(),
        "shed".to_string(),
        "steal %".to_string(),
    ]];
    let mut entries = Vec::new();
    let mut obs_lines: Vec<String> = Vec::new();
    for kind in AllocatorKind::PHP_STUDY {
        for &queue_mode in &args.queues {
            for &workers in &args.workers {
                let obs = args.obs_interval.map(|interval| ObsConfig {
                    interval,
                    run: format!("{}-{}-w{workers}", kind.id(), queue_mode.id()),
                    ..ObsConfig::default()
                });
                let server = Server::start(ServerConfig {
                    kind,
                    workers,
                    queue_capacity: args.capacity,
                    policy: args.policy,
                    queue_mode,
                    batch: args.batch,
                    static_bytes: 2 << 20,
                    obs,
                });
                let factory = match &trace_ops {
                    Some(ops) => TxFactory::from_trace(ops.clone()),
                    None => TxFactory::new(phpbb(), args.scale, args.seed),
                };
                let clients = (workers * 2).max(2);
                drive_closed(&server, factory, tx, clients);
                let (report, samples) = server.finish_with_obs();
                assert_eq!(
                    report.completed + report.shed,
                    report.submitted,
                    "accounting identity broken for {kind} ({}) @ {workers} workers",
                    queue_mode.id(),
                );
                if let Some(last) = samples.last() {
                    print!("{}", render_dashboard(last));
                }
                for sample in &samples {
                    obs_lines.push(serde_json::to_string(sample).expect("sample serializes"));
                }
                let steal_rate = if report.completed > 0 {
                    report.steals as f64 / report.completed as f64
                } else {
                    0.0
                };
                rows.push(vec![
                    report.allocator.clone(),
                    report.queue_mode.clone(),
                    format!("{workers}"),
                    format!("{:10.1}", report.tx_per_sec),
                    format!("{:8.1}", report.latency.p50_ns as f64 / 1e3),
                    format!("{:8.1}", report.latency.p95_ns as f64 / 1e3),
                    format!("{:8.1}", report.latency.p99_ns as f64 / 1e3),
                    format!("{}", report.shed),
                    format!("{:5.1}", steal_rate * 100.0),
                ]);
                entries.push(NativeBenchEntry {
                    allocator: report.allocator.clone(),
                    workers: report.workers,
                    queue: report.queue_mode.clone(),
                    tx_per_sec: report.tx_per_sec,
                    latency: report.latency,
                    completed: report.completed,
                    shed: report.shed,
                    steals: report.steals,
                    steal_rate,
                    parallelism,
                });
            }
        }
    }
    print!("{}", table(&rows));

    let json = serde_json::to_string_pretty(&entries).expect("entries serialize");
    std::fs::write(&args.out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    });
    println!("\nwrote {} cells to {}", entries.len(), args.out);
    if let Some(obs_out) = &args.obs_out {
        let mut body = obs_lines.join("\n");
        body.push('\n');
        std::fs::write(obs_out, body).unwrap_or_else(|e| {
            eprintln!("cannot write {obs_out}: {e}");
            std::process::exit(1);
        });
        println!("wrote {} telemetry samples to {obs_out}", obs_lines.len());
    }
    println!("note: native numbers measure real host execution; see README");
    println!("\"Simulated vs native measurement\" for how they relate to fig5.");
}
