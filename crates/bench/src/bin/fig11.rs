//! Figure 11 — breakdown of CPU time per transaction for Ruby on Rails on
//! 8 Xeon cores, normalized against glibc.
//!
//! Paper: "DDmalloc obviously spent the least time on memory operations
//! among the tested allocators by avoiding the costs for defragmentation
//! activities" — even against allocators that only *delay* it (TCmalloc).

use webmm_alloc::AllocatorKind;
use webmm_bench::{cached_run, BenchOpts};
use webmm_profiler::breakdown;
use webmm_profiler::report::{heading, table};
use webmm_runtime::RunConfig;
use webmm_sim::MachineConfig;
use webmm_workload::rails;

fn main() {
    let opts = BenchOpts::from_env();
    let machine = MachineConfig::xeon_clovertown();
    print!(
        "{}",
        heading("Figure 11: Ruby on Rails CPU breakdown (normalized to glibc = 100)")
    );
    let measure = opts.measure.max(64);
    let runs: Vec<_> = AllocatorKind::RUBY_STUDY
        .into_iter()
        .map(|kind| {
            let cfg = RunConfig::new(kind, rails())
                .scale(opts.scale)
                .cores(8)
                .window(opts.warmup, measure)
                .restart_every(Some(500))
                .no_free_all();
            cached_run(&machine, &cfg, &opts)
        })
        .collect();
    let norm = breakdown(&runs[0]).total() / 100.0;
    let mut rows = vec![vec![
        "allocator".to_string(),
        "mm".to_string(),
        "others".to_string(),
        "total".to_string(),
    ]];
    let mut mm_values = Vec::new();
    for r in &runs {
        let b = breakdown(r);
        mm_values.push((r.allocator.clone(), b.mm_cycles));
        rows.push(vec![
            r.allocator.clone(),
            format!("{:5.1}", b.mm_cycles / norm),
            format!("{:5.1}", b.other_cycles / norm),
            format!("{:5.1}", b.total() / norm),
        ]);
    }
    print!("{}", table(&rows));
    let least = mm_values
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(n, _)| n.clone())
        .unwrap_or_default();
    println!("\nleast memory-management time: {least} (paper: our DDmalloc)");
}
