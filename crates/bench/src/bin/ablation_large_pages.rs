//! Ablation B — DDmalloc's large-page heap on Xeon.
//!
//! The paper disables large pages on Xeon (Linux could not grant them
//! transparently) but reports: "When we enabled the optimization using
//! large pages on Xeon, the improvement increased to 11.7% (9.0% on
//! average)" and "TLB misses were reduced by more than 60% compared to the
//! default allocator."

use webmm_alloc::{AllocatorKind, DdConfig};
use webmm_bench::{cached_run, php_run, BenchOpts};
use webmm_profiler::report::{heading, table};
use webmm_runtime::RunConfig;
use webmm_sim::MachineConfig;
use webmm_workload::php_workloads;

fn main() {
    let opts = BenchOpts::from_env();
    let machine = MachineConfig::xeon_clovertown();
    print!(
        "{}",
        heading("Ablation: DDmalloc with 4 MB pages on Xeon (8 cores)")
    );
    let mut rows = vec![vec![
        "workload".to_string(),
        "dd 4K pages".to_string(),
        "dd 4M pages".to_string(),
        "gain".to_string(),
        "D-TLB miss change".to_string(),
    ]];
    for wl in php_workloads() {
        let small = php_run(&machine, AllocatorKind::DdMalloc, wl.clone(), 8, &opts);
        let cfg = RunConfig::new(AllocatorKind::DdMalloc, wl.clone())
            .scale(opts.scale)
            .cores(8)
            .window(opts.warmup, opts.measure)
            .dd_config(DdConfig {
                large_pages: true,
                ..DdConfig::default()
            });
        let large = cached_run(&machine, &cfg, &opts);
        let n = |r: &webmm_runtime::RunResult| {
            r.total_events().total().dtlb_misses as f64
                / (r.measured_tx as f64 * r.events.len() as f64)
        };
        let tlb_small = n(&small).max(1e-9);
        rows.push(vec![
            wl.name.to_string(),
            format!("{:8.1}", small.throughput.tx_per_sec),
            format!("{:8.1}", large.throughput.tx_per_sec),
            format!(
                "{:+.1}%",
                (large.throughput.tx_per_sec / small.throughput.tx_per_sec - 1.0) * 100.0
            ),
            format!("{:+.1}%", (n(&large) / tlb_small - 1.0) * 100.0),
        ]);
    }
    print!("{}", table(&rows));
    println!("\npaper: enabling large pages on Xeon lifted DDmalloc's average gain");
    println!("from 7.7% to 9.0% and cut D-TLB misses by more than 60%.");
}
