//! The paper's published numbers, for side-by-side comparison.
//!
//! Table 4 is printed in full in the paper (throughput with 1 and 8 cores
//! for every workload, allocator, and platform); the headline percentages
//! of the abstract and §4.3/§4.4 are also recorded here so each harness
//! can print paper-vs-measured without hand-copying.

/// One (workload, allocator) row of the paper's Table 4.
#[derive(Copy, Clone, Debug)]
pub struct Table4Entry {
    /// Workload name (matches `WorkloadSpec::name`).
    pub workload: &'static str,
    /// Allocator id (matches `AllocatorKind::id`).
    pub allocator: &'static str,
    /// Xeon, one core: transactions per second.
    pub xeon_1c: f64,
    /// Xeon, eight cores.
    pub xeon_8c: f64,
    /// Niagara, one core.
    pub niagara_1c: f64,
    /// Niagara, eight cores.
    pub niagara_8c: f64,
}

/// The paper's Table 4, verbatim.
pub const TABLE4: &[Table4Entry] = &[
    e(
        "MediaWiki (read only)",
        "php-default",
        25.3,
        156.6,
        14.9,
        111.0,
    ),
    e("MediaWiki (read only)", "region", 26.4, 145.7, 16.5, 113.3),
    e(
        "MediaWiki (read only)",
        "ddmalloc",
        26.4,
        167.9,
        16.5,
        122.2,
    ),
    e(
        "MediaWiki (read/write)",
        "php-default",
        11.7,
        79.6,
        5.2,
        40.0,
    ),
    e("MediaWiki (read/write)", "region", 12.5, 59.7, 5.5, 39.6),
    e("MediaWiki (read/write)", "ddmalloc", 12.7, 85.5, 5.6, 43.5),
    e("SugarCRM", "php-default", 19.4, 134.6, 8.1, 64.4),
    e("SugarCRM", "region", 20.8, 98.0, 9.2, 62.3),
    e("SugarCRM", "ddmalloc", 21.1, 148.4, 8.8, 69.7),
    e("eZ Publish", "php-default", 28.5, 178.6, 13.6, 99.4),
    e("eZ Publish", "region", 31.8, 138.3, 16.5, 94.4),
    e("eZ Publish", "ddmalloc", 32.2, 196.3, 15.8, 110.8),
    e("phpBB", "php-default", 62.6, 402.4, 30.5, 234.0),
    e("phpBB", "region", 69.2, 393.5, 35.9, 259.1),
    e("phpBB", "ddmalloc", 69.5, 447.2, 34.0, 259.8),
    e("CakePHP", "php-default", 28.3, 191.6, 12.6, 96.7),
    e("CakePHP", "region", 31.6, 185.7, 13.8, 101.6),
    e("CakePHP", "ddmalloc", 30.8, 206.6, 13.6, 103.8),
    e("SPECweb2005", "php-default", 188.6, 970.0, 115.5, 699.3),
    e("SPECweb2005", "region", 197.3, 960.4, 118.3, 705.4),
    e("SPECweb2005", "ddmalloc", 194.3, 977.3, 118.4, 709.2),
];

const fn e(
    workload: &'static str,
    allocator: &'static str,
    xeon_1c: f64,
    xeon_8c: f64,
    niagara_1c: f64,
    niagara_8c: f64,
) -> Table4Entry {
    Table4Entry {
        workload,
        allocator,
        xeon_1c,
        xeon_8c,
        niagara_1c,
        niagara_8c,
    }
}

/// Looks up a Table 4 entry.
pub fn table4(workload: &str, allocator: &str) -> Option<&'static Table4Entry> {
    TABLE4
        .iter()
        .find(|t| t.workload == workload && t.allocator == allocator)
}

/// Relative throughput over the default allocator at the paper's scale,
/// in percent — the series Figure 5 plots.
pub fn fig5_relative(
    workload: &str,
    allocator: &str,
    xeon: bool,
    eight_cores: bool,
) -> Option<f64> {
    let ours = table4(workload, allocator)?;
    let base = table4(workload, "php-default")?;
    let (o, b) = match (xeon, eight_cores) {
        (true, true) => (ours.xeon_8c, base.xeon_8c),
        (true, false) => (ours.xeon_1c, base.xeon_1c),
        (false, true) => (ours.niagara_8c, base.niagara_8c),
        (false, false) => (ours.niagara_1c, base.niagara_1c),
    };
    Some((o / b - 1.0) * 100.0)
}

/// §4.3 headline: the region allocator cut memory-management CPU time by
/// this fraction on average (Figure 6).
pub const FIG6_REGION_MM_CUT: f64 = 0.85;
/// §4.3 headline: DDmalloc cut memory-management CPU time by 56% on
/// average and up to 65%.
pub const FIG6_DD_MM_CUT_AVG: f64 = 0.56;

/// Figure 9 headlines: memory consumption relative to the default
/// allocator (average over workloads).
pub const FIG9_DD_RATIO_AVG: f64 = 1.24;
/// Region-based average ratio (≈3×; worst case above 7×).
pub const FIG9_REGION_RATIO_AVG: f64 = 3.0;

/// Figure 10: Ruby on Rails throughput gain over glibc on 8 Xeon cores.
pub const FIG10_DD_OVER_GLIBC: f64 = 13.6;
/// Figure 10: DDmalloc over the next best allocator (TCmalloc).
pub const FIG10_DD_OVER_TCMALLOC: f64 = 5.3;

/// Figure 12: throughput improvement from restarting every 500
/// transactions versus never restarting.
pub const FIG12_DD_RESTART_500: f64 = 4.0;
/// Figure 12: the same for glibc.
pub const FIG12_GLIBC_RESTART_500: f64 = 1.1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_is_complete() {
        assert_eq!(TABLE4.len(), 21); // 7 workloads x 3 allocators
        for wl in webmm_workload::php_workloads() {
            for id in ["php-default", "region", "ddmalloc"] {
                assert!(table4(wl.name, id).is_some(), "{} / {}", wl.name, id);
            }
        }
    }

    #[test]
    fn fig5_relatives_match_the_parenthesized_percentages() {
        // The paper prints (+7.2%) for DDmalloc on MediaWiki r/o, Xeon 8c.
        let v = fig5_relative("MediaWiki (read only)", "ddmalloc", true, true).unwrap();
        assert!((v - 7.2).abs() < 0.1, "{v}");
        // And (-27.2%) for region on SugarCRM, Xeon 8c.
        let v = fig5_relative("SugarCRM", "region", true, true).unwrap();
        assert!((v + 27.2).abs() < 0.1, "{v}");
        // And (+10.8%) for region on phpBB, Niagara 8c.
        let v = fig5_relative("phpBB", "region", false, true).unwrap();
        assert!((v - 10.8).abs() < 0.1, "{v}");
    }

    #[test]
    fn speedups_match_the_paper() {
        // Paper: default allocator speedups 6.2x (Xeon) / 7.5x (Niagara)
        // on MediaWiki read-only.
        let t = table4("MediaWiki (read only)", "php-default").unwrap();
        assert!((t.xeon_8c / t.xeon_1c - 6.2).abs() < 0.1);
        assert!((t.niagara_8c / t.niagara_1c - 7.5).abs() < 0.1);
    }
}
