//! Criterion micro-benchmarks of raw allocator operations (host time).
//!
//! These measure the *implementation* cost of each allocator's fast paths
//! in this repository — complementary to the simulated-instruction costs
//! that drive the paper reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use webmm_alloc::AllocatorKind;
use webmm_sim::PlainPort;

fn bench_malloc_free_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("malloc_free_churn_64B");
    for kind in AllocatorKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.id()), &kind, |b, &kind| {
            let mut alloc = kind.build(0);
            let mut port = PlainPort::new();
            let per_object_free = alloc.alloc_traits().per_object_free;
            let bulk = alloc.alloc_traits().bulk_free;
            // Warm the heap.
            let warm: Vec<_> = (0..256)
                .map(|_| alloc.malloc(&mut port, 64).unwrap())
                .collect();
            if per_object_free {
                for a in warm {
                    alloc.free(&mut port, a);
                }
            } else if bulk {
                alloc.free_all(&mut port);
            }
            b.iter(|| {
                let a = alloc.malloc(&mut port, 64).unwrap();
                if per_object_free {
                    alloc.free(&mut port, a);
                } else if bulk {
                    alloc.free_all(&mut port);
                }
                a
            });
        });
    }
    group.finish();
}

fn bench_transaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("transaction_1k_objects");
    group.sample_size(20);
    for kind in [
        AllocatorKind::PhpDefault,
        AllocatorKind::Region,
        AllocatorKind::DdMalloc,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.id()), &kind, |b, &kind| {
            let mut alloc = kind.build(0);
            let mut port = PlainPort::new();
            let per_object_free = alloc.alloc_traits().per_object_free;
            b.iter(|| {
                // A miniature transaction: allocate 1000 objects of mixed
                // sizes, free 85% of them per-object, bulk-free the rest.
                let mut live = Vec::with_capacity(1000);
                for i in 0..1000u64 {
                    let size = 16 + (i * 37) % 480;
                    live.push(alloc.malloc(&mut port, size).unwrap());
                    if per_object_free && i % 8 != 0 {
                        if let Some(a) = live.pop() {
                            alloc.free(&mut port, a);
                        }
                    }
                }
                live.clear();
                alloc.free_all(&mut port);
            });
        });
    }
    group.finish();
}

fn bench_free_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("free_all_after_1k");
    group.sample_size(20);
    for kind in [
        AllocatorKind::PhpDefault,
        AllocatorKind::Region,
        AllocatorKind::DdMalloc,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.id()), &kind, |b, &kind| {
            let mut alloc = kind.build(0);
            let mut port = PlainPort::new();
            b.iter(|| {
                for i in 0..1000u64 {
                    alloc.malloc(&mut port, 16 + (i * 13) % 240).unwrap();
                }
                alloc.free_all(&mut port);
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_malloc_free_churn,
    bench_transaction,
    bench_free_all
);
criterion_main!(benches);
