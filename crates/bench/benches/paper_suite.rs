//! `cargo bench` entry point that regenerates a compact version of every
//! table and figure in the paper (scale 32 unless `WEBMM_SCALE` overrides).
//!
//! Each `fig*`/`table*`/`ablation_*` binary in `src/bin` produces the full
//! version of one artifact; this target strings the headline comparisons
//! together so one `cargo bench` run exercises the whole reproduction and
//! prints the qualitative checks.

use webmm_alloc::AllocatorKind;
use webmm_bench::{both_machines, cached_run, paper, php_run, BenchOpts};
use webmm_profiler::{breakdown, event_deltas, memory_consumption};
use webmm_runtime::RunConfig;
use webmm_sim::MachineConfig;
use webmm_workload::{mediawiki_read, php_workloads, rails};

fn main() {
    let mut opts = BenchOpts::from_env();
    if std::env::var("WEBMM_SCALE").is_err() {
        opts.scale = 32; // compact default for `cargo bench`
    }
    println!(
        "webmm paper suite (scale {}, window {}+{})",
        opts.scale, opts.warmup, opts.measure
    );

    fig5_and_friends(&opts);
    fig7(&opts);
    ruby_study(&opts);
    println!("\npaper suite complete. Full per-figure harnesses: cargo run --release -p webmm-bench --bin fig5 (etc.)");
}

fn fig5_and_friends(opts: &BenchOpts) {
    println!("\n--- Figures 5/6/8/9 headline checks (8 cores) ---");
    for machine in both_machines() {
        let xeon = machine.prefetch.is_some();
        println!("[{}]", machine.name);
        for wl in php_workloads() {
            let base = php_run(&machine, AllocatorKind::PhpDefault, wl.clone(), 8, opts);
            let reg = php_run(&machine, AllocatorKind::Region, wl.clone(), 8, opts);
            let dd = php_run(&machine, AllocatorKind::DdMalloc, wl.clone(), 8, opts);
            let rel = |r: &webmm_runtime::RunResult| {
                (r.throughput.tx_per_sec / base.throughput.tx_per_sec - 1.0) * 100.0
            };
            let d_reg = event_deltas(&reg, &base);
            let mem = |r: &webmm_runtime::RunResult| {
                memory_consumption(r) as f64 / memory_consumption(&base) as f64
            };
            println!(
                "  {:24} region {:+6.1}% (paper {:+6.1}%)  dd {:+6.1}% (paper {:+6.1}%)  regionΔbus {:+6.1}%  mm share {:4.1}%  mem r/d {:.1}x/{:.2}x",
                wl.name,
                rel(&reg),
                paper::fig5_relative(wl.name, "region", xeon, true).unwrap_or(f64::NAN),
                rel(&dd),
                paper::fig5_relative(wl.name, "ddmalloc", xeon, true).unwrap_or(f64::NAN),
                d_reg.bus_txns,
                100.0 * breakdown(&base).mm_share(),
                mem(&reg),
                mem(&dd),
            );
        }
    }
}

fn fig7(opts: &BenchOpts) {
    println!("\n--- Figure 7: MediaWiki r/o core sweep ---");
    for machine in both_machines() {
        print!("[{}]", machine.name);
        for cores in [1u32, 2, 4, 8] {
            let base = php_run(
                &machine,
                AllocatorKind::PhpDefault,
                mediawiki_read(),
                cores,
                opts,
            );
            let dd = php_run(
                &machine,
                AllocatorKind::DdMalloc,
                mediawiki_read(),
                cores,
                opts,
            );
            print!(
                "  {}c: dd {:+.1}%",
                cores,
                (dd.throughput.tx_per_sec / base.throughput.tx_per_sec - 1.0) * 100.0
            );
        }
        println!();
    }
}

fn ruby_study(opts: &BenchOpts) {
    println!("\n--- Figures 10/11: Ruby on Rails, 8 Xeon cores ---");
    let machine = MachineConfig::xeon_clovertown();
    let measure = opts.measure.max(64);
    let mut base = None;
    for kind in AllocatorKind::RUBY_STUDY {
        let cfg = RunConfig::new(kind, rails())
            .scale(opts.scale)
            .cores(8)
            .window(opts.warmup, measure)
            .restart_every(Some(500))
            .no_free_all();
        let r = cached_run(&machine, &cfg, opts);
        let b = *base.get_or_insert(r.throughput.tx_per_sec);
        println!(
            "  {:12} {:8.1} tx/s ({:+5.1}%)  mm {:4.1}%",
            r.allocator_id,
            r.throughput.tx_per_sec,
            (r.throughput.tx_per_sec / b - 1.0) * 100.0,
            100.0 * breakdown(&r).mm_share(),
        );
    }
    println!("  paper: dd +13.6% over glibc, +5.3% over TCmalloc");
}
