//! Network serving in a dozen lines: the paper's three PHP-study
//! allocators behind a real TCP tier on loopback.
//!
//! For each allocator this stands up the native worker pool, wraps it in
//! the `webmm-net` front-end on `127.0.0.1:0`, and drives it with the
//! network load generator over persistent connections carrying real
//! phpBB op streams. It prints client-observed throughput and latency
//! next to the server-observed numbers — the gap between the two columns
//! *is* the serving tier (framing, syscalls, handler hand-off) — and
//! reconciles the books across the wire: every response status must
//! match a queue admission outcome one-for-one.
//!
//! ```text
//! cargo run --release --example net_serving -- [--open RATE_TX_PER_SEC]
//! ```
//!
//! With `--open`, arrivals follow a fixed schedule regardless of
//! completions (the web-facing model) and the server sheds its oldest
//! queued transactions under overload; watch the `shed` column fill in
//! while the accounting still balances.

use webmm::alloc::AllocatorKind;
use webmm::net::{
    run_client, ClientWorkload, LoadMode, NetClientConfig, NetServer, NetServerConfig,
};
use webmm::server::{AdmissionPolicy, Server, ServerConfig};
use webmm::workload::phpbb;

fn main() {
    let mut rate: Option<f64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--open" => {
                let v = it.next().expect("--open takes a tx/sec rate");
                rate = Some(v.parse().expect("rate must be a number"));
            }
            other => panic!("unknown flag `{other}` (try --open RATE)"),
        }
    }

    let workers = 4;
    let conns = 4;
    let total_tx = 200;
    let mode = match rate {
        Some(r) => format!("open loop @ {r} tx/s, shed-oldest"),
        None => "closed loop, blocking admission".to_string(),
    };
    println!("network serving: phpBB over loopback TCP, {workers} workers, {conns} connections, {total_tx} tx, {mode}\n");
    println!(
        "{:<40} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "allocator", "tx/s", "client p99us", "server p99us", "shed", "KiB"
    );
    for kind in AllocatorKind::PHP_STUDY {
        let server = Server::start(ServerConfig {
            kind,
            workers,
            queue_capacity: 32,
            policy: match rate {
                Some(_) => AdmissionPolicy::ShedOldest,
                None => AdmissionPolicy::Block,
            },
            static_bytes: 2 << 20,
            ..ServerConfig::default()
        });
        let tier = NetServer::bind(
            server,
            "127.0.0.1:0",
            NetServerConfig {
                handlers: conns, // one handler per persistent connection
                ..NetServerConfig::default()
            },
        )
        .expect("bind loopback");
        let started = std::time::Instant::now();
        let client = run_client(
            tier.local_addr(),
            &ClientWorkload::Stream {
                spec: phpbb(),
                scale: 1024,
                seed: 42,
            },
            &NetClientConfig {
                connections: conns,
                requests: total_tx,
                mode: match rate {
                    Some(rate_tx_per_sec) => LoadMode::Open { rate_tx_per_sec },
                    None => LoadMode::Closed,
                },
                affinity: true,
                ..NetClientConfig::default()
            },
        );
        let elapsed = started.elapsed();
        let report = tier.finish();
        // The books balance across the wire: wire statuses ↔ admissions.
        assert!(report.reconciles());
        assert_eq!(report.server.completed, client.accepted);
        println!(
            "{:<40} {:>10.1} {:>12.1} {:>12.1} {:>10} {:>8}",
            report.server.allocator,
            client.responses as f64 / elapsed.as_secs_f64(),
            client.latency.p99_ns as f64 / 1e3,
            report.server.latency.p99_ns as f64 / 1e3,
            report.server.shed,
            (report.net.bytes_in + report.net.bytes_out) >> 10,
        );
    }
    println!("\nevery wire status matched a queue admission outcome one-for-one;");
    println!("submitted == completed + shed held end-to-end through the socket.");
}
