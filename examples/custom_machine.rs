//! Custom machine: ask the paper's question about hardware that did not
//! exist in 2009 — does the defrag-dodging argument still hold on a
//! 16-core part with a fatter memory system?
//!
//! Run with: `cargo run --release --example custom_machine`

use webmm::alloc::AllocatorKind;
use webmm::runtime::{run, RunConfig};
use webmm::sim::{CacheConfig, MachineConfig};
use webmm::workload::mediawiki_read;

fn main() {
    // Start from the Clovertown and stretch it: twice the cores, a shared
    // 16 MB L2 (LLC-style), and 2.5x the bus bandwidth.
    let future = MachineConfig::xeon_clovertown()
        .to_builder()
        .name("16-core Xeon-like (hypothetical)")
        .cores(16)
        .cores_per_l2(16)
        .l2(CacheConfig::new_hashed(16 * 1024 * 1024, 64, 16))
        .bus_bytes_per_cycle(10.0)
        .build();

    for machine in [MachineConfig::xeon_clovertown(), future] {
        println!("\n=== {} ===", machine.name);
        let all_cores = machine.cores;
        let mut base = None;
        for kind in AllocatorKind::PHP_STUDY {
            let cfg = RunConfig::new(kind, mediawiki_read())
                .scale(32)
                .cores(all_cores)
                .window(2, 4);
            let r = run(&machine, &cfg);
            let tps = r.throughput.tx_per_sec;
            let b = *base.get_or_insert(tps);
            println!(
                "{:<14} {:>10.1} tx/s ({:+5.1}%)  bus rho {:.2}, latency x{:.2}",
                kind.id(),
                tps,
                (tps / b - 1.0) * 100.0,
                r.throughput.bus_utilization,
                r.throughput.latency_factor,
            );
        }
    }
    println!("\nEven with more bandwidth, doubling the cores doubles the demand: the");
    println!("region allocator's per-transaction footprint scales with offered load,");
    println!("so the paper's conclusion is not an artifact of 2009 bus widths.");
}
