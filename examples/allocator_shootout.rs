//! Allocator shootout: all seven allocators on one workload, with the full
//! hardware-counter dump — the paper's Figure 8 methodology applied to
//! every allocator in the crate, including the Ruby-study baselines.
//!
//! Run with: `cargo run --release --example allocator_shootout [workload]`
//! where `workload` is a Table 2 name (default: "phpBB").

use webmm::alloc::AllocatorKind;
use webmm::runtime::{run, RunConfig};
use webmm::sim::MachineConfig;
use webmm::workload::by_name;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "phpBB".to_string());
    let workload = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name:?}; see Table 2 (e.g. \"phpBB\", \"SugarCRM\")");
        std::process::exit(2);
    });
    let machine = MachineConfig::xeon_clovertown();
    println!(
        "{} on {}, 8 cores, scale 1/32\n",
        workload.name, machine.name
    );
    println!(
        "{:<12} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>7}",
        "allocator", "tx/s", "instr/tx", "L1D/tx", "L2/tx", "bus/tx", "mm%", "rho"
    );

    for kind in AllocatorKind::ALL {
        // Allocators without bulk free live in the Ruby world: no freeAll,
        // periodic restart instead.
        let bulk = kind.build(0).alloc_traits().bulk_free;
        let mut cfg = RunConfig::new(kind, workload.clone())
            .scale(32)
            .cores(8)
            .window(2, 4);
        if !bulk {
            cfg = cfg.no_free_all().restart_every(Some(500));
        }
        let r = run(&machine, &cfg);
        let n = (r.measured_tx * r.events.len() as u64) as f64;
        let t = r.total_events();
        let total = t.total();
        println!(
            "{:<12} {:>10.1} {:>10.0} {:>8.0} {:>8.0} {:>8.0} {:>7.1}% {:>7.2}",
            kind.id(),
            r.throughput.tx_per_sec,
            total.instructions as f64 / n,
            total.l1d_misses as f64 / n,
            total.l2_misses as f64 / n,
            total.bus_txns as f64 / n,
            100.0 * r.throughput.mm_cycles_per_tx
                / (r.throughput.mm_cycles_per_tx + r.throughput.app_cycles_per_tx),
            r.throughput.bus_utilization,
        );
    }
    println!("\nNote: allocators without freeAll (glibc/Hoard/TCmalloc) run Ruby-style —");
    println!("per-object free only, restart every 500 transactions.");
}
