//! Quickstart: allocate transaction-scoped objects through DDmalloc on a
//! simulated Xeon and watch the hardware counters move.
//!
//! Run with: `cargo run --release --example quickstart`

use webmm::alloc::AllocatorKind;
use webmm::sim::MemoryPort;
use webmm::sim::{Category, ContextPort, MachineConfig, MemHierarchy, ProcessMem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated 8-core Xeon "Clovertown" — the paper's first platform.
    let machine = MachineConfig::xeon_clovertown();
    let mut hierarchy = MemHierarchy::new(&machine);
    let mut process = ProcessMem::new(1 << 40);

    // The paper's defrag-dodging allocator, serving process 0.
    let mut dd = AllocatorKind::DdMalloc.build(0);

    // A port binds the process to hardware context 0: every allocator
    // metadata access goes through the simulated caches.
    let mut port = ContextPort::new(&mut process, &mut hierarchy, 0);

    // One miniature web transaction: allocate, use, free, freeAll.
    let mut objects = Vec::new();
    for i in 0..1000u64 {
        let size = 16 + (i % 16) * 24;
        let addr = dd.malloc(&mut port, size)?;
        port.set_category(Category::Application);
        port.touch(addr, size, true); // the application initializes it
        objects.push(addr);
        if i % 8 != 0 {
            // ~87% of objects die young, per-object freed (Table 3).
            let victim = objects.swap_remove((i as usize * 7) % objects.len());
            dd.free(&mut port, victim);
        }
    }
    dd.free_all(&mut port); // end of transaction: freeAll resets the heap
    drop(port);

    let counts = hierarchy.counters(0);
    let mm = counts.mm;
    let app = counts.app;
    println!(
        "memory management: {:>8} instructions, {:>5} L1D misses, {:>4} L2 misses",
        mm.instructions, mm.l1d_misses, mm.l2_misses
    );
    println!(
        "application:       {:>8} instructions, {:>5} L1D misses, {:>4} L2 misses",
        app.instructions, app.l1d_misses, app.l2_misses
    );

    let footprint = dd.footprint();
    println!(
        "heap: {} KB in 32 KB segments + {} KB metadata; {} mallocs, {} frees, 1 freeAll",
        footprint.heap_bytes / 1024,
        footprint.metadata_bytes / 1024,
        dd.stats().mallocs,
        dd.stats().frees,
    );

    // Events → cycles via the machine cost model (no bus contention here).
    let cycles = machine.cycles(&counts.total(), 1.0);
    println!(
        "estimated cycles: {:.0} ({:.1}% in memory management)",
        cycles.total(),
        100.0 * machine.cycles(&mm, 1.0).total() / cycles.total()
    );
    Ok(())
}
