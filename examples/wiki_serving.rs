//! Wiki-serving study: how allocator choice changes MediaWiki-style
//! throughput as cores are added — the paper's headline experiment,
//! end to end through the public API.
//!
//! Run with: `cargo run --release --example wiki_serving`
//! (set `WEBMM_SCALE` to trade fidelity for speed; default here is 32)

use webmm::alloc::AllocatorKind;
use webmm::runtime::{run, RunConfig};
use webmm::sim::MachineConfig;
use webmm::workload::mediawiki_read;

fn main() {
    let scale: u32 = std::env::var("WEBMM_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    println!("MediaWiki (read only) on a simulated 8-core Xeon, workload scale 1/{scale}\n");
    let machine = MachineConfig::xeon_clovertown();

    println!(
        "{:<8} {:>14} {:>14} {:>14}   winner",
        "cores", "default", "region", "ddmalloc"
    );
    for cores in [1u32, 2, 4, 8] {
        let mut best = ("", f64::MIN);
        let mut cells = Vec::new();
        for kind in AllocatorKind::PHP_STUDY {
            let cfg = RunConfig::new(kind, mediawiki_read())
                .scale(scale)
                .cores(cores)
                .window(2, 4);
            let r = run(&machine, &cfg);
            let tps = r.throughput.tx_per_sec;
            if tps > best.1 {
                best = (kind.id(), tps);
            }
            cells.push(format!(
                "{tps:>8.1} tx/s{}",
                if r.throughput.latency_factor > 1.2 {
                    "*"
                } else {
                    " "
                }
            ));
        }
        println!(
            "{cores:<8} {} {} {}   {}",
            cells[0], cells[1], cells[2], best.0
        );
    }
    println!("\n(* = memory bus visibly contended at the fixed point)");
    println!("The paper's story: the bump-pointer region allocator wins while the bus");
    println!("has headroom, then falls behind as its dead-object traffic saturates it;");
    println!("DDmalloc keeps the cheap malloc/free *and* the small working set.");
}
