//! Native serving in a dozen lines: the paper's three PHP-study
//! allocators on real OS threads.
//!
//! Each run stands up a pool of worker threads (one private heap per
//! worker — the paper's process-per-worker model), pushes phpBB
//! transactions through a bounded ingress queue with a closed-loop client
//! population, and prints wall-clock throughput and service-latency
//! quantiles.
//!
//! ```text
//! cargo run --release --example native_serving -- [--obs-interval 10ms] [--obs-out OBS.jsonl]
//! ```
//!
//! With `--obs-interval`, each run attaches the live telemetry sampler
//! and prints its final dashboard: queue depth, sliding-window latency
//! quantiles, and per-worker heap occupancy. `--obs-out` streams every
//! sample as JSONL while the server is live (one file per allocator,
//! suffixed with the allocator id).

use std::time::Duration;
use webmm::alloc::AllocatorKind;
use webmm::server::{
    drive_closed, render_dashboard, AdmissionPolicy, ObsConfig, Server, ServerConfig, TxFactory,
};
use webmm::workload::phpbb;

fn parse_duration(v: &str) -> Option<Duration> {
    let (digits, unit) = v.split_at(v.find(|c: char| !c.is_ascii_digit()).unwrap_or(v.len()));
    let n: u64 = digits.parse().ok()?;
    match unit {
        "us" => Some(Duration::from_micros(n)),
        "ms" | "" => Some(Duration::from_millis(n)),
        "s" => Some(Duration::from_secs(n)),
        _ => None,
    }
}

fn main() {
    let mut obs_interval: Option<Duration> = None;
    let mut obs_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--obs-interval" => {
                let v = it.next().expect("--obs-interval takes a duration");
                obs_interval = Some(parse_duration(&v).expect("duration like 10ms or 1s"));
            }
            "--obs-out" => obs_out = Some(it.next().expect("--obs-out takes a path")),
            other => panic!("unknown flag `{other}` (try --obs-interval, --obs-out)"),
        }
    }
    if obs_out.is_some() && obs_interval.is_none() {
        obs_interval = Some(ObsConfig::default().interval);
    }

    let workers = 4;
    let total_tx = 200;
    println!("native serving: phpBB, {workers} workers, {total_tx} transactions\n");
    println!(
        "{:<40} {:>10} {:>10} {:>10} {:>10}",
        "allocator", "tx/s", "p50 us", "p99 us", "shed"
    );
    for kind in AllocatorKind::PHP_STUDY {
        let obs = obs_interval.map(|interval| ObsConfig {
            interval,
            // One JSONL stream per allocator: OBS.jsonl -> OBS.ddmalloc.jsonl.
            out: obs_out.as_ref().map(|base| {
                let path = std::path::Path::new(base);
                let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("OBS");
                let ext = path.extension().and_then(|s| s.to_str()).unwrap_or("jsonl");
                path.with_file_name(format!("{stem}.{}.{ext}", kind.id()))
            }),
            run: format!("{}-w{workers}", kind.id()),
            ..ObsConfig::default()
        });
        let server = Server::start(ServerConfig {
            kind,
            workers,
            queue_capacity: 32,
            policy: AdmissionPolicy::Block,
            static_bytes: 2 << 20,
            obs,
            ..ServerConfig::default()
        });
        let factory = TxFactory::new(phpbb(), 1024, 42);
        drive_closed(&server, factory, total_tx, workers * 2);
        let (report, samples) = server.finish_with_obs();
        assert_eq!(report.completed + report.shed, report.submitted);
        println!(
            "{:<40} {:>10.1} {:>10.1} {:>10.1} {:>10}",
            report.allocator,
            report.tx_per_sec,
            report.latency.p50_ns as f64 / 1e3,
            report.latency.p99_ns as f64 / 1e3,
            report.shed,
        );
        if let Some(last) = samples.last() {
            print!("{}", render_dashboard(last));
        }
    }
    println!("\nevery transaction was completed or accounted for by the shed policy;");
    println!("freeAll returned each worker heap to empty at every transaction end.");
}
