//! Native serving in a dozen lines: the paper's three PHP-study
//! allocators on real OS threads.
//!
//! Each run stands up a pool of worker threads (one private heap per
//! worker — the paper's process-per-worker model), pushes phpBB
//! transactions through a bounded ingress queue with a closed-loop client
//! population, and prints wall-clock throughput and service-latency
//! quantiles.
//!
//! ```text
//! cargo run --release --example native_serving
//! ```

use webmm::alloc::AllocatorKind;
use webmm::server::{drive_closed, AdmissionPolicy, Server, ServerConfig, TxFactory};
use webmm::workload::phpbb;

fn main() {
    let workers = 4;
    let total_tx = 200;
    println!("native serving: phpBB, {workers} workers, {total_tx} transactions\n");
    println!(
        "{:<40} {:>10} {:>10} {:>10} {:>10}",
        "allocator", "tx/s", "p50 us", "p99 us", "shed"
    );
    for kind in AllocatorKind::PHP_STUDY {
        let server = Server::start(ServerConfig {
            kind,
            workers,
            queue_capacity: 32,
            policy: AdmissionPolicy::Block,
            static_bytes: 2 << 20,
        });
        let factory = TxFactory::new(phpbb(), 1024, 42);
        drive_closed(&server, factory, total_tx, workers * 2);
        let report = server.finish();
        assert_eq!(report.completed + report.shed, report.submitted);
        println!(
            "{:<40} {:>10.1} {:>10.1} {:>10.1} {:>10}",
            report.allocator,
            report.tx_per_sec,
            report.latency.p50_ns as f64 / 1e3,
            report.latency.p99_ns as f64 / 1e3,
            report.shed,
        );
    }
    println!("\nevery transaction was completed or accounted for by the shed policy;");
    println!("freeAll returned each worker heap to empty at every transaction end.");
}
