//! # webmm — memory management for web-based applications on multicore
//!
//! A from-scratch Rust reproduction of
//!
//! > Hiroshi Inoue, Hideaki Komatsu, Toshio Nakatani.
//! > *A Study of Memory Management for Web-based Applications on Multicore
//! > Processors.* PLDI 2009.
//!
//! This facade crate re-exports the whole system:
//!
//! * [`sim`] — the machine substrate: simulated Xeon (Clovertown) and
//!   Niagara (UltraSPARC T1) multicores with caches, TLBs, a stream
//!   prefetcher and a bandwidth-limited shared bus;
//! * [`alloc`] — the allocators: the paper's defrag-dodging **DDmalloc**,
//!   the region-based and Zend-style baselines, and the glibc-, Hoard- and
//!   TCmalloc-style allocators of the Ruby study;
//! * [`workload`] — Table 3-faithful transaction streams for the six PHP
//!   applications and Ruby on Rails;
//! * [`runtime`] — the transaction engine and the bus-contention
//!   throughput model;
//! * [`profiler`] — the paper's measurement lenses (CPU breakdowns,
//!   hardware-event deltas, memory consumption);
//! * [`obs`] — the live versions of those lenses: lock-free metrics
//!   registry, sliding-window latency quantiles, per-allocator heap
//!   telemetry and transaction span tracing, sampled mid-run and
//!   exported as JSONL time series;
//! * [`server`] — the native serving harness: the same allocators on real
//!   OS worker threads (one heap each) behind a bounded ingress queue
//!   with block/reject/shed-oldest admission control and log2 latency
//!   histograms;
//! * [`net`] — the TCP serving tier in front of that harness: a compact
//!   length-prefixed wire protocol carrying transactions and admission
//!   statuses, a keep-alive connection front-end with graceful drain,
//!   and a network load generator with closed- and open-loop schedules.
//!
//! ## Quickstart
//!
//! ```no_run
//! use webmm::alloc::AllocatorKind;
//! use webmm::runtime::{run, RunConfig};
//! use webmm::sim::MachineConfig;
//! use webmm::workload::mediawiki_read;
//!
//! let machine = MachineConfig::xeon_clovertown();
//! for kind in AllocatorKind::PHP_STUDY {
//!     let result = run(&machine, &RunConfig::new(kind, mediawiki_read()).scale(32));
//!     println!("{:32} {:8.1} tx/s", result.allocator, result.throughput.tx_per_sec);
//! }
//! ```
//!
//! The `crates/bench` harnesses regenerate every table and figure of the
//! paper; see `DESIGN.md` for the experiment index and `EXPERIMENTS.md`
//! for paper-vs-measured numbers.

#![warn(missing_docs)]

pub use webmm_alloc as alloc;
pub use webmm_net as net;
pub use webmm_obs as obs;
pub use webmm_profiler as profiler;
pub use webmm_runtime as runtime;
pub use webmm_server as server;
pub use webmm_sim as sim;
pub use webmm_workload as workload;
