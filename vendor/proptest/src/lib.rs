//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` and `boxed`, range and tuple
//! strategies, [`any`], [`Just`], `prop_oneof!`, `collection::vec`, the
//! `proptest!` test macro (with `#![proptest_config(..)]`) and the
//! `prop_assert*!` macros.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed sequence (no persistence files), and failing cases
//! are **not shrunk** — the failing input is simply reported by the
//! underlying `assert!`. For a simulation workspace whose generators are
//! already deterministic this loses convenience, not coverage.

#![warn(missing_docs)]

use rand::{Rng, RngCore, SplitMix64};
use std::ops::{Range, RangeInclusive};

/// The RNG driving strategy sampling.
pub type TestRng = SplitMix64;

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<W, F: Fn(Self::Value) -> W>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!` to mix arms of
    /// different concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, W, F: Fn(S::Value) -> W> Strategy for Map<S, F> {
    type Value = W;
    fn generate(&self, rng: &mut TestRng) -> W {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical whole-domain strategy (upstream's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_range(-1.0e9..1.0e9)
    }
}

/// The whole-domain strategy for `T` (upstream's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Weighted union of boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or the weights sum to zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
            "zero total weight"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights covered above")
    }
}

/// Collection strategies (upstream's `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Copy, Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!`-block configuration (the `cases` knob).
#[derive(Copy, Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; this implementation never
    /// rejects inputs, so the knob is inert.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_global_rejects: 1024,
        }
    }
}

/// Seeds case `case` of a test run deterministically.
#[doc(hidden)]
pub fn case_rng(case: u64) -> TestRng {
    SplitMix64::new(case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x70_72_6F_70) // "prop"
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @items ($cfg); $($rest)* }
    };
    (@items ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut proptest_rng = $crate::case_rng(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @items ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Weighted choice between strategies: `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Property assertion (stand-in: plain `assert!`, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::std::assert!($($t)*) };
}

/// Property equality assertion (stand-in: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::std::assert_eq!($($t)*) };
}

/// Property inequality assertion (stand-in: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::std::assert_ne!($($t)*) };
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::case_rng(1);
        for _ in 0..1000 {
            let v = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let (a, b) = (0u64..5, any::<bool>()).generate(&mut rng);
            assert!(a < 5);
            let _ = b;
        }
    }

    #[test]
    fn oneof_respects_weights() {
        let s = prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let mut rng = crate::case_rng(7);
        let ones = (0..10_000).filter(|_| s.generate(&mut rng) == 1).count();
        assert!((8500..9500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn vec_lengths_honour_size_spec() {
        let mut rng = crate::case_rng(3);
        for _ in 0..200 {
            let v = collection::vec(0u64..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let w = collection::vec(any::<bool>(), 7).generate(&mut rng);
            assert_eq!(w.len(), 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: args bind, config applies, asserts work.
        #[test]
        fn macro_smoke(xs in collection::vec(1u64..100, 1..10), flag in any::<bool>()) {
            prop_assert!(!xs.is_empty());
            prop_assert_ne!(xs[0], 0);
            let doubled = xs.iter().map(|x| x * 2).collect::<Vec<_>>();
            prop_assert_eq!(doubled.len(), xs.len(), "flag was {}", flag);
        }
    }
}
