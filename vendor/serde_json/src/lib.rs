//! Offline stand-in for the `serde_json` crate.
//!
//! Implements the API subset this workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — as a JSON emitter and a
//! recursive-descent JSON parser over the vendored serde's
//! [`Value`](serde::Value) tree. Output follows upstream `serde_json`
//! conventions: structs as objects, enums externally tagged, non-finite
//! floats as `null`.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// This stand-in's serializer is total; the `Result` exists for API
/// compatibility with upstream `serde_json`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to a two-space-indented JSON string.
///
/// # Errors
///
/// This stand-in's serializer is total; the `Result` exists for API
/// compatibility with upstream `serde_json`.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a value of `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or when the JSON's shape does not
/// match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---- emitter ----

fn emit(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest-roundtrip float formatting is valid JSON
                // (upstream serde_json uses the same family of algorithms),
                // except that integral values print without a fraction.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // upstream behaviour for NaN/inf
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Array(items) => {
            emit_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
                emit(&items[i], out, indent, d);
            });
        }
        Value::Object(pairs) => {
            emit_seq(out, indent, depth, pairs.len(), '{', '}', |out, i, d| {
                emit_string(&pairs[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(&pairs[i].1, out, indent, d);
            });
        }
    }
}

fn emit_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(u32::from(hi))
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the lead byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(lead: u8) -> Result<usize, Error> {
    match lead {
        0x00..=0x7F => Ok(1),
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err(Error::new("invalid UTF-8 lead byte")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi\n\"x\"").unwrap(), "\"hi\\n\\\"x\\\"\"");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        assert_eq!(from_str::<String>("\"a\\u0041b\"").unwrap(), "aAb");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
        let obj = Value::Object(vec![
            ("a".to_string(), Value::U64(1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Null, Value::Bool(false)]),
            ),
        ]);
        let s = to_string(&obj).unwrap();
        assert_eq!(s, "{\"a\":1,\"b\":[null,false]}");
        assert_eq!(from_str::<Value>(&s).unwrap(), obj);
    }

    #[test]
    fn pretty_output_indents() {
        let obj = Value::Object(vec![("k".to_string(), Value::Array(vec![Value::U64(1)]))]);
        let s = to_string_pretty(&obj).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn unicode_passthrough() {
        let s = to_string("héllo ∞").unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), "héllo ∞");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<u64>("[1,").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<u64>("\"str\"").is_err());
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
