//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a real ChaCha8 keystream generator (8 rounds, RFC 7539 state
//! layout) behind the vendored `rand` traits. The statistical quality is
//! that of genuine ChaCha8; the only difference from the upstream crate is
//! that the word stream is not bit-identical to it (seed expansion and
//! word order follow this crate's own convention), which is irrelevant
//! here because every consumer in the workspace only requires
//! self-consistent determinism.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A deterministic ChaCha8 random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (state[4..12]).
    key: [u32; 8],
    /// Block counter (state[12..14] as one u64).
    counter: u64,
    /// Nonce words (state[14..16]).
    nonce: [u32; 2],
    /// Current output block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 = exhausted.
    pos: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.pos >= 16 {
            self.refill();
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, w) in key.iter_mut().enumerate() {
            *w = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            nonce: [0, 0],
            buf: [0; 16],
            pos: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let mut c = ChaCha8Rng::seed_from_u64(124);
        let av: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn words_look_uniform() {
        // Bit-balance sanity check on the keystream: each of the 32 bit
        // positions should be set ~50% of the time.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut ones = [0u32; 32];
        const N: u32 = 40_000;
        for _ in 0..N {
            let w = rng.next_u32();
            for (bit, count) in ones.iter_mut().enumerate() {
                *count += (w >> bit) & 1;
            }
        }
        for (bit, &count) in ones.iter().enumerate() {
            let rate = f64::from(count) / f64::from(N);
            assert!((rate - 0.5).abs() < 0.02, "bit {bit}: rate {rate}");
        }
    }

    #[test]
    fn gen_range_composes_with_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}
