//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_with_input`/`bench_function`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — backed by a simple wall-clock loop: each benchmark is warmed
//! up briefly, then timed for a fixed budget and reported as mean ns/iter.
//! No statistics, plots, or baselines; good enough to keep `--benches`
//! compiling and to give coarse relative numbers offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(50),
            measure: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        report(name, b.ns_per_iter);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's time-budget loop
    /// does not count samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measure: self.criterion.measure,
            ns_per_iter: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), b.ns_per_iter);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measure: self.criterion.measure,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, name), b.ns_per_iter);
        self
    }

    /// Finishes the group (no-op in the stand-in).
    pub fn finish(&mut self) {}
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Id that is just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine` by running it in a loop for the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.measure {
            black_box(routine());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn report(name: &str, ns_per_iter: f64) {
    if ns_per_iter >= 1_000_000.0 {
        println!("{name:<60} {:>12.3} ms/iter", ns_per_iter / 1_000_000.0);
    } else if ns_per_iter >= 1_000.0 {
        println!("{name:<60} {:>12.3} us/iter", ns_per_iter / 1_000.0);
    } else {
        println!("{name:<60} {:>12.1} ns/iter", ns_per_iter);
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("tiny");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(4u64), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn runs_a_group_end_to_end() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        };
        tiny(&mut c);
    }

    #[test]
    fn bencher_records_positive_timing() {
        let mut b = Bencher {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(5),
            ns_per_iter: 0.0,
        };
        b.iter(|| black_box(1u64 + 1));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn benchmark_ids_format_as_expected() {
        assert_eq!(BenchmarkId::from_parameter(8).0, "8");
        assert_eq!(BenchmarkId::new("alloc", "php").0, "alloc/php");
    }
}
