//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! a minimal serialization framework under serde's names. Unlike upstream
//! serde's visitor architecture, this stand-in routes everything through a
//! concrete JSON-like [`Value`]: [`Serialize`] renders a value tree,
//! [`Deserialize`] rebuilds a type from one. The derive macros (vendored
//! `serde_derive`) generate the field-by-field plumbing with upstream's
//! externally-tagged enum representation, so JSON produced by this
//! stand-in matches what real serde_json would produce for the types in
//! this workspace.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the data model everything serializes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks a field up in an object.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// One-word description of the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with an explicit message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Standard "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error::custom(format!("expected {what}, found {}", found.kind()))
    }

    /// Standard missing-field error.
    pub fn missing_field(name: &str) -> Self {
        Error::custom(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// A type rebuildable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- Serialize impls for primitives and std containers ----

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---- Deserialize impls ----

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    _ => Err(Error::expected("unsigned integer", v)),
                }
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range")))?,
                    Value::I64(n) => *n,
                    _ => return Err(Error::expected("integer", v)),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom(format!("{wide} out of range")))
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::expected("number", v)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Support code used by the generated derive impls (not public API).
#[doc(hidden)]
pub mod __private {
    use super::{Error, Value};

    /// Field lookup with a missing-field error.
    pub fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, Error> {
        match v {
            Value::Object(_) => v.get_field(name).ok_or_else(|| Error::missing_field(name)),
            _ => Err(Error::expected("object", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-42i64).to_value()).unwrap(), -42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        let v: Vec<u32> = Deserialize::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, [1, 2, 3]);
        let o: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
        let e = __private::field(&Value::Object(vec![]), "missing").unwrap_err();
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn numbers_cross_convert() {
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(i64::from_value(&Value::U64(3)).unwrap(), 3);
        assert!(u32::from_value(&Value::U64(u64::MAX)).is_err());
    }
}
