//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! this workspace vendors the *exact API subset* of `rand` 0.8 that it
//! uses: [`RngCore`], [`SeedableRng`] (including `seed_from_u64`), and the
//! [`Rng`] extension trait with `gen_range` / `gen_bool` / `gen`.
//!
//! The implementations are straightforward and deterministic; statistical
//! quality is provided by the generator behind them (see the vendored
//! `rand_chacha`). Nothing here is cryptographic.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core randomness source: raw 32/64-bit output plus byte filling.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly once per seed word (matching `rand`'s approach
    /// of deriving the full seed deterministically from the `u64`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expansion and the engine of the test-only
/// [`rngs::SmallRng`].
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream from `state`.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw 64-bit draw onto `[0, span)` with a widening multiply
/// (Lemire's method without the rejection step; the residual bias is
/// below 2^-64 per draw, irrelevant for simulation workloads).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Converts 53 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (unit_f64(rng) as f32) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Types with a canonical "uniform over the whole domain" distribution
/// (`rand`'s `Standard`), for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        unit_f64(self) < p
    }

    /// Draws one value of `T`'s whole-domain distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (the `rand::rngs` namespace).
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// A small, fast, non-cryptographic generator (SplitMix64-backed).
    #[derive(Clone, Debug)]
    pub struct SmallRng(SplitMix64);

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng(SplitMix64::new(u64::from_le_bytes(seed)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::new(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = SplitMix64::new(42);
        let mean = (0..100_000)
            .map(|_| rng.gen_range(0.0f64..1.0))
            .sum::<f64>()
            / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = rngs::SmallRng::seed_from_u64(9);
        let mut b = rngs::SmallRng::seed_from_u64(9);
        let mut c = rngs::SmallRng::seed_from_u64(10);
        let av: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SplitMix64::new(0);
        let _ = rng.gen_range(5u64..5);
    }
}
