//! Offline stand-in for the `serde_derive` crate.
//!
//! The build environment has no network access, so `syn`/`quote` are not
//! available; these derives parse the item declaration directly from the
//! raw [`proc_macro::TokenStream`]. They support exactly the shapes this
//! workspace uses:
//!
//! * structs with named fields (no generics, no tuple structs);
//! * enums whose variants are unit variants or struct variants.
//!
//! The generated code targets the vendored serde's concrete data model:
//! `Serialize` renders a `serde::Value` tree, `Deserialize` rebuilds the
//! type from one, using upstream serde's JSON conventions (maps for
//! structs, externally-tagged representation for enums) so output matches
//! what real `serde_json` would produce for these types.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// Derives `serde::Serialize` (the stand-in's `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    let name = &item.name;
    write!(
        out,
        "impl serde::Serialize for {name} {{ fn to_value(&self) -> serde::Value {{"
    )
    .unwrap();
    match &item.shape {
        Shape::Struct(fields) => {
            out.push_str("serde::Value::Object(::std::vec![");
            for f in fields {
                write!(
                    out,
                    "(::std::string::String::from(\"{f}\"), serde::Serialize::to_value(&self.{f})),"
                )
                .unwrap();
            }
            out.push_str("])");
        }
        Shape::Enum(variants) => {
            out.push_str("match self {");
            for (v, fields) in variants {
                match fields {
                    None => write!(
                        out,
                        "{name}::{v} => serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    )
                    .unwrap(),
                    Some(fs) => {
                        write!(out, "{name}::{v} {{ {} }} => ", fs.join(", ")).unwrap();
                        out.push_str(
                            "serde::Value::Object(::std::vec![(::std::string::String::from(\"",
                        );
                        write!(out, "{v}\"), serde::Value::Object(::std::vec![").unwrap();
                        for f in fs {
                            write!(
                                out,
                                "(::std::string::String::from(\"{f}\"), serde::Serialize::to_value({f})),"
                            )
                            .unwrap();
                        }
                        out.push_str("]))]),");
                    }
                }
            }
            out.push('}');
        }
    }
    out.push_str("}}");
    out.parse()
        .expect("serde_derive stand-in generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (the stand-in's `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    let name = &item.name;
    write!(
        out,
        "impl serde::Deserialize for {name} {{ \
         fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{"
    )
    .unwrap();
    match &item.shape {
        Shape::Struct(fields) => {
            write!(out, "Ok({name} {{").unwrap();
            for f in fields {
                write!(
                    out,
                    "{f}: serde::Deserialize::from_value(serde::__private::field(v, \"{f}\")?)?,"
                )
                .unwrap();
            }
            out.push_str("})");
        }
        Shape::Enum(variants) => {
            // Externally tagged: unit variants are strings, struct variants
            // are single-entry objects keyed by the variant name.
            out.push_str("match v { serde::Value::Str(s) => match s.as_str() {");
            for (v, fields) in variants {
                if fields.is_none() {
                    write!(out, "\"{v}\" => Ok({name}::{v}),").unwrap();
                }
            }
            write!(
                out,
                "other => Err(serde::Error::custom(::std::format!(\
                 \"unknown {name} variant `{{other}}`\"))), }},"
            )
            .unwrap();
            out.push_str(
                "serde::Value::Object(pairs) if pairs.len() == 1 => { \
                 let (tag, inner) = &pairs[0]; match tag.as_str() {",
            );
            for (v, fields) in variants {
                match fields {
                    Some(fs) => {
                        write!(out, "\"{v}\" => Ok({name}::{v} {{").unwrap();
                        for f in fs {
                            write!(
                                out,
                                "{f}: serde::Deserialize::from_value(\
                                 serde::__private::field(inner, \"{f}\")?)?,"
                            )
                            .unwrap();
                        }
                        out.push_str("}),");
                    }
                    // Upstream serde also accepts the map form
                    // `{"Variant": null}` for unit variants.
                    None => write!(
                        out,
                        "\"{v}\" if ::std::matches!(inner, serde::Value::Null) => \
                         Ok({name}::{v}),"
                    )
                    .unwrap(),
                }
            }
            write!(
                out,
                "other => Err(serde::Error::custom(::std::format!(\
                 \"unknown {name} variant `{{other}}`\"))), }} }},"
            )
            .unwrap();
            write!(
                out,
                "other => Err(serde::Error::expected(\"{name}\", other)), }}"
            )
            .unwrap();
        }
    }
    out.push_str("}}");
    out.parse()
        .expect("serde_derive stand-in generated invalid Deserialize impl")
}

/// What a derive input boils down to: field names, or variants with
/// optional struct-variant field names.
enum Shape {
    Struct(Vec<String>),
    Enum(Vec<(String, Option<Vec<String>>)>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Parses `#[attrs] pub struct Name { ... }` / `#[attrs] pub enum Name
/// { ... }` from the raw token stream.
fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kw = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stand-in: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stand-in: expected type name, found {other}"),
    };
    i += 1;
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!(
            "serde_derive stand-in supports only brace-bodied, non-generic structs and enums \
             (deriving for `{name}`)"
        ),
    };
    let shape = match kw.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body)),
        "enum" => Shape::Enum(parse_variants(body)),
        other => panic!("serde_derive stand-in: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

/// Advances past `#[...]` attributes (including doc comments) and a `pub`
/// / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if matches!(toks.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits a brace-group body on top-level commas (groups nest, so a single
/// `TokenTree::Group` never leaks an inner comma).
fn split_commas(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    for t in body {
        match &t {
            TokenTree::Punct(p) if p.as_char() == ',' => chunks.push(Vec::new()),
            _ => chunks.last_mut().expect("nonempty").push(t),
        }
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Field names of a named-field body: the ident preceding each top-level
/// `:`.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    split_commas(body)
        .into_iter()
        .map(|chunk| {
            let start = skip_attrs_and_vis(&chunk, 0);
            match (&chunk.get(start), &chunk.get(start + 1)) {
                (Some(TokenTree::Ident(id)), Some(TokenTree::Punct(p))) if p.as_char() == ':' => {
                    id.to_string()
                }
                _ => panic!("serde_derive stand-in: expected `name: Type` field"),
            }
        })
        .collect()
}

/// Variants of an enum body: name plus `Some(fields)` for struct variants.
fn parse_variants(body: TokenStream) -> Vec<(String, Option<Vec<String>>)> {
    split_commas(body)
        .into_iter()
        .map(|chunk| {
            let start = skip_attrs_and_vis(&chunk, 0);
            let name = match chunk.get(start) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => panic!("serde_derive stand-in: expected variant name"),
            };
            match chunk.get(start + 1) {
                None => (name, None),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    (name, Some(parse_named_fields(g.stream())))
                }
                Some(other) => panic!(
                    "serde_derive stand-in: variant `{name}` has unsupported shape near {other} \
                     (tuple variants and discriminants are not supported)"
                ),
            }
        })
        .collect()
}
