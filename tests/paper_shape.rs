//! Integration tests for the paper's qualitative results — the acceptance
//! criteria of DESIGN.md §4, exercised through the full stack (workload →
//! runtime → simulator → profiler).
//!
//! These assert the *shape* of the results (signs, orderings, crossovers),
//! not absolute numbers; magnitudes are recorded in EXPERIMENTS.md.

use webmm::alloc::AllocatorKind;
use webmm::profiler::{breakdown, event_deltas, memory_consumption};
use webmm::runtime::{run, RunConfig, RunResult};
use webmm::sim::MachineConfig;
use webmm::workload::{mediawiki_read, rails, specweb};

const SCALE: u32 = 64;

fn php(machine: &MachineConfig, kind: AllocatorKind, cores: u32) -> RunResult {
    run(
        machine,
        &RunConfig::new(kind, mediawiki_read())
            .scale(SCALE)
            .cores(cores)
            .window(2, 3),
    )
}

fn tps(r: &RunResult) -> f64 {
    r.throughput.tx_per_sec
}

/// Criterion 1+2: on one Xeon core both alternatives beat the default; on
/// eight cores the region allocator falls behind while DDmalloc still wins
/// — the paper's Figure 7 crossover.
#[test]
fn xeon_crossover() {
    let machine = MachineConfig::xeon_clovertown();
    let base1 = php(&machine, AllocatorKind::PhpDefault, 1);
    let reg1 = php(&machine, AllocatorKind::Region, 1);
    let dd1 = php(&machine, AllocatorKind::DdMalloc, 1);
    assert!(
        tps(&reg1) > tps(&base1),
        "1 core: region must beat the default"
    );
    assert!(
        tps(&dd1) > tps(&base1),
        "1 core: DDmalloc must beat the default"
    );

    let base8 = php(&machine, AllocatorKind::PhpDefault, 8);
    let reg8 = php(&machine, AllocatorKind::Region, 8);
    let dd8 = php(&machine, AllocatorKind::DdMalloc, 8);
    assert!(
        tps(&reg8) < tps(&base8) * 0.97,
        "8 cores: region must degrade ({} vs {})",
        tps(&reg8),
        tps(&base8)
    );
    assert!(tps(&dd8) > tps(&base8), "8 cores: DDmalloc must still win");
    assert!(tps(&dd8) > tps(&reg8), "8 cores: DDmalloc must beat region");
    // And the bus is the reason: region runs at a visibly higher latency factor.
    assert!(
        reg8.throughput.latency_factor > base8.throughput.latency_factor + 0.1,
        "region's degradation must come from bus contention"
    );
}

/// Criterion 3: the region penalty is milder on Niagara (more bandwidth
/// headroom, no prefetcher, SMT latency hiding).
#[test]
fn niagara_is_milder_for_region() {
    let xeon = MachineConfig::xeon_clovertown();
    let niagara = MachineConfig::niagara_t1();
    let rel = |machine: &MachineConfig| {
        let base = php(machine, AllocatorKind::PhpDefault, 8);
        let reg = php(machine, AllocatorKind::Region, 8);
        tps(&reg) / tps(&base)
    };
    let xeon_rel = rel(&xeon);
    let niagara_rel = rel(&niagara);
    assert!(
        niagara_rel > xeon_rel + 0.05,
        "region on Niagara ({niagara_rel:.3}) must fare clearly better than on Xeon ({xeon_rel:.3})"
    );
}

/// Criterion 4: SPECweb2005 — few allocator calls, compute-heavy — is
/// insensitive to the allocator.
#[test]
fn specweb_is_insensitive() {
    let machine = MachineConfig::xeon_clovertown();
    let mut values = Vec::new();
    for kind in AllocatorKind::PHP_STUDY {
        let r = run(
            &machine,
            &RunConfig::new(kind, specweb())
                .scale(SCALE)
                .cores(8)
                .window(2, 3),
        );
        values.push(tps(&r));
    }
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        (max - min) / min < 0.04,
        "SPECweb spread must stay under 4% (paper: ±1-2%): {values:?}"
    );
}

/// Criterion 5 (Figure 8): the region allocator raises L2 misses and bus
/// transactions, and on Xeon the bus-transaction increase exceeds the
/// L2-miss increase because the prefetcher chases its streams.
#[test]
fn fig8_shape_region_traffic() {
    let machine = MachineConfig::xeon_clovertown();
    let base = php(&machine, AllocatorKind::PhpDefault, 8);
    let reg = php(&machine, AllocatorKind::Region, 8);
    let d = event_deltas(&reg, &base);
    assert!(
        d.l2_misses > 5.0,
        "region must raise L2 misses ({:+.1}%)",
        d.l2_misses
    );
    assert!(
        d.bus_txns > d.l2_misses,
        "prefetcher must amplify bus over L2 ({d:?})"
    );
    assert!(d.instructions < -5.0, "region executes fewer instructions");

    // Without the prefetcher, the bus/L2 gap shrinks (the paper's
    // prefetcher-disable experiment).
    let no_pf = MachineConfig::xeon_clovertown().without_prefetcher();
    let base_n = php(&no_pf, AllocatorKind::PhpDefault, 8);
    let reg_n = php(&no_pf, AllocatorKind::Region, 8);
    let d_n = event_deltas(&reg_n, &base_n);
    assert!(
        d_n.bus_txns - d_n.l2_misses < d.bus_txns - d.l2_misses,
        "disabling the prefetcher must shrink the bus-vs-L2 gap ({:.0} vs {:.0})",
        d_n.bus_txns - d_n.l2_misses,
        d.bus_txns - d.l2_misses
    );
}

/// Criterion 5 continued: DDmalloc lowers instructions and does not
/// inflate bus traffic the way the region allocator does.
#[test]
fn fig8_shape_ddmalloc_traffic() {
    let machine = MachineConfig::xeon_clovertown();
    let base = php(&machine, AllocatorKind::PhpDefault, 8);
    let dd = php(&machine, AllocatorKind::DdMalloc, 8);
    let reg = php(&machine, AllocatorKind::Region, 8);
    let d_dd = event_deltas(&dd, &base);
    let d_reg = event_deltas(&reg, &base);
    assert!(
        d_dd.instructions < -3.0,
        "DDmalloc executes fewer instructions"
    );
    assert!(
        d_dd.bus_txns < d_reg.bus_txns / 2.0,
        "DDmalloc bus traffic ({:+.1}%) must stay far below region's ({:+.1}%)",
        d_dd.bus_txns,
        d_reg.bus_txns
    );
}

/// Criterion 6 (Figure 9): memory consumption — DDmalloc moderately above
/// the default (paper: 1.24x), region far above (paper: ~3x).
#[test]
fn fig9_shape_memory() {
    let machine = MachineConfig::xeon_clovertown();
    let base = memory_consumption(&php(&machine, AllocatorKind::PhpDefault, 8)) as f64;
    let dd = memory_consumption(&php(&machine, AllocatorKind::DdMalloc, 8)) as f64;
    let reg = memory_consumption(&php(&machine, AllocatorKind::Region, 8)) as f64;
    let dd_ratio = dd / base;
    // At test scale the granularity floors (Zend's 256 KB arenas,
    // DDmalloc's segment-per-class minimum) dominate the live sets, so the
    // assertions here check the *definitions*, not the paper's magnitudes;
    // the fig9 harness measures at a finer scale where the ratios approach
    // the paper's 1.24x / ~3x.
    assert!(
        (1.0..8.0).contains(&dd_ratio),
        "DDmalloc must consume more than the default ({dd_ratio:.2})"
    );
    // Region's Figure 9 metric is "total memory allocated during a
    // transaction": it must track the stream volume, not the 256 MB
    // reservation.
    let wl = mediawiki_read();
    let expected = (wl.mallocs_per_tx / u64::from(SCALE)) as f64 * wl.mean_alloc_bytes;
    assert!(
        (0.5..2.0).contains(&(reg / expected)),
        "region metric {reg} must track per-tx allocation volume (~{expected})"
    );
}

/// Figure 6 shape: region cuts memory-management CPU the most, DDmalloc
/// substantially, and the application portion stays comparable.
#[test]
fn fig6_shape_mm_cuts() {
    let machine = MachineConfig::xeon_clovertown();
    let base = breakdown(&php(&machine, AllocatorKind::PhpDefault, 8));
    let reg = breakdown(&php(&machine, AllocatorKind::Region, 8));
    let dd = breakdown(&php(&machine, AllocatorKind::DdMalloc, 8));
    let reg_cut = 1.0 - reg.mm_cycles / base.mm_cycles;
    let dd_cut = 1.0 - dd.mm_cycles / base.mm_cycles;
    assert!(reg_cut > 0.7, "region mm cut {reg_cut:.2} (paper: 85%)");
    assert!(
        (0.25..0.9).contains(&dd_cut),
        "DDmalloc mm cut {dd_cut:.2} (paper: 56%)"
    );
    assert!(reg_cut > dd_cut);
    // Region's "others" portion grows: the hidden cost of no reuse.
    assert!(
        reg.other_cycles > base.other_cycles,
        "region must slow the rest of the program ({} vs {})",
        reg.other_cycles,
        base.other_cycles
    );
}

/// §4.4 shape: in the Ruby setup (no freeAll, periodic restarts) DDmalloc
/// still beats glibc — per-object free alone is enough to keep its edge.
#[test]
fn ruby_study_ddmalloc_beats_glibc() {
    let machine = MachineConfig::xeon_clovertown();
    let mk = |kind| {
        let cfg = RunConfig::new(kind, rails())
            .scale(SCALE)
            .cores(2)
            .window(2, 20)
            .restart_every(Some(500))
            .no_free_all();
        run(&machine, &cfg)
    };
    let glibc = mk(AllocatorKind::Dl);
    let dd = mk(AllocatorKind::DdMalloc);
    assert!(
        tps(&dd) > tps(&glibc) * 1.02,
        "DDmalloc ({}) must beat glibc ({}) on Rails",
        tps(&dd),
        tps(&glibc)
    );
    // And it does so by spending less time in memory management.
    assert!(breakdown(&dd).mm_cycles < breakdown(&glibc).mm_cycles);
}

/// DDmalloc's large-page optimization slashes D-TLB misses (the >60%
/// reduction the paper reports when enabling it on Xeon).
#[test]
fn large_pages_cut_tlb_misses() {
    use webmm::alloc::DdConfig;
    let machine = MachineConfig::xeon_clovertown();
    let small = php(&machine, AllocatorKind::DdMalloc, 1);
    let cfg = RunConfig::new(AllocatorKind::DdMalloc, mediawiki_read())
        .scale(SCALE)
        .cores(1)
        .window(2, 3)
        .dd_config(DdConfig {
            large_pages: true,
            ..DdConfig::default()
        });
    let large = run(&machine, &cfg);
    let misses = |r: &RunResult| r.total_events().total().dtlb_misses;
    assert!(
        misses(&large) * 2 < misses(&small).max(1),
        "4 MB pages must cut D-TLB misses ({} vs {})",
        misses(&large),
        misses(&small)
    );
}
