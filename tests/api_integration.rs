//! Cross-crate integration tests of the public API: the facade re-exports,
//! the workload→runtime→profiler pipeline, determinism, and the Table 1
//! taxonomy driving runtime behaviour.

use webmm::alloc::AllocatorKind;
use webmm::profiler::report;
use webmm::runtime::{run, RunConfig};
use webmm::sim::{MachineConfig, PlainPort};
use webmm::workload::{by_name, php_workloads, TxStream, WorkOp};

#[test]
fn facade_reexports_compose() {
    // A workload drives an allocator through the sim port: all five crates
    // in one expression chain.
    let mut stream = TxStream::new(by_name("phpBB").expect("phpBB exists"), 64, 1);
    let mut alloc = AllocatorKind::DdMalloc.build(0);
    let mut port = PlainPort::new();
    let mut live = std::collections::HashMap::new();
    for _ in 0..5000 {
        match stream.next_op() {
            WorkOp::Malloc { id, size } => {
                live.insert(id, alloc.malloc(&mut port, size).expect("no OOM"));
            }
            WorkOp::Free { id } => {
                alloc.free(&mut port, live.remove(&id).expect("live"));
            }
            WorkOp::Realloc { id, new_size } => {
                let addr = live[&id];
                live.insert(
                    id,
                    alloc.realloc(&mut port, addr, 0, new_size).expect("no OOM"),
                );
            }
            WorkOp::EndTx => {
                alloc.free_all(&mut port);
                live.clear();
            }
            _ => {}
        }
    }
    assert!(alloc.stats().mallocs > 500);
}

#[test]
fn runs_are_deterministic_end_to_end() {
    let machine = MachineConfig::niagara_t1();
    let cfg = RunConfig::new(AllocatorKind::DdMalloc, by_name("phpBB").unwrap())
        .scale(64)
        .cores(1)
        .window(1, 2);
    let a = run(&machine, &cfg);
    let b = run(&machine, &cfg);
    assert_eq!(a.events, b.events);
    assert_eq!(
        a.throughput.tx_per_sec.to_bits(),
        b.throughput.tx_per_sec.to_bits()
    );
    assert_eq!(a.footprint, b.footprint);
}

#[test]
fn every_php_workload_completes_on_every_study_allocator() {
    let machine = MachineConfig::xeon_clovertown();
    for wl in php_workloads() {
        for kind in AllocatorKind::PHP_STUDY {
            let cfg = RunConfig::new(kind, wl.clone())
                .scale(
                    256.min(
                        // Keep at least 16 mallocs per transaction.
                        (wl.mallocs_per_tx / 16).next_power_of_two() as u32 / 2,
                    )
                    .max(1),
                )
                .cores(1)
                .window(0, 1);
            let r = run(&machine, &cfg);
            assert!(r.throughput.tx_per_sec > 0.0, "{} / {}", wl.name, kind);
            assert!(r.total_events().total().instructions > 0);
        }
    }
}

#[test]
fn taxonomy_drives_runtime_behaviour() {
    // Allocators without per-object free never see free() (their stats stay
    // at zero frees even though the stream emits them).
    let machine = MachineConfig::xeon_clovertown();
    let cfg = RunConfig::new(AllocatorKind::Region, by_name("phpBB").unwrap())
        .scale(64)
        .cores(1)
        .window(0, 2);
    let r = run(&machine, &cfg);
    // The engine skipped the frees: region mm instructions per malloc stay
    // tiny (a bump pointer), far below one general-purpose free's worth.
    let t = r.total_events();
    let mallocs = r.events_per_tx(|c| c.mm.loads); // proxy: metadata loads
    assert!(mallocs > 0.0);
    assert!(
        (t.mm.instructions as f64) < (t.app.instructions as f64) * 0.05,
        "region mm share must be tiny"
    );
}

#[test]
fn report_helpers_render() {
    let t = report::table(&[vec!["a".into(), "b".into()], vec!["1".into(), "2".into()]]);
    assert!(t.contains('\n'));
    assert!(report::bar(5.0, 10.0, 10).starts_with('|'));
    assert_eq!(report::bytes(1024), "1.0 KB");
    assert_eq!(report::rel(2.0, 1.0), "(+100.0%)");
}

#[test]
fn machine_presets_differ_where_the_paper_says() {
    let xeon = MachineConfig::xeon_clovertown();
    let niagara = MachineConfig::niagara_t1();
    assert!(xeon.prefetch.is_some() && niagara.prefetch.is_none());
    assert_eq!(xeon.contexts(), 8);
    assert_eq!(niagara.contexts(), 32);
    assert!(niagara.bus.bytes_per_cycle > xeon.bus.bytes_per_cycle);
    assert!(!xeon.os_large_pages && niagara.os_large_pages);
}
